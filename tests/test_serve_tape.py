"""Traffic-tape determinism: same seed -> byte-identical everything.

The serve layer's regression story rests on two byte-level guarantees:

1. a :class:`~repro.serve.TapeSpec` expands to the same canonical JSON
   bytes every generation;
2. replaying one tape through two fresh services produces identical
   report documents — every latency percentile, every admission
   decision, every batch composition.
"""

import json

from repro.serve import (
    ServeConfig,
    ServeEngine,
    TapeSpec,
    generate_tape,
    tape_from_json,
    tape_to_json,
)

SPEC = TapeSpec(seed=13, num_queries=24, scale=8, mean_gap=5e-5)
CONFIG = ServeConfig(scale=8, hosts=4, layer="lci", max_batch=6,
                     ppr_rounds=4)


def test_same_seed_same_tape_bytes():
    a = tape_to_json(SPEC, generate_tape(SPEC))
    b = tape_to_json(SPEC, generate_tape(SPEC))
    assert a == b
    assert a.endswith("\n")


def test_different_seed_different_tape():
    other = TapeSpec(seed=14, num_queries=24, scale=8, mean_gap=5e-5)
    assert tape_to_json(SPEC, generate_tape(SPEC)) != \
        tape_to_json(other, generate_tape(other))


def test_tape_json_roundtrip():
    tape = generate_tape(SPEC)
    spec2, tape2 = tape_from_json(tape_to_json(SPEC, tape))
    assert spec2 == SPEC
    assert tape2 == tape
    # Regenerating from the parsed spec reproduces the stream.
    assert generate_tape(spec2) == tape


def test_replay_produces_identical_latency_report():
    tape = generate_tape(SPEC)
    doc1 = ServeEngine(CONFIG).drain(list(tape)).as_dict()
    doc2 = ServeEngine(CONFIG).drain(list(tape)).as_dict()
    text1 = json.dumps(doc1, sort_keys=True)
    text2 = json.dumps(doc2, sort_keys=True)
    assert text1 == text2
    # The report actually exercised the service: batches formed and
    # percentiles are populated.
    assert doc1["queries"]["ok"] > 0
    assert doc1["latency"]["p99_us"] >= doc1["latency"]["p50_us"] > 0
    assert doc1["batches"]["executed"] > 0


def test_replay_identical_under_fault_plan():
    config = ServeConfig(scale=8, hosts=4, layer="lci", max_batch=6,
                         ppr_rounds=4, fault_plan="drop-5pct")
    tape = generate_tape(SPEC)
    doc1 = ServeEngine(config).drain(list(tape)).as_dict()
    doc2 = ServeEngine(config).drain(list(tape)).as_dict()
    assert json.dumps(doc1, sort_keys=True) == \
        json.dumps(doc2, sort_keys=True)


def test_bench_document_is_reproducible():
    from repro.bench.serve_bench import (
        bench_doc_to_json,
        compare_bench_docs,
        serve_benchmark,
    )

    doc1 = serve_benchmark(scale=8, num_queries=12, fig3_scale=8)
    doc2 = serve_benchmark(scale=8, num_queries=12, fig3_scale=8)
    assert bench_doc_to_json(doc1) == bench_doc_to_json(doc2)
    assert compare_bench_docs(doc1, doc2) == []
    lat = doc1["serve"]["latency"]
    assert {"p50_us", "p95_us", "p99_us"} <= set(lat)
