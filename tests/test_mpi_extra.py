"""Additional MPI coverage: matching engine units, status, edge paths."""

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MpiStatus,
    MpiWorld,
    ThreadMode,
    intel_mpi,
)
from repro.mpi.matching import (
    PostedQueue,
    PostedReceive,
    UnexpectedMessage,
    UnexpectedQueue,
)
from repro.mpi.types import MpiRequest
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def make_world(num_hosts=2, config=None, mode=ThreadMode.FUNNELED):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    return env, MpiWorld(env, fabric, config or intel_mpi(), mode)


# ---------------------------------------------------------------------------
# matching engine units
# ---------------------------------------------------------------------------
def test_posted_queue_fifo_and_traversal_count():
    q = PostedQueue()
    reqs = [MpiRequest("recv", 0, t, 0) for t in (1, 2, 1)]
    for r in reqs:
        q.post(PostedReceive(r, 0, r.tag))
    entry, inspected = q.match_arrival(src=0, tag=1)
    assert entry.req is reqs[0]          # first matching wins (FIFO)
    assert inspected == 1
    entry, inspected = q.match_arrival(src=0, tag=1)
    assert entry.req is reqs[2]
    assert inspected == 2                # skipped the tag-2 entry
    _e, inspected = q.match_arrival(src=0, tag=9)
    assert _e is None and inspected == 1  # full traversal of the remnant


def test_posted_queue_wildcards():
    q = PostedQueue()
    r = MpiRequest("recv", ANY_SOURCE, ANY_TAG, 0)
    q.post(PostedReceive(r, ANY_SOURCE, ANY_TAG))
    entry, _ = q.match_arrival(src=5, tag=77)
    assert entry.req is r


def test_posted_queue_cancel():
    q = PostedQueue()
    r = MpiRequest("recv", 0, 1, 0)
    q.post(PostedReceive(r, 0, 1))
    assert q.cancel(r)
    assert r.cancelled
    assert not q.cancel(r)
    assert len(q) == 0


def test_unexpected_queue_probe_does_not_consume():
    q = UnexpectedQueue()
    q.add(UnexpectedMessage(3, 7, 100, "x", "eager"))
    msg, _ = q.match_receive(3, 7, remove=False)
    assert msg is not None and len(q) == 1
    msg, _ = q.match_receive(3, 7, remove=True)
    assert msg is not None and len(q) == 0


def test_unexpected_queue_tracks_max_length():
    q = UnexpectedQueue()
    for i in range(5):
        q.add(UnexpectedMessage(0, i, 1, None, "eager"))
    q.match_receive(0, 2)
    assert q.max_length == 5


def test_request_double_completion_rejected():
    r = MpiRequest("send", 1, 0, 8)
    r._complete()
    with pytest.raises(RuntimeError, match="twice"):
        r._complete()


def test_request_on_complete_after_done_runs_immediately():
    r = MpiRequest("send", 1, 0, 8)
    r._complete()
    hits = []
    r.on_complete(lambda _r: hits.append(1))
    assert hits == [1]


def test_status_repr():
    s = MpiStatus(2, 9, 512)
    assert "src=2" in repr(s) and "512" in repr(s)


# ---------------------------------------------------------------------------
# endpoint paths
# ---------------------------------------------------------------------------
def test_negative_user_tag_rejected():
    from repro.mpi.exceptions import MPIUsageError

    env, world = make_world()

    def bad(env):
        yield from world.endpoint(0).isend(1, tag=-5, size=8)

    env.process(bad(env))
    with pytest.raises(MPIUsageError, match="negative user tag"):
        env.run()


def test_unexpected_rendezvous_then_matching_recv():
    """RTS parks unexpected; a later irecv answers it."""
    env, world = make_world()
    big = intel_mpi().eager_limit * 2
    result = {}

    def sender(env):
        ep = world.endpoint(0)
        req = yield from ep.isend(1, tag=4, size=big, payload="late-match")
        yield from ep.wait(req)

    def receiver(env):
        ep = world.endpoint(1)
        yield env.timeout(50e-6)  # let the RTS park as unexpected
        yield from ep.progress()
        assert len(ep.unexpected) == 1
        payload, status = yield from ep.recv(source=0, tag=4)
        result["payload"] = payload
        result["count"] = status.count

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert result["payload"] == "late-match"
    assert result["count"] == big


def test_interleaved_pairs_do_not_cross_match():
    """Four ranks, two independent pairs, same tag: no cross-talk."""
    env, world = make_world(num_hosts=4)
    got = {}

    def pair(env, a, b):
        def sender(env):
            ep = world.endpoint(a)
            yield from ep.isend(b, tag=1, size=32, payload=f"{a}->{b}")

        def receiver(env):
            ep = world.endpoint(b)
            payload, _ = yield from ep.recv(source=a, tag=1)
            got[b] = payload

        env.process(sender(env))
        env.process(receiver(env))

    pair(env, 0, 1)
    pair(env, 2, 3)
    env.run()
    assert got == {1: "0->1", 3: "2->3"}


def test_send_blocking_wrapper():
    env, world = make_world()
    done = {}

    def sender(env):
        req = yield from world.endpoint(0).send(1, tag=2, size=64, payload="b")
        done["req"] = req

    def receiver(env):
        yield from world.endpoint(1).recv(source=0, tag=2)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert done["req"].done


def test_many_small_messages_under_multiple_mode():
    env, world = make_world(mode=ThreadMode.MULTIPLE)
    n = 25
    got = []

    def sender(env):
        ep = world.endpoint(0)
        for i in range(n):
            yield from ep.isend(1, tag=1, size=16, payload=i, thread="s")

    def receiver(env):
        ep = world.endpoint(1)
        for _ in range(n):
            payload, _ = yield from ep.recv(source=0, tag=1, thread="r")
            got.append(payload)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert got == list(range(n))
