"""Shared fixtures for the test suite."""

import pytest

from repro.sim.engine import Environment
from repro.sim.machine import stampede2
from repro.netapi.nic import Fabric


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def machine():
    return stampede2()


def make_fabric(env, num_hosts, machine=None):
    return Fabric(env, num_hosts, machine or stampede2())


@pytest.fixture
def fabric2(env, machine):
    return Fabric(env, 2, machine)


@pytest.fixture
def fabric4(env, machine):
    return Fabric(env, 4, machine)
