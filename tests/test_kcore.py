"""Tests for the k-core decomposition extension."""

import numpy as np
import pytest

from repro.apps import KCore, make_app
from repro.engine import BspEngine, EngineConfig
from repro.engine.bsp import symmetrize
from repro.graph.csr import CsrGraph
from repro.graph.generators import kron, rmat


def run(graph, k, hosts=4, layer="lci", policy="cvc"):
    app = KCore(k=k)
    eng = BspEngine(
        graph, app, EngineConfig(num_hosts=hosts, layer=layer, policy=policy)
    )
    eng.run()
    return eng.assemble_global(), app


def test_k_must_be_positive():
    with pytest.raises(ValueError):
        KCore(k=0)


def test_registry_includes_kcore():
    app = make_app("kcore", k=4)
    assert isinstance(app, KCore) and app.k == 4


def test_reference_on_known_graph():
    # A triangle (3-clique) with a tail: the 2-core is exactly the triangle.
    src = np.array([0, 1, 2, 2])
    dst = np.array([1, 2, 0, 3])
    g = symmetrize(CsrGraph.from_edges(src, dst, 4))
    alive = KCore(k=2).reference(g)
    assert list(alive) == [1, 1, 1, 0]


def test_reference_cascading_removal():
    # A path 0-1-2-3: no node survives a 2-core (peeling cascades).
    src = np.array([0, 1, 2])
    dst = np.array([1, 2, 3])
    g = symmetrize(CsrGraph.from_edges(src, dst, 4))
    assert KCore(k=2).reference(g).sum() == 0


@pytest.mark.parametrize("layer", ["lci", "mpi-probe", "mpi-rma"])
def test_distributed_matches_reference(layer):
    g = rmat(8, edge_factor=6, seed=5)
    got, app = run(g, k=3, layer=layer)
    want = app.reference(symmetrize(g))
    assert np.array_equal(got, want), layer


@pytest.mark.parametrize("policy", ["cvc", "edge-cut"])
def test_distributed_across_policies(policy):
    g = kron(8, seed=9)
    got, app = run(g, k=4, policy=policy)
    assert np.array_equal(got, app.reference(symmetrize(g)))


def test_kcore_nesting_property():
    """(k+1)-core is a subgraph of the k-core."""
    g = rmat(9, edge_factor=8, seed=7)
    cores = {}
    for k in (2, 4, 6):
        got, _ = run(g, k=k, hosts=4)
        cores[k] = got.astype(bool)
    assert np.all(cores[4] <= cores[2])
    assert np.all(cores[6] <= cores[4])


def test_core_members_have_core_degree():
    """Within the k-core, every member has >= k alive neighbours."""
    g = symmetrize(rmat(8, edge_factor=6, seed=3))
    got, _ = run(g, k=3, hosts=3)
    alive = got.astype(bool)
    src, dst = g.edges()
    alive_deg = np.zeros(g.num_nodes, dtype=int)
    sel = alive[src] & alive[dst]
    np.add.at(alive_deg, src[sel], 1)
    assert np.all(alive_deg[alive] >= 3)


def test_high_k_kills_everything():
    g = rmat(7, edge_factor=4, seed=2)
    got, _ = run(g, k=10**6, hosts=2)
    assert got.sum() == 0
