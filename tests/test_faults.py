"""Unit tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro.apps import Bfs, PageRank
from repro.engine import BspEngine, EngineConfig
from repro.faults import (
    NAMED_PLANS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LostCompletionError,
    get_plan,
)
from repro.graph.generators import rmat
from repro.mpi.exceptions import MPIProtocolError
from repro.sim.engine import Environment
from repro.sim.trace import Tracer

US = 1e-6


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan model
# ----------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("meteor")
    with pytest.raises(ValueError):
        FaultSpec("drop", rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec("reorder", rate=0.1)  # needs positive delay
    with pytest.raises(ValueError):
        FaultSpec("straggler", factor=0.5)  # must slow down, not speed up
    with pytest.raises(ValueError):
        FaultSpec("degrade", bandwidth_factor=0.0)
    with pytest.raises(ValueError):
        FaultSpec("nic_stall", host=0)  # unbounded stall livelocks


def test_spec_windows_and_filters():
    s = FaultSpec("drop", rate=1.0, start=10.0, duration=5.0, src=1)
    assert s.end == 15.0
    assert s.in_window(10.0) and s.in_window(14.999)
    assert not s.in_window(9.999) and not s.in_window(15.0)

    class P:
        src, dst = 1, 2

        class ptype:
            name = "EGR"

    assert s.matches_packet(P, 12.0)
    P.src = 0
    assert not s.matches_packet(P, 12.0)


def test_named_plans_resolve():
    for name in NAMED_PLANS:
        plan = get_plan(name)
        assert isinstance(plan, FaultPlan)
        assert plan.describe()
    assert get_plan("drop-1pct", seed=7).seed == 7
    with pytest.raises(ValueError):
        get_plan("no-such-plan")
    # pass-through for plan objects
    p = FaultPlan(specs=(FaultSpec("drop", rate=0.5),))
    assert get_plan(p) is p
    assert p.needs_reliability
    assert not NAMED_PLANS["straggler"].needs_reliability


# ----------------------------------------------------------------------
# Injector mechanics (no cluster needed)
# ----------------------------------------------------------------------
def test_straggler_dilation_piecewise():
    env = Environment()
    plan = FaultPlan(specs=(
        FaultSpec("straggler", host=0, factor=4.0, start=10.0, duration=8.0),
    ))
    inj = FaultInjector(env, plan)
    # Entirely before the window: unchanged.
    assert inj.dilate(0, 5.0, 0.0) == 5.0
    # Entirely inside: 4x.
    assert inj.dilate(0, 1.0, 11.0) == pytest.approx(4.0)
    # Straddling the start: 2s at full speed, then 1s of work at 4x.
    assert inj.dilate(0, 3.0, 8.0) == pytest.approx(2.0 + 4.0)
    # Work outlasting the window: 2s of work burn the whole 8s window
    # at 4x, the remaining 1s runs at full speed after it closes.
    assert inj.dilate(0, 3.0, 10.0) == pytest.approx(8.0 + 1.0)
    # Other hosts unaffected.
    assert inj.dilate(1, 5.0, 11.0) == 5.0


def test_identical_seeds_identical_draw_streams():
    env = Environment()
    plan = FaultPlan(specs=(FaultSpec("drop", rate=0.3),), seed=42)

    class P:
        src, dst, size = 0, 1, 100

        class ptype:
            name = "EGR"

    def fates(p):
        inj = FaultInjector(env, p)
        return [inj.transit_fate(P) is not None for _ in range(200)]

    assert fates(plan) == fates(plan)
    assert fates(plan) != fates(plan.with_seed(43))


def test_injector_traces_instants_with_fault_category():
    env = Environment()
    tracer = Tracer(env)
    plan = FaultPlan(specs=(
        FaultSpec("drop", rate=1.0),
        FaultSpec("straggler", host=2, factor=2.0, start=5.0, duration=1.0),
    ))
    inj = FaultInjector(env, plan, tracer=tracer)

    class P:
        src, dst, size = 0, 1, 64

        class ptype:
            name = "RTS"

    assert inj.transit_fate(P).dropped
    instants = tracer.instants_for("fault")
    # The window markers plus the drop.
    names = [i["name"] for i in instants]
    assert "straggler begin" in names and "straggler end" in names
    assert any(n.startswith("drop") for n in names)
    chrome = tracer.to_chrome_trace()["traceEvents"]
    fault_events = [e for e in chrome if e["ph"] == "i" and e["cat"] == "fault"]
    assert len(fault_events) == len(instants)


# ----------------------------------------------------------------------
# End-to-end: hooks + recovery + metrics
# ----------------------------------------------------------------------
def _bfs_pair(layer, plan, hosts=4, **cfg_kw):
    g = rmat(7, edge_factor=8, seed=31)
    app = Bfs(source=0)
    base = BspEngine(g, app, EngineConfig(num_hosts=hosts, layer=layer))
    base.run()
    want = base.assemble_global()
    eng = BspEngine(
        g, app,
        EngineConfig(num_hosts=hosts, layer=layer, fault_plan=plan, **cfg_kw),
    )
    return eng, want


@pytest.mark.parametrize(
    "plan", ["drop-5pct", "dup-2pct", "reorder-heavy", "flaky-link"]
)
def test_lci_recovers_exact_answer(plan):
    eng, want = _bfs_pair("lci", plan)
    m = eng.run()
    assert np.array_equal(eng.assemble_global(), want), plan
    assert sum(m.fault_counts.values()) > 0, "plan injected nothing"
    # Recovery machinery ran and is visible in the metrics.
    assert m.layer_counters.get("rel_sends", 0) > 0
    assert m.layer_counters.get("acks", 0) > 0


def test_lci_windowed_faults_slow_but_correct():
    for plan in ("degraded-link", "nic-stall", "straggler"):
        eng, want = _bfs_pair("lci", plan)
        m = eng.run()
        assert np.array_equal(eng.assemble_global(), want), plan
        # Windowed faults never need the recovery protocol.
        assert m.layer_counters.get("retransmissions", 0) == 0


def test_degraded_link_costs_time():
    g = rmat(7, edge_factor=8, seed=31)
    app = Bfs(source=0)
    base = BspEngine(g, app, EngineConfig(num_hosts=4, layer="lci"))
    mb = base.run()
    eng = BspEngine(g, app, EngineConfig(
        num_hosts=4, layer="lci", fault_plan="degraded-link"))
    m = eng.run()
    assert m.total_seconds > mb.total_seconds
    assert m.fault_counts.get("degraded_pkts", 0) > 0


def test_mpi_hangs_on_lost_completion():
    for layer in ("mpi-probe", "mpi-rma"):
        eng, _ = _bfs_pair(layer, "drop-5pct", max_events=2_000_000)
        with pytest.raises(LostCompletionError) as ei:
            eng.run()
        assert "lost completion" in str(ei.value)


def test_mpi_duplicate_rendezvous_is_protocol_error():
    from dataclasses import replace
    from repro.mpi.presets import MPI_PRESETS

    plan = FaultPlan(specs=(
        FaultSpec("duplicate", rate=1.0, delay=1 * US, ptypes=("RDMA",)),
    ))
    g = rmat(7, edge_factor=8, seed=31)
    eng = BspEngine(
        g, PageRank(max_rounds=3, tol=1e-12),
        EngineConfig(
            num_hosts=2, layer="mpi-probe", fault_plan=plan,
            layer_kwargs={
                # Force every blob through the rendezvous protocol.
                "mpi_config": replace(MPI_PRESETS["intelmpi"], eager_limit=64)
            },
        ),
    )
    with pytest.raises(MPIProtocolError):
        eng.run()


def test_mpi_probe_duplicates_grow_unexpected_queue():
    g = rmat(7, edge_factor=8, seed=31)
    app = PageRank(max_rounds=3, tol=1e-12)
    plan = FaultPlan(specs=(FaultSpec("duplicate", rate=0.2, delay=5 * US),))
    base = BspEngine(g, app, EngineConfig(num_hosts=4, layer="mpi-probe"))
    mb = base.run()
    eng = BspEngine(g, app, EngineConfig(
        num_hosts=4, layer="mpi-probe", fault_plan=plan))
    m = eng.run()
    # Duplicate eager messages never match a posted receive: they pile up
    # in the unexpected queue (MPI's divergent failure mode — a leak, not
    # a crash).
    assert (m.layer_counters.get("unexpected_msgs", 0)
            > mb.layer_counters.get("unexpected_msgs", 0))


def test_no_plan_no_hooks():
    g = rmat(7, edge_factor=8, seed=31)
    eng = BspEngine(g, Bfs(source=0), EngineConfig(num_hosts=4, layer="lci"))
    assert eng.injector is None
    assert eng.fabric.faults is None
    assert eng.env.faults is None
    assert all(l.rt.reliability is None for l in eng.layers)
    m = eng.run()
    assert m.fault_counts == {}
    assert "rel_sends" not in m.layer_counters


# ----------------------------------------------------------------------
# Chaos harness + CLI
# ----------------------------------------------------------------------
def test_chaos_harness_outcomes():
    from repro.bench.scenarios import Scenario
    from repro.faults.harness import format_chaos_report, run_chaos

    sc = Scenario(app="bfs", graph="rmat", scale=7, hosts=4, layer="lci")
    rep = run_chaos(sc, "drop-5pct")
    assert rep.outcome == "recovered"
    assert rep.correct and rep.overhead > 0
    assert rep.fault_counts.get("drops", 0) > 0
    assert rep.recovery.get("retransmissions", 0) > 0
    assert "recovered" in format_chaos_report(rep)

    sc_mpi = Scenario(app="bfs", graph="rmat", scale=7, hosts=4,
                      layer="mpi-probe")
    rep = run_chaos(sc_mpi, "drop-5pct")
    assert rep.outcome == "hung"
    assert not rep.correct


def test_scenario_fault_plan_knob():
    from repro.bench.scenarios import Scenario, build_engine

    sc = Scenario(app="bfs", graph="rmat", scale=7, hosts=4, layer="lci",
                  fault_plan="drop-5pct", fault_seed=3)
    assert "+drop-5pct" in sc.label()
    eng = build_engine(sc)
    assert eng.injector is not None
    assert eng.injector.plan.seed == 3
    m = eng.run()
    assert m.fault_counts


def test_cli_chaos_subcommand(capsys):
    from repro.cli import main

    assert main(["chaos", "--list-plans"]) == 0
    out = capsys.readouterr().out
    assert "flaky-link" in out and "chaos" in out

    rc = main(["chaos", "--plan", "drop-1pct", "--app", "bfs",
               "--scale", "7", "--hosts", "4", "--layer", "lci"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "recovered" in out
