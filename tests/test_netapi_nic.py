"""Tests for the simulated NIC and fabric (repro.netapi.nic)."""

import pytest

from repro.netapi.nic import Fabric, RegisteredBuffer
from repro.netapi.packet import (
    CONTROL_PACKET_BYTES,
    PACKET_HEADER_BYTES,
    Packet,
    PacketType,
)
from repro.sim.engine import Environment, SimulationError
from repro.sim.machine import stampede2


@pytest.fixture
def fab(env):
    return Fabric(env, 2, stampede2())


def make_pkt(src=0, dst=1, size=100, ptype=PacketType.EGR, **meta):
    pkt = Packet(ptype, src, dst, tag=0, size=size)
    pkt.meta.update(meta)
    return pkt


def test_wire_bytes_accounting():
    assert make_pkt(size=100).wire_bytes == 100 + PACKET_HEADER_BYTES
    assert make_pkt(size=100, ptype=PacketType.RTS).wire_bytes == CONTROL_PACKET_BYTES
    assert make_pkt(size=100, ptype=PacketType.RTR).wire_bytes == CONTROL_PACKET_BYTES


def test_delivery_latency(env, fab):
    nic0, nic1 = fab.nic(0), fab.nic(1)
    pkt = make_pkt(size=0)
    assert nic0.try_inject(pkt)
    env.run()
    assert nic1.poll() is pkt
    model = stampede2().nic
    expected = model.serialization_time(pkt.wire_bytes) + model.latency
    assert env.now == pytest.approx(expected)


def test_serialization_time_scales_with_size(env, fab):
    nic0, nic1 = fab.nic(0), fab.nic(1)
    sizes = (1000, 1_000_000)
    arrivals = []
    for size in sizes:
        e = Environment()
        f = Fabric(e, 2, stampede2())
        f.nic(0).try_inject(make_pkt(size=size))
        e.run()
        arrivals.append(e.now)
    assert arrivals[1] > arrivals[0]
    bw = stampede2().nic.bandwidth
    assert arrivals[1] - arrivals[0] == pytest.approx(
        (sizes[1] - sizes[0]) / bw
    )


def test_per_pair_fifo_ordering(env, fab):
    """Packets between one pair arrive in injection order (RC semantics)."""
    nic0, nic1 = fab.nic(0), fab.nic(1)
    pkts = [make_pkt(size=100 * (5 - i)) for i in range(5)]
    for p in pkts:
        assert nic0.try_inject(p)
    env.run()
    got = []
    while True:
        p = nic1.poll()
        if p is None:
            break
        got.append(p)
    assert got == pkts


def test_injection_rate_cap(env):
    """Minimum gap between message injections bounds the rate."""
    machine = stampede2()
    fab = Fabric(env, 2, machine)
    nic0 = fab.nic(0)
    n = 50
    for _ in range(n):
        assert nic0.try_inject(make_pkt(size=0))
    env.run()
    gap = machine.nic.injection_gap
    # n messages cannot all arrive before (n-1) injection gaps elapse.
    assert env.now >= (n - 1) * gap


def test_tx_queue_depth_enforced(env):
    from dataclasses import replace

    machine = stampede2()
    machine = replace(machine, nic=replace(machine.nic, tx_queue_depth=4))
    fab = Fabric(env, 2, machine)
    nic0 = fab.nic(0)
    ok = [nic0.try_inject(make_pkt(size=10_000_000)) for _ in range(6)]
    assert ok == [True] * 4 + [False] * 2
    assert nic0.stats.counter_value("tx_queue_full") == 2
    env.run()
    # Once drained, injection works again.
    assert nic0.try_inject(make_pkt(size=0))


def test_local_complete_at_departure(env, fab):
    nic0 = fab.nic(0)
    times = []
    pkt = make_pkt(size=1000)
    nic0.try_inject(pkt, on_local_complete=lambda: times.append(env.now))
    env.run()
    ser = stampede2().nic.serialization_time(pkt.wire_bytes)
    assert times == [pytest.approx(ser)]


def test_wrong_source_rejected(env, fab):
    with pytest.raises(SimulationError, match="injected from host"):
        fab.nic(0).try_inject(make_pkt(src=1, dst=0))


def test_wait_arrival_immediate_when_pending(env, fab):
    nic0, nic1 = fab.nic(0), fab.nic(1)
    nic0.try_inject(make_pkt())
    env.run()
    ev = nic1.wait_arrival()
    assert ev.triggered


def test_wait_arrival_fires_on_delivery(env, fab):
    nic0, nic1 = fab.nic(0), fab.nic(1)
    times = []

    def waiter(env):
        yield nic1.wait_arrival()
        times.append(env.now)

    env.process(waiter(env))
    nic0.try_inject(make_pkt())
    env.run()
    assert len(times) == 1 and times[0] > 0


# ---------------------------------------------------------------------------
# RDMA
# ---------------------------------------------------------------------------
def test_rdma_write_lands_in_registered_buffer(env, fab):
    nic0, nic1 = fab.nic(0), fab.nic(1)
    buf = nic1.register(4096, label="sink")
    pkt = make_pkt(size=256, ptype=PacketType.RDMA, rkey=buf.rkey, offset=128)
    pkt.payload = {"data": 42}
    nic0.try_inject(pkt, notify_target=False)
    env.run()
    assert buf.contents[128] == {"data": 42}
    assert buf.bytes_written == 256
    # Silent at the target CPU: nothing to poll.
    assert nic1.poll() is None


def test_rdma_with_target_notify(env, fab):
    nic0, nic1 = fab.nic(0), fab.nic(1)
    buf = nic1.register(4096)
    pkt = make_pkt(size=64, ptype=PacketType.RDMA, rkey=buf.rkey)
    nic0.try_inject(pkt, notify_target=True)
    env.run()
    assert nic1.poll() is pkt


def test_rdma_local_complete_after_ack(env, fab):
    """Put completion needs the ACK: one extra latency vs plain send."""
    nic0, nic1 = fab.nic(0), fab.nic(1)
    buf = nic1.register(4096)
    done = []
    pkt = make_pkt(size=0, ptype=PacketType.RDMA, rkey=buf.rkey)
    nic0.try_inject(
        pkt, notify_target=False, on_local_complete=lambda: done.append(env.now)
    )
    env.run()
    model = stampede2().nic
    one_way = (
        model.serialization_time(pkt.wire_bytes)
        + model.latency + model.rdma_extra_latency
    )
    assert done[0] == pytest.approx(one_way + model.latency)


def test_rdma_unknown_rkey_fails(env, fab):
    pkt = make_pkt(size=64, ptype=PacketType.RDMA, rkey=999999)
    fab.nic(0).try_inject(pkt, notify_target=False)
    with pytest.raises(SimulationError, match="unknown rkey"):
        env.run()


def test_rdma_out_of_bounds_rejected(env, fab):
    buf = fab.nic(1).register(128)
    pkt = make_pkt(size=256, ptype=PacketType.RDMA, rkey=buf.rkey)
    fab.nic(0).try_inject(pkt, notify_target=False)
    with pytest.raises(SimulationError, match="out of bounds"):
        env.run()


def test_rdma_to_revoked_buffer_fails(env, fab):
    nic1 = fab.nic(1)
    buf = nic1.register(4096)
    rkey = buf.rkey
    nic1.deregister(buf)
    pkt = make_pkt(size=64, ptype=PacketType.RDMA, rkey=rkey)
    fab.nic(0).try_inject(pkt, notify_target=False)
    with pytest.raises(SimulationError, match="unknown rkey"):
        env.run()


def test_registered_buffer_clear():
    buf = RegisteredBuffer(0, 1024)
    buf.write(0, "a", 100)
    buf.write(100, "b", 100)
    assert buf.bytes_written == 200
    buf.clear()
    assert buf.contents == {} and buf.bytes_written == 0


# ---------------------------------------------------------------------------
# Fabric
# ---------------------------------------------------------------------------
def test_fabric_validates_host_ids(env, fab):
    with pytest.raises(SimulationError, match="no such host"):
        fab.nic(7)


def test_fabric_requires_hosts(env):
    with pytest.raises(SimulationError):
        Fabric(env, 0, stampede2())


def test_fabric_total_counters(env, fab):
    fab.nic(0).try_inject(make_pkt())
    fab.nic(1).try_inject(make_pkt(src=1, dst=0))
    env.run()
    assert fab.total("pkts_sent") == 2
    assert fab.total("pkts_received") == 2


def test_misdelivered_packet_rejected(env, fab):
    with pytest.raises(SimulationError, match="delivered to host"):
        fab.nic(0).deliver(make_pkt(src=1, dst=1))
