"""Edge cases of the communication layers beyond the conformance suite."""

import numpy as np
import pytest

from repro.comm import make_layers
from repro.comm.rma_layer import RmaCommLayer, worst_case_blob_bytes
from repro.comm.serialization import pack_updates
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def make_world(layer_name, num_hosts=2, **kwargs):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    layers = make_layers(layer_name, env, fabric, stampede2(), **kwargs)
    return env, layers


def blob(phase, n=4, pair_len=64):
    return pack_updates(
        np.arange(n), np.arange(n, dtype=np.int64), pair_len, 8, phase=phase
    )


def test_make_layers_unknown_name():
    env = Environment()
    fabric = Fabric(env, 2, stampede2())
    with pytest.raises(ValueError, match="unknown comm layer"):
        make_layers("tcp", env, fabric, stampede2())


def test_worst_case_blob_bytes_formula():
    # header 16 + bitset ceil(100/8)=13 + 100*8
    assert worst_case_blob_bytes(100, 8) == 16 + 13 + 800
    assert worst_case_blob_bytes(0, 8) == 16


def test_rma_pattern_of_requires_tuple_phase():
    with pytest.raises(ValueError, match="phases"):
        RmaCommLayer.pattern_of("round-3")
    assert RmaCommLayer.pattern_of((3, "reduce")) == "reduce"


def test_collect_out_of_order_phases_stash():
    """A blob for a future phase parks until that phase is collected."""
    env, layers = make_world("lci")
    order = []

    def sender(env):
        # Send phase B first, then phase A.
        yield from layers[0].send(1, blob(("B",)))
        yield from layers[0].send(1, blob(("A",)))

    def receiver(env):
        got_a = yield from layers[1].collect(("A",), [0])
        order.append(("A", len(got_a)))
        got_b = yield from layers[1].collect(("B",), [0])
        order.append(("B", len(got_b)))
        for l in layers:
            l.shutdown()

    env.process(sender(env))
    env.process(receiver(env))
    env.run(max_events=1_000_000)
    assert order == [("A", 1), ("B", 1)]


def test_unexpected_source_raises():
    env, layers = make_world("lci", num_hosts=3)

    def sender(env):
        yield from layers[2].send(1, blob(("P",)))

    def receiver(env):
        # Expecting host 0 only; host 2's blob must be flagged.
        yield from layers[1].collect(("P",), [0])

    env.process(sender(env))
    env.process(receiver(env))
    with pytest.raises(RuntimeError, match="unexpected blob from 2"):
        env.run(max_events=1_000_000)


def test_probe_unbuffered_sends_one_message_per_blob():
    env, layers = make_world("mpi-probe", buffered=False)

    def sender(env):
        for i in range(5):
            yield from layers[0].send(1, blob((i,)))
        # No flush needed: unbuffered mode forwards immediately.
        for i in range(5):
            got = yield from layers[1].collect((i,), [0])
            layers[1].consume(got[0][1])
        for l in layers:
            l.shutdown()

    env.process(sender(env))
    env.run(max_events=1_000_000)
    assert layers[0].stats.counter_value("mpi_isends") == 5
    assert layers[0].stats.counter_value("aggregates_flushed") == 0


def test_empty_blob_roundtrip():
    """Zero-update blobs (quiet pairs) still complete the phase."""
    env, layers = make_world("lci")
    result = {}

    def host(h):
        layer = layers[h]
        phase = (0, "reduce")
        peer = 1 - h
        empty = pack_updates(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            64, 8, phase=phase,
        )
        yield from layer.send(peer, empty)
        got = yield from layer.collect(phase, [peer])
        result[h] = got[0][1].count
        layer.consume(got[0][1])
        layer.shutdown()

    for h in range(2):
        env.process(host(h))
    env.run(max_events=1_000_000)
    assert result == {0: 0, 1: 0}


def test_footprint_counts_fixed_pool_for_lci():
    env, layers = make_world("lci")
    pool = layers[0].rt.pool.bytes_allocated()
    assert layers[0].footprint.current == pool
    assert layers[0].footprint.peak >= pool


def test_rma_setup_seconds_recorded():
    env, layers = make_world("mpi-rma", num_hosts=2)

    class _P:
        def __len__(self):
            return 32

    pairs = {(0, 1): _P(), (1, 0): _P()}

    def host(h):
        yield from layers[h].setup(
            reduce_pairs=pairs, field_bytes=8, patterns=("reduce",)
        )

    procs = [env.process(host(h)) for h in range(2)]
    env.run(max_events=1_000_000)
    assert all(p.ok for p in procs)
    assert layers[0].setup_seconds > 0
    assert layers[0].windows["reduce"] is layers[1].windows["reduce"]
