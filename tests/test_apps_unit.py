"""Unit tests for the vertex programs and their reference solutions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import APPS, Bfs, ConnectedComponents, PageRank, Sssp, make_app
from repro.apps.bfs import INF
from repro.engine.bsp import symmetrize
from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat


def line_graph(n=5, weights=None):
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    w = np.asarray(weights) if weights is not None else None
    return CsrGraph.from_edges(src, dst, n, edge_data=w, name="line")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_registry_contents():
    assert set(APPS) == {"bfs", "cc", "sssp", "pagerank", "kcore"}


def test_make_app_kwargs():
    app = make_app("bfs", source=3)
    assert app.source == 3
    pr = make_app("pagerank", max_rounds=7, tol=1e-3)
    assert pr.max_rounds == 7 and pr.tol == 1e-3


def test_make_app_unknown():
    with pytest.raises(ValueError, match="unknown app"):
        make_app("apsp")


def test_app_contracts():
    """The class-level contracts the engine relies on."""
    assert Bfs().reduce_op == "min" and Bfs().label_is_broadcast_field
    assert Sssp().needs_weights
    assert ConnectedComponents().needs_symmetric
    assert PageRank().reduce_op == "add"
    assert not PageRank().label_is_broadcast_field
    assert PageRank(max_rounds=42).max_rounds == 42


# ---------------------------------------------------------------------------
# references on known graphs
# ---------------------------------------------------------------------------
def test_bfs_reference_line():
    g = line_graph(5)
    levels = Bfs(source=0).reference(g)
    assert list(levels) == [0, 1, 2, 3, 4]


def test_bfs_reference_unreachable():
    g = line_graph(5)
    levels = Bfs(source=4).reference(g)  # no outgoing edges
    assert levels[4] == 0
    assert all(l == INF for l in levels[:4])


def test_sssp_reference_picks_cheaper_path():
    # 0->1 (10), 0->2 (1), 2->1 (2): shortest 0->1 is 3 via 2.
    src = np.array([0, 0, 2])
    dst = np.array([1, 2, 1])
    w = np.array([10, 1, 2])
    g = CsrGraph.from_edges(src, dst, 3, edge_data=w)
    dist = Sssp(source=0).reference(g)
    assert list(dist) == [0, 3, 1]


def test_sssp_reference_requires_weights():
    with pytest.raises(ValueError):
        Sssp().reference(line_graph(3))


def test_cc_reference_labels_are_min_ids():
    src = np.array([1, 3])
    dst = np.array([2, 4])
    g = CsrGraph.from_edges(src, dst, 6)
    comp = ConnectedComponents().reference(g)
    assert list(comp) == [0, 1, 1, 3, 3, 5]


def test_pagerank_reference_sums_to_at_most_one():
    g = rmat(8, seed=1)
    ranks = PageRank(max_rounds=50).reference(g)
    assert 0 < ranks.sum() <= 1.0 + 1e-9
    assert np.all(ranks > 0)


def test_pagerank_reference_ranks_hub_higher():
    # Everyone links to node 0.
    n = 10
    src = np.arange(1, n)
    dst = np.zeros(n - 1, dtype=np.int64)
    g = CsrGraph.from_edges(src, dst, n)
    ranks = PageRank(max_rounds=50).reference(g)
    assert ranks[0] == ranks.max()
    assert ranks[0] > 5 * ranks[1]


def test_pagerank_tol_early_stop():
    g = rmat(7, seed=2)
    pr = PageRank(max_rounds=1000, tol=1e-4)
    loose = pr.reference(g)
    tight = PageRank(max_rounds=1000, tol=1e-14).reference(g)
    # Early stop is close to, but not exactly, the converged solution.
    assert np.max(np.abs(loose - tight)) < 1e-2


# ---------------------------------------------------------------------------
# symmetrize helper
# ---------------------------------------------------------------------------
def test_symmetrize_adds_reverse_edges():
    g = line_graph(4)
    s = symmetrize(g)
    assert s.num_edges == 2 * g.num_edges
    fwd = set(zip(*[a.tolist() for a in s.edges()]))
    assert all((d, x) in fwd for x, d in fwd)


def test_symmetrize_preserves_weights():
    g = line_graph(3, weights=[5, 7])
    s = symmetrize(g)
    src, dst = s.edges()
    wmap = {(int(a), int(b)): int(w) for a, b, w in zip(src, dst, s.edge_data)}
    assert wmap[(0, 1)] == wmap[(1, 0)] == 5
    assert wmap[(1, 2)] == wmap[(2, 1)] == 7


# ---------------------------------------------------------------------------
# property-based: full distributed stack equals the references
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    hosts=st.sampled_from([2, 3, 4]),
    layer=st.sampled_from(["lci", "mpi-probe", "mpi-rma"]),
)
def test_property_bfs_distributed_equals_reference(seed, hosts, layer):
    from repro.engine import BspEngine, EngineConfig

    g = rmat(6, edge_factor=6, seed=seed)
    app = Bfs(source=int(seed) % g.num_nodes)
    eng = BspEngine(g, app, EngineConfig(num_hosts=hosts, layer=layer))
    eng.run()
    assert np.array_equal(eng.assemble_global(), app.reference(g))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy=st.sampled_from(["cvc", "edge-cut"]),
)
def test_property_cc_distributed_equals_reference(seed, policy):
    from repro.engine import BspEngine, EngineConfig

    g = rmat(6, edge_factor=4, seed=seed)
    app = ConnectedComponents()
    eng = BspEngine(
        g, app, EngineConfig(num_hosts=3, layer="lci", policy=policy)
    )
    eng.run()
    assert np.array_equal(
        eng.assemble_global(), app.reference(symmetrize(g))
    )
