"""Tests for the static protocol analyzer (repro.sanitize.proto).

Three layers of defense:

1. the mutation corpus — every seeded protocol bug must be caught by
   exactly its intended rule, every clean counterpart must be silent;
2. targeted unit tests for the interprocedural machinery (summaries,
   escape analysis, suppressions, baseline diffing);
3. the acceptance gate — the analyzer must run clean against the
   committed PROTO_BASELINE.json on the repo itself.
"""

import json
from pathlib import Path

import pytest

from repro.sanitize.corpus import BAD_SNIPPETS, CLEAN_SNIPPETS, run_selftest
from repro.sanitize.proto import (
    RULES,
    analyze_repo,
    analyze_source,
    diff_baseline,
    load_baseline,
    normalize_path,
    report_dict,
    save_baseline,
)
from repro.sanitize.report import make_report, to_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Mutation corpus
# ---------------------------------------------------------------------------
def test_corpus_is_large_enough():
    assert len(BAD_SNIPPETS) >= 12
    assert len(CLEAN_SNIPPETS) >= 12
    # every rule has at least one seeded bug
    assert {s.rule for s in BAD_SNIPPETS} == set(RULES)


@pytest.mark.parametrize("snippet", BAD_SNIPPETS,
                         ids=[s.name for s in BAD_SNIPPETS])
def test_seeded_bug_caught_by_exactly_its_rule(snippet):
    findings = analyze_source(snippet.source, snippet.path)
    assert findings, f"{snippet.name}: seeded {snippet.rule} bug missed"
    assert rules_of(findings) == {snippet.rule}


@pytest.mark.parametrize("snippet", CLEAN_SNIPPETS,
                         ids=[s.name for s in CLEAN_SNIPPETS])
def test_clean_snippet_is_finding_free(snippet):
    assert analyze_source(snippet.source, snippet.path) == []


def test_run_selftest_is_green():
    failures, hits = run_selftest()
    assert failures == []
    assert sum(hits.values()) == len(BAD_SNIPPETS)


# ---------------------------------------------------------------------------
# Interprocedural machinery
# ---------------------------------------------------------------------------
def test_creator_summary_propagates_across_helpers():
    src = """
def make(ep, src):
    req = yield from ep.irecv(src, 0)
    return req


def use(ep, src):
    req = yield from make(ep, src)
    return None
"""
    findings = analyze_source(src, "x/repro/mpi/t.py")
    assert rules_of(findings) == {"P201"}
    assert findings[0].symbol == "use"


def test_release_summary_clears_the_caller_token():
    src = """
def finish(ep, req):
    yield from ep.wait(req)


def go(ep, dst, blob):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    yield from finish(ep, req)
"""
    assert analyze_source(src, "x/repro/mpi/t.py") == []


def test_escape_through_container_is_not_a_leak():
    src = """
def stash(ep, dst, blob, pending):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    pending.append(req)
"""
    assert analyze_source(src, "x/repro/mpi/t.py") == []


def test_on_complete_callback_counts_as_handoff():
    src = """
def fire(ep, dst, blob):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    req.on_complete(lambda r: r)
"""
    assert analyze_source(src, "x/repro/mpi/t.py") == []


def test_req_done_branch_refinement():
    # `if req.done:` on the true branch means completion was consumed.
    src = """
def poll(ep, dst, blob, pending):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    if req.done:
        return 0
    pending.append(req)
    return 1
"""
    assert analyze_source(src, "x/repro/mpi/t.py") == []


def test_alloc_guard_failure_path_is_not_a_leak():
    src = """
def guarded(pool):
    ok = yield from pool.alloc()
    if not ok:
        return False
    yield from pool.free()
    return True
"""
    assert analyze_source(src, "x/repro/lci/t.py") == []


def test_callback_handoff_keeps_failure_free_silent():
    # The real queue_iface shape: hand off via callback, free on the
    # failure path — neither a leak nor a double free.
    src = """
def short_send(pool, nic, dst, blob, thread):
    ok = yield from pool.alloc(thread)
    if not ok:
        return False
    pkt = pool.make_packet(0, 0, dst, 0, blob.nbytes, blob)
    sent = nic.inject(pkt, on_done=lambda: pool.free_nowait(thread))
    if not sent:
        pool.free_nowait(thread)
    return True
"""
    assert analyze_source(src, "x/repro/lci/t.py") == []


def test_receiver_gating_ignores_lookalike_methods():
    # .put on a cache and .post on a queue must not trip RMA rules.
    src = """
def lookalikes(cache, inbox, item):
    cache.put(item.key, item)
    inbox.post(item)
    return cache
"""
    assert analyze_source(src, "x/repro/serve/t.py") == []


def test_proto_suppression_comment():
    bad = BAD_SNIPPETS[0]
    line = "    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)"
    patched = bad.source.replace(
        line, line + "  # proto-ok: P201 fire-and-forget by design")
    assert analyze_source(patched, bad.path) == []


# ---------------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------------
def test_normalize_path_is_package_relative():
    assert normalize_path("/x/venv/repro/lci/server.py") == "lci/server.py"
    assert normalize_path("src/repro/comm/rma_layer.py") == (
        "comm/rma_layer.py")


def test_baseline_roundtrip_and_diff(tmp_path):
    findings = analyze_source(BAD_SNIPPETS[0].source, BAD_SNIPPETS[0].path)
    path = tmp_path / "baseline.json"
    save_baseline(findings, path, justification="test fixture")
    accepted = load_baseline(path)
    assert accepted[0]["justification"] == "test fixture"
    new, stale = diff_baseline(findings, accepted)
    assert new == [] and stale == []
    # a different finding is "new"; the old entry becomes stale
    other = analyze_source(BAD_SNIPPETS[2].source, BAD_SNIPPETS[2].path)
    new, stale = diff_baseline(other, accepted)
    assert len(new) == len(other) and len(stale) == 1


def test_baseline_matches_on_symbol_not_line():
    findings = analyze_source(BAD_SNIPPETS[0].source, BAD_SNIPPETS[0].path)
    # shift every line: the finding moves but the key does not
    shifted = analyze_source("\n\n\n" + BAD_SNIPPETS[0].source,
                             BAD_SNIPPETS[0].path)
    accepted = [{"rule": f.rule, "path": normalize_path(f.path),
                 "symbol": f.symbol} for f in findings]
    new, stale = diff_baseline(shifted, accepted)
    assert new == [] and stale == []


def test_repo_analysis_matches_committed_baseline():
    """Acceptance criterion: repo findings ⊆ PROTO_BASELINE.json."""
    result = analyze_repo()
    assert result.files_checked > 50
    accepted = load_baseline(REPO_ROOT / "PROTO_BASELINE.json")
    for entry in accepted:
        assert entry.get("justification", "").strip(), (
            "baseline entries must carry a written justification")
    new, stale = diff_baseline(result.findings, accepted)
    assert new == [], [str(f) for f in new]
    assert stale == [], stale


# ---------------------------------------------------------------------------
# Shared report schema + SARIF
# ---------------------------------------------------------------------------
def test_analyze_report_shares_lint_schema():
    from repro.sanitize.lint import LintResult, lint_source
    from repro.sanitize.lint import report_dict as lint_report

    findings = analyze_source(BAD_SNIPPETS[0].source, BAD_SNIPPETS[0].path)
    from repro.sanitize.proto import AnalysisResult
    adoc = report_dict(AnalysisResult(findings, 1, 0))
    lfindings = lint_source("import time\nt = time.time()\n",
                            "src/repro/sim/x.py")
    ldoc = lint_report(LintResult(lfindings, 1, 0))
    shared = {"tool", "rules", "findings", "suppressions",
              "files_checked", "counts_by_rule"}
    assert shared <= set(adoc) and shared <= set(ldoc)
    assert adoc["tool"] == "repro-analyze"
    assert ldoc["tool"] == "repro-lint"
    assert adoc["suppressions"] == {"count": 0}
    json.loads(json.dumps(adoc))


def test_sarif_emitter_shape():
    findings = analyze_source(BAD_SNIPPETS[0].source, BAD_SNIPPETS[0].path)
    doc = make_report("repro-analyze", RULES, findings,
                      files_checked=1, suppressed=0)
    sarif = to_sarif(doc)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert set(RULES) == rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "P201"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] >= 1
    assert loc["region"]["startColumn"] >= 1
    json.loads(json.dumps(sarif))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_analyze_check_baseline_and_selftest(tmp_path, capsys):
    from repro.cli import main

    rc = main(["analyze", "--check-baseline",
               str(REPO_ROOT / "PROTO_BASELINE.json")])
    assert rc == 0
    assert "accepted by" in capsys.readouterr().out

    rc = main(["analyze", "--selftest"])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"{len(BAD_SNIPPETS)}/{len(BAD_SNIPPETS)}" in out


def test_cli_analyze_flags_unbaselined_finding(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "repro" / "comm" / "bug.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_SNIPPETS[0].source)
    empty = tmp_path / "empty_baseline.json"
    empty.write_text(json.dumps({"accepted": []}))
    rc = main(["analyze", str(bad), "--check-baseline", str(empty)])
    assert rc == 1
    assert "not in baseline" in capsys.readouterr().err

    # without --check-baseline, findings alone exit 1
    rc = main(["analyze", str(bad)])
    assert rc == 1

    sarif = tmp_path / "out.sarif"
    rc = main(["analyze", str(bad), "--sarif", str(sarif)])
    assert rc == 1
    doc = json.loads(sarif.read_text())
    assert doc["runs"][0]["results"][0]["ruleId"] == "P201"


def test_cli_analyze_write_baseline_roundtrip(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "repro" / "comm" / "bug.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_SNIPPETS[0].source)
    baseline = tmp_path / "baseline.json"
    rc = main(["analyze", str(bad), "--write-baseline", str(baseline)])
    assert rc == 0
    rc = main(["analyze", str(bad), "--check-baseline", str(baseline)])
    assert rc == 0
    capsys.readouterr()
