"""Tests for update-blob serialization and metadata minimization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.serialization import (
    HEADER_BYTES,
    metadata_bytes,
    pack_cost,
    pack_updates,
    unpack_cost,
    unpack_updates,
)
from repro.sim.machine import stampede2


def test_pack_roundtrip():
    pos = np.array([1, 5, 9])
    vals = np.array([10, 50, 90], dtype=np.int64)
    blob = pack_updates(pos, vals, pair_len=16, field_bytes=8, phase=(0, "r"))
    p, v = unpack_updates(blob)
    assert np.array_equal(p, pos)
    assert np.array_equal(v, vals)
    assert blob.count == 3
    assert blob.phase == (0, "r")


def test_metadata_chooses_smaller_encoding():
    # Few updates over a long pair: index list (4B each) wins.
    size, enc = metadata_bytes(num_updates=2, pair_len=1024)
    assert enc == "indices" and size == 8
    # Dense updates: bitset wins.
    size, enc = metadata_bytes(num_updates=500, pair_len=1024)
    assert enc == "bitset" and size == 128


def test_nbytes_formula():
    blob = pack_updates(
        np.arange(4), np.arange(4, dtype=np.int64), pair_len=64, field_bytes=8
    )
    meta = min((64 + 7) // 8, 4 * 4)
    assert blob.nbytes == HEADER_BYTES + meta + 4 * 8
    assert blob.meta_encoding == "bitset"  # 8 bytes <= 16 bytes


def test_empty_blob():
    blob = pack_updates(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        pair_len=100, field_bytes=8,
    )
    assert blob.count == 0
    assert blob.nbytes == HEADER_BYTES + 0  # empty index list beats bitset


def test_position_beyond_pair_rejected():
    with pytest.raises(ValueError, match="beyond pair length"):
        pack_updates(np.array([10]), np.array([1]), pair_len=10, field_bytes=8)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="mismatch"):
        pack_updates(np.array([1, 2]), np.array([1]), pair_len=10, field_bytes=8)


def test_costs_monotone_in_size():
    cpu = stampede2().cpu
    assert pack_cost(cpu, 10, 1000) < pack_cost(cpu, 100, 10000)
    assert unpack_cost(cpu, 0, 0) == 0.0


@settings(max_examples=60, deadline=None)
@given(
    pair_len=st.integers(1, 4096),
    n=st.integers(0, 256),
    field_bytes=st.sampled_from([4, 8, 16]),
)
def test_property_metadata_never_exceeds_either_encoding(pair_len, n, field_bytes):
    n = min(n, pair_len)
    pos = np.arange(n, dtype=np.int64)
    vals = np.zeros(n, dtype=np.int64)
    blob = pack_updates(pos, vals, pair_len, field_bytes)
    meta = blob.nbytes - HEADER_BYTES - n * field_bytes
    assert meta <= (pair_len + 7) // 8
    assert meta <= 4 * n or n == 0
    assert meta >= 0
