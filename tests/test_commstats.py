"""Tests for repro.obs.commstats: the communication-pattern observatory.

The load-bearing guarantees pinned here:

* attaching a :class:`CommStatsContext` leaves ``RunMetrics``
  bit-identical for every comm layer (pure observation), alone and
  combined with lifecycle tracing;
* the traffic matrices *telescope*: wire totals equal the fabric's
  always-on ``pkts_sent``/``bytes_sent`` counters exactly, blob totals
  equal ``RunMetrics.blobs_sent``/``payload_bytes_sent`` exactly;
* identical runs produce byte-identical comm-docs (the fingerprint the
  CI baseline gate is built on), and an injected volume change trips
  the gate;
* every exporter's output is accepted by its validator, including on
  empty/degenerate runs.
"""

import json

import pytest

from repro.bench.scenarios import Scenario, build_engine
from repro.obs import (
    CommStatsContext,
    ObsContext,
    analyze_comm,
    check_comm_baseline,
    comm_doc_to_csv,
    comm_doc_to_json,
    comm_fingerprint,
    comm_prometheus_lines,
    format_comm_report,
    render_heatmap,
    timeline_comm_doc,
    to_prometheus,
    validate_comm_doc,
    validate_prometheus,
)
from repro.obs.commstats import baseline_entry, make_baseline

LAYERS = ("lci", "mpi-probe", "mpi-rma")


def bfs8(layer: str) -> Scenario:
    return Scenario(app="bfs", graph="rmat", scale=8, hosts=8, layer=layer)


@pytest.fixture(scope="module")
def observed_runs():
    """{layer: (plain_metrics, observed_metrics, ctx, fabric)} cache."""
    out = {}
    for layer in LAYERS:
        sc = bfs8(layer)
        plain = build_engine(sc).run()
        ctx = CommStatsContext()
        eng = build_engine(sc, commstats=ctx)
        observed = eng.run()
        out[layer] = (plain, observed, ctx, eng.fabric)
    return out


# ----------------------------------------------------------------------
# Pure observation + telescoping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_commstats_leaves_run_metrics_bit_identical(observed_runs, layer):
    plain, observed, _ctx, _fab = observed_runs[layer]
    assert observed.total_seconds == plain.total_seconds
    assert observed.row() == plain.row()


@pytest.mark.parametrize("layer", LAYERS)
def test_commstats_with_obs_still_bit_identical(layer):
    sc = bfs8(layer)
    plain = build_engine(sc).run()
    both = build_engine(sc, obs=ObsContext(), commstats=CommStatsContext())
    assert both.run().row() == plain.row()


@pytest.mark.parametrize("layer", LAYERS)
def test_wire_matrix_telescopes_to_fabric_counters(observed_runs, layer):
    _plain, _observed, ctx, fabric = observed_runs[layer]
    totals = ctx.comm_doc()["totals"]
    assert totals["wire_msgs"] == fabric.total("pkts_sent")
    assert totals["wire_bytes"] == fabric.total("bytes_sent")
    assert totals["dropped_msgs"] == 0


@pytest.mark.parametrize("layer", LAYERS)
def test_blob_matrix_telescopes_to_run_metrics(observed_runs, layer):
    _plain, observed, ctx, _fab = observed_runs[layer]
    totals = ctx.comm_doc()["totals"]
    assert totals["blob_msgs"] == observed.blobs_sent
    assert totals["blob_bytes"] == observed.payload_bytes_sent


def test_section_totals_equal_matrix_cell_sums(observed_runs):
    doc = observed_runs["lci"][2].comm_doc()
    for section in ("wire", "blobs"):
        for block in doc[section].values():
            cells = block["matrix"].values()
            assert block["msgs"] == sum(c[0] for c in cells)
            assert block["bytes"] == sum(c[1] for c in cells)


def test_rendezvous_segmentation_on_rma(observed_runs):
    doc = observed_runs["mpi-rma"][2].comm_doc()
    phases = analyze_comm(doc)["phases"]
    assert phases["eager"]["bytes"] > 0       # control traffic
    assert phases["rendezvous"]["bytes"] > 0  # RDMA payload
    kinds = set(doc["wire"])
    assert "RDMA" in kinds and "EGR" in kinds


# ----------------------------------------------------------------------
# Determinism + fingerprints
# ----------------------------------------------------------------------
def test_comm_doc_byte_identical_across_repeats():
    sc = bfs8("lci")
    docs = []
    for _ in range(2):
        ctx = CommStatsContext()
        build_engine(sc, commstats=ctx).run()
        docs.append(comm_doc_to_json(ctx.comm_doc()))
    assert docs[0] == docs[1]


def test_fingerprint_ignores_meta_but_not_traffic(observed_runs):
    doc = json.loads(comm_doc_to_json(observed_runs["lci"][2].comm_doc()))
    fp = doc["fingerprint"]
    relabeled = dict(doc, meta=dict(doc["meta"], scenario="renamed"))
    assert comm_fingerprint(relabeled) == fp
    tampered = json.loads(json.dumps(doc))
    first = sorted(tampered["wire"])[0]
    link = sorted(tampered["wire"][first]["matrix"])[0]
    tampered["wire"][first]["matrix"][link][1] += 1
    assert comm_fingerprint(tampered) != fp


# ----------------------------------------------------------------------
# Validator + baseline gate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_validator_accepts_produced_docs(observed_runs, layer):
    assert validate_comm_doc(observed_runs[layer][2].comm_doc()) == []


def test_validator_rejects_tampering(observed_runs):
    doc = json.loads(comm_doc_to_json(observed_runs["lci"][2].comm_doc()))

    bad = json.loads(json.dumps(doc))
    bad["totals"]["wire_bytes"] += 1
    assert validate_comm_doc(bad)

    bad = json.loads(json.dumps(doc))
    first = sorted(bad["wire"])[0]
    bad["wire"][first]["matrix"]["0>999"] = [1, 1]
    assert validate_comm_doc(bad)

    # A consistent volume edit still trips the fingerprint recompute.
    bad = json.loads(json.dumps(doc))
    first = sorted(bad["wire"])[0]
    link = sorted(bad["wire"][first]["matrix"])[0]
    bad["wire"][first]["matrix"][link][1] += 8
    bad["wire"][first]["bytes"] += 8
    bad["totals"]["wire_bytes"] += 8
    assert any("fingerprint" in e for e in validate_comm_doc(bad))


def test_baseline_gate_passes_clean_and_trips_on_volume_change(
    observed_runs,
):
    fresh = {"bfs8/" + layer: baseline_entry(observed_runs[layer][2]
                                             .comm_doc())
             for layer in LAYERS}
    committed = json.loads(json.dumps(make_baseline(fresh)))
    assert check_comm_baseline(fresh, committed) == []

    drifted = json.loads(json.dumps(committed))
    drifted["scenarios"]["bfs8/lci"]["wire_bytes"] += 100
    drifted["scenarios"]["bfs8/lci"]["fingerprint"] = "0" * 16
    problems = check_comm_baseline(fresh, drifted)
    assert problems and any("bfs8/lci" in p for p in problems)

    missing = json.loads(json.dumps(committed))
    del missing["scenarios"]["bfs8/mpi-rma"]
    assert check_comm_baseline(fresh, missing)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_csv_heatmap_report_smoke(observed_runs):
    doc = observed_runs["lci"][2].comm_doc()
    csv = comm_doc_to_csv(doc)
    assert csv.splitlines()[0] == "section,kind,src,dst,msgs,bytes"
    assert len(csv.splitlines()) > 1
    heat = render_heatmap(doc)
    assert "src\\dst heatmap" in heat
    report = format_comm_report(doc)
    assert "fingerprint: " + doc["fingerprint"] in report
    assert "hotspot links" in report


def test_comm_prometheus_merges_and_validates(observed_runs, tmp_path):
    from repro.obs import save_prometheus

    sc = bfs8("lci")
    obs = ObsContext()
    ctx = CommStatsContext()
    build_engine(sc, obs=obs, commstats=ctx).run()
    path = tmp_path / "run.prom"
    save_prometheus(str(path), obs.as_timeline(), comm=ctx.comm_doc())
    text = path.read_text()
    assert validate_prometheus(text) == []
    assert "repro_comm_messages_total" in text
    assert "repro_comm_bytes_total" in text


def test_timeline_comm_doc_matches_blob_matrix(observed_runs):
    sc = bfs8("lci")
    obs = ObsContext()
    ctx = CommStatsContext()
    build_engine(sc, obs=obs, commstats=ctx).run()
    from_timeline = timeline_comm_doc(obs.as_timeline())
    direct = ctx.comm_doc()
    assert validate_comm_doc(from_timeline) == []
    assert from_timeline["totals"]["blob_msgs"] == \
        direct["totals"]["blob_msgs"]
    assert from_timeline["totals"]["blob_bytes"] == \
        direct["totals"]["blob_bytes"]
    assert from_timeline["blobs"] == direct["blobs"]


# ----------------------------------------------------------------------
# Degenerate runs: no traffic at all
# ----------------------------------------------------------------------
def test_empty_context_exports_validate():
    doc = CommStatsContext().comm_doc()
    assert validate_comm_doc(doc) == []
    assert doc["totals"]["wire_msgs"] == 0
    assert "(no traffic)" in render_heatmap(doc)
    lines = comm_prometheus_lines(doc)
    text = "\n".join(lines) + "\n"
    assert validate_prometheus(text) == []
    # Registered families survive an empty run as explicit zeros.
    assert "repro_comm_messages_total 0" in lines
    assert "repro_comm_bytes_total 0" in lines


def test_single_host_run_exports_validate(tmp_path):
    """hosts=1: nothing ever crosses the wire, exporters still work."""
    from repro.obs import save_prometheus

    sc = Scenario(app="bfs", graph="rmat", scale=6, hosts=1, layer="lci")
    obs = ObsContext()
    ctx = CommStatsContext()
    build_engine(sc, obs=obs, commstats=ctx).run()
    doc = ctx.comm_doc()
    assert validate_comm_doc(doc) == []
    assert doc["totals"]["wire_msgs"] == 0
    path = tmp_path / "solo.prom"
    save_prometheus(str(path), obs.as_timeline(), comm=doc)
    text = path.read_text()
    assert validate_prometheus(text) == []
    assert "repro_comm_messages_total 0" in text


def test_prometheus_zero_message_timeline_keeps_counter_families():
    empty = {"meta": {}, "events": [], "stalls": [], "samples": []}
    text = to_prometheus(empty)
    assert validate_prometheus(text) == []
    for family in ("repro_obs_stage_seconds_total",
                   "repro_obs_messages_total",
                   "repro_obs_stall_seconds_total"):
        assert f"# TYPE {family} counter" in text
        assert f"\n{family} 0\n" in "\n" + text


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------
def test_analyzer_shapes_and_bounds(observed_runs):
    doc = observed_runs["mpi-probe"][2].comm_doc()
    a = analyze_comm(doc)
    imb = a["imbalance"]
    assert imb["out_max_over_mean"] >= 1.0
    assert 0.0 <= imb["out_gini"] < 1.0
    assert a["hotspots"]
    top = a["hotspots"][0]
    assert top["bytes"] >= a["hotspots"][-1]["bytes"]
    assert 0.0 < top["share"] <= 1.0
    assert len(a["per_host"]["out_bytes"]) == doc["meta"]["hosts"]
    assert sum(a["per_host"]["out_bytes"]) == doc["totals"]["wire_bytes"]


def test_round_timeline_covers_all_blob_traffic(observed_runs):
    doc = observed_runs["lci"][2].comm_doc()
    rounds = analyze_comm(doc)["rounds"]
    assert rounds
    assert sum(r["bytes"] for r in rounds) == doc["totals"]["blob_bytes"]


# ----------------------------------------------------------------------
# Integration: chaos, serve, explain
# ----------------------------------------------------------------------
def test_chaos_comm_attributes_fault_traffic():
    from repro.faults.harness import run_chaos

    sc = Scenario(app="pagerank", graph="rmat", scale=8, hosts=4,
                  layer="lci", pagerank_rounds=3)
    rep = run_chaos(sc, "drop-5pct", commstats=True)
    c = rep.comm
    assert c["dropped_msgs"] > 0
    # Retransmissions are extra wire volume over the fault-free run.
    assert c["faulted_bytes"] > c["baseline_bytes"]
    assert c["delta_bytes"] == c["faulted_bytes"] - c["baseline_bytes"]
    assert c["baseline_fingerprint"] != c["faulted_fingerprint"]
    # The flag must not perturb either run.
    plain = run_chaos(sc, "drop-5pct")
    assert plain.comm == {}
    assert plain.baseline_seconds == rep.baseline_seconds
    assert plain.faulted_seconds == rep.faulted_seconds


def test_serve_report_carries_per_batch_comm():
    from repro.serve import ServeConfig, ServeEngine, TapeSpec, generate_tape

    cfg = ServeConfig(graph="rmat", scale=8, hosts=4, layer="lci")
    queries = generate_tape(TapeSpec(num_queries=8, seed=3, scale=8))
    doc = ServeEngine(cfg, commstats=True).drain(list(queries)).as_dict()
    comm = doc["comm"]
    assert comm["batches"]
    assert comm["wire_bytes"] == \
        sum(b["wire_bytes"] for b in comm["batches"])
    for b in comm["batches"]:
        assert len(b["fingerprint"]) == 16
    # Off by default, and the rest of the report must not move.
    plain = ServeEngine(cfg).drain(list(queries)).as_dict()
    assert "comm" not in plain
    stripped = {k: v for k, v in doc.items() if k != "comm"}
    assert json.dumps(stripped, sort_keys=True) == \
        json.dumps(plain, sort_keys=True)


def test_explain_report_has_latency_percentiles_and_comm_section():
    from repro.obs import explain_report

    sc = bfs8("mpi-probe")
    obs = ObsContext()
    build_engine(sc, obs=obs).run()
    timeline = obs.as_timeline()
    report = explain_report(timeline)
    assert "message latency: p50=" in report
    comm_report = format_comm_report(timeline_comm_doc(timeline))
    assert "communication patterns" in comm_report


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_run_comm_and_commstats(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    rc = main(["run", "--app", "bfs", "--graph", "rmat", "--scale", "8",
               "--hosts", "4", "--layer", "lci", "--comm", "comm.json"])
    assert rc == 0
    doc = json.loads((tmp_path / "comm.json").read_text())
    assert validate_comm_doc(doc) == []
    out = capsys.readouterr().out
    assert doc["fingerprint"] in out

    # Baseline write/check runs the canonical scenarios; shrink the
    # set to keep the test fast — the real set is exercised in CI.
    import repro.bench.core_bench as core_bench

    monkeypatch.setattr(
        core_bench, "CANONICAL_SCENARIOS",
        (Scenario(app="bfs", graph="rmat", scale=8, hosts=4,
                  layer="lci"),),
    )
    rc = main(["commstats", "--write-baseline", "base.json"])
    assert rc == 0
    capsys.readouterr()
    rc = main(["commstats", "--check-baseline", "base.json"])
    assert rc == 0
    assert "match" in capsys.readouterr().out

    # Drift must fail loudly.
    base = json.loads((tmp_path / "base.json").read_text())
    label = sorted(base["scenarios"])[0]
    base["scenarios"][label]["wire_bytes"] += 1
    (tmp_path / "base.json").write_text(json.dumps(base))
    rc = main(["commstats", "--check-baseline", "base.json"])
    assert rc == 1
    assert "comm drift" in capsys.readouterr().err
