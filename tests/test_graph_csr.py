"""Tests for the CSR graph representation and IO."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CsrGraph
from repro.graph.io import load_edgelist, load_npz, save_edgelist, save_npz


def small_graph():
    # 0->1, 0->2, 1->2, 2->0, 3->3 (self loop kept when dedup=False)
    src = np.array([0, 0, 1, 2, 3])
    dst = np.array([1, 2, 2, 0, 3])
    return CsrGraph.from_edges(src, dst, 4, name="tiny")


def test_from_edges_basic():
    g = small_graph()
    assert g.num_nodes == 4
    assert g.num_edges == 5
    assert list(g.neighbors(0)) == [1, 2]
    assert list(g.neighbors(2)) == [0]
    assert g.out_degree(0) == 2
    assert g.out_degree(3) == 1


def test_dedup_removes_self_loops_and_duplicates():
    src = np.array([0, 0, 0, 1, 1])
    dst = np.array([1, 1, 0, 2, 2])
    g = CsrGraph.from_edges(src, dst, 3, dedup=True)
    assert g.num_edges == 2
    assert list(g.neighbors(0)) == [1]
    assert list(g.neighbors(1)) == [2]


def test_edge_data_follows_sort_and_dedup():
    src = np.array([1, 0])
    dst = np.array([2, 1])
    w = np.array([20, 10])
    g = CsrGraph.from_edges(src, dst, 3, edge_data=w, dedup=True)
    # after sorting by src: edge 0->1 has w=10, 1->2 has w=20
    assert list(g.edge_data) == [10, 20]


def test_in_degrees():
    g = small_graph()
    ind = g.in_degrees()
    assert list(ind) == [1, 1, 2, 1]


def test_transpose_roundtrip():
    g = small_graph()
    t = g.transpose()
    assert t.num_edges == g.num_edges
    assert list(t.neighbors(2)) == [0, 1]
    # transpose of transpose is the original object (cached)
    assert t.transpose() is g


def test_edge_sources_alignment():
    g = small_graph()
    src, dst = g.edges()
    assert len(src) == g.num_edges
    rebuilt = CsrGraph.from_edges(src, dst, g.num_nodes)
    assert np.array_equal(rebuilt.indptr, g.indptr)
    assert np.array_equal(rebuilt.indices, g.indices)


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CsrGraph(np.array([0, 2, 1]), np.array([0, 1]), 2)


def test_out_of_range_target_rejected():
    with pytest.raises(ValueError):
        CsrGraph(np.array([0, 1]), np.array([5]), 1)


def test_npz_roundtrip(tmp_path):
    g = small_graph()
    path = str(tmp_path / "g.npz")
    save_npz(g, path)
    g2 = load_npz(path)
    assert g2.name == "tiny"
    assert np.array_equal(g2.indptr, g.indptr)
    assert np.array_equal(g2.indices, g.indices)


def test_npz_roundtrip_with_weights(tmp_path):
    src = np.array([0, 1])
    dst = np.array([1, 0])
    g = CsrGraph.from_edges(src, dst, 2, edge_data=np.array([3, 4]), name="w")
    path = str(tmp_path / "w.npz")
    save_npz(g, path)
    g2 = load_npz(path)
    assert list(g2.edge_data) == [3, 4]


def test_edgelist_roundtrip(tmp_path):
    g = small_graph()
    path = str(tmp_path / "g.txt")
    save_edgelist(g, path)
    g2 = load_edgelist(path, num_nodes=4)
    assert g2.num_edges == g.num_edges
    assert np.array_equal(g2.indices, g.indices)


def test_edgelist_with_weights_roundtrip(tmp_path):
    src = np.array([0, 1])
    dst = np.array([1, 0])
    g = CsrGraph.from_edges(src, dst, 2, edge_data=np.array([7, 9]))
    path = str(tmp_path / "gw.txt")
    save_edgelist(g, path)
    g2 = load_edgelist(path)
    assert list(g2.edge_data) == [7, 9]


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=200
    )
)
def test_property_csr_preserves_edge_multiset(edges):
    n = 20
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    g = CsrGraph.from_edges(src, dst, n)
    rs, rd = g.edges()
    assert sorted(zip(src, dst)) == sorted(zip(rs, rd))


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=150
    )
)
def test_property_transpose_is_involution(edges):
    n = 16
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    g = CsrGraph.from_edges(src, dst, n)
    t = g.transpose()
    # in-degree of g == out-degree of t
    assert np.array_equal(g.in_degrees(), t.out_degree())
    assert np.array_equal(t.in_degrees(), g.out_degree())
