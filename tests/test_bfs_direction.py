"""Tests for direction-optimizing BFS (push / pull / auto)."""

import numpy as np
import pytest

from repro.apps import Bfs
from repro.apps.bfs import INF
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import kron, rmat
from repro.graph.partition import make_partition


@pytest.mark.parametrize("direction", ["push", "pull", "auto"])
def test_all_directions_produce_correct_levels(direction):
    g = rmat(8, edge_factor=8, seed=21)
    app = Bfs(source=0, direction=direction)
    eng = BspEngine(g, app, EngineConfig(num_hosts=4, layer="lci"))
    eng.run()
    assert np.array_equal(eng.assemble_global(), Bfs(source=0).reference(g)), direction


@pytest.mark.parametrize("policy", ["cvc", "edge-cut"])
def test_auto_direction_across_policies(policy):
    g = kron(9, seed=5)
    app = Bfs(source=1, direction="auto")
    eng = BspEngine(
        g, app, EngineConfig(num_hosts=4, layer="lci", policy=policy)
    )
    eng.run()
    assert np.array_equal(eng.assemble_global(), Bfs(source=1).reference(g))


def test_invalid_direction_rejected():
    with pytest.raises(ValueError, match="unknown direction"):
        Bfs(direction="sideways")


def test_mode_selection_logic():
    app = Bfs(direction="auto", pull_threshold=0.1)
    app._num_nodes = 1000
    assert app._mode({}) == "push"                       # unknown frontier
    assert app._mode({"_global_active": 50}) == "push"   # 5% < 10%
    assert app._mode({"_global_active": 500}) == "pull"  # 50% > 10%
    assert Bfs(direction="pull")._mode({}) == "pull"
    assert Bfs(direction="push")._mode({"_global_active": 10**9}) == "push"


def test_pull_round_scans_unreached_side():
    """Pull work is proportional to edges into unreached nodes."""
    g = rmat(8, edge_factor=8, seed=2)
    part = make_partition(g, 1, "edge-cut")
    lg = part.local(0)
    app = Bfs(source=0, direction="pull")
    state = app.init_state(lg, g)
    active = app.initial_active(lg, state)
    res = app.compute(lg, state, active)
    # First pull sweep relaxes every edge whose target is unreached.
    unreached_edges = int(np.count_nonzero(state["last"][lg.indices] >= INF))
    assert res.work_edges > 0
    # After one sweep, exactly the out-neighbours of the source (and
    # anything reachable through already-labeled chains within the same
    # sweep order) are labeled; sanity: source keeps level 0.
    src_local = np.where(lg.global_ids == 0)[0][0]
    assert state["label"][src_local] == 0


def test_auto_switches_and_saves_frontier_work():
    """On a small-world graph the dense middle round triggers pull."""
    g = kron(10, seed=7)
    modes_seen = []

    class InstrumentedBfs(Bfs):
        def compute(self, lg, state, active):
            modes_seen.append(self._mode(state))
            return super().compute(lg, state, active)

    app = InstrumentedBfs(source=0, direction="auto", pull_threshold=0.02)
    eng = BspEngine(g, app, EngineConfig(num_hosts=2, layer="lci"))
    eng.run()
    assert "pull" in modes_seen, f"auto never pulled: {modes_seen}"
    assert "push" in modes_seen
    assert np.array_equal(eng.assemble_global(), Bfs(source=0).reference(g))
