"""End-to-end correctness: distributed results must equal the references.

These are the most important tests in the suite: they run the real
algorithms on real partitioned graphs through the full simulated
communication stack (all three layers, both partition policies) and
compare against sequential reference implementations.
"""

import numpy as np
import pytest

from repro.apps import Bfs, ConnectedComponents, PageRank, Sssp
from repro.engine import BspEngine, EngineConfig, abelian_engine, gemini_engine
from repro.engine.bsp import symmetrize
from repro.graph.generators import rmat, webcrawl

LAYERS = ["lci", "mpi-probe", "mpi-rma"]


def small_graph(weights=False, seed=42):
    return rmat(7, edge_factor=8, seed=seed, weights=weights)


def run(graph, app, hosts, layer, policy="cvc"):
    cfg = EngineConfig(num_hosts=hosts, policy=policy, layer=layer)
    eng = BspEngine(graph, app, cfg)
    metrics = eng.run()
    return eng, metrics


# ---------------------------------------------------------------------------
# BFS
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_bfs_matches_reference(layer):
    g = small_graph()
    app = Bfs(source=0)
    eng, metrics = run(g, app, hosts=4, layer=layer)
    got = eng.assemble_global()
    want = app.reference(g)
    assert np.array_equal(got, want), f"bfs mismatch on {layer}"
    assert metrics.rounds > 1
    assert metrics.total_seconds > 0


@pytest.mark.parametrize("policy", ["cvc", "edge-cut"])
def test_bfs_policies(policy):
    g = small_graph()
    app = Bfs(source=0)
    eng, _ = run(g, app, hosts=4, layer="lci", policy=policy)
    assert np.array_equal(eng.assemble_global(), app.reference(g))


def test_bfs_single_host():
    g = small_graph()
    app = Bfs(source=0)
    eng, metrics = run(g, app, hosts=1, layer="lci")
    assert np.array_equal(eng.assemble_global(), app.reference(g))


def test_bfs_nondefault_source():
    g = small_graph(seed=3)
    app = Bfs(source=17)
    eng, _ = run(g, app, hosts=3, layer="lci")
    assert np.array_equal(eng.assemble_global(), app.reference(g))


def test_bfs_webcrawl_input():
    g = webcrawl(8, seed=5)
    app = Bfs(source=0)
    eng, _ = run(g, app, hosts=4, layer="lci")
    assert np.array_equal(eng.assemble_global(), app.reference(g))


# ---------------------------------------------------------------------------
# SSSP
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_sssp_matches_dijkstra(layer):
    g = small_graph(weights=True)
    app = Sssp(source=0)
    eng, _ = run(g, app, hosts=4, layer=layer)
    got = eng.assemble_global()
    want = app.reference(g)
    assert np.array_equal(got, want), f"sssp mismatch on {layer}"


def test_sssp_requires_weights():
    g = small_graph(weights=False)
    with pytest.raises(ValueError, match="weights"):
        run(g, Sssp(source=0), hosts=2, layer="lci")


# ---------------------------------------------------------------------------
# CC
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_cc_matches_reference(layer):
    g = small_graph(seed=9)
    app = ConnectedComponents()
    eng, _ = run(g, app, hosts=4, layer=layer)
    got = eng.assemble_global()
    want = app.reference(symmetrize(g))
    assert np.array_equal(got, want), f"cc mismatch on {layer}"


def test_cc_disconnected_graph():
    import numpy as np
    from repro.graph.csr import CsrGraph

    # Two separate triangles plus an isolated node.
    src = np.array([0, 1, 2, 3, 4, 5])
    dst = np.array([1, 2, 0, 4, 5, 3])
    g = CsrGraph.from_edges(src, dst, 7, name="tri2")
    app = ConnectedComponents()
    eng, _ = run(g, app, hosts=2, layer="lci")
    got = eng.assemble_global()
    assert list(got[:3]) == [0, 0, 0]
    assert list(got[3:6]) == [3, 3, 3]
    assert got[6] == 6  # isolated: own component


# ---------------------------------------------------------------------------
# PageRank
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_pagerank_matches_power_iteration(layer):
    g = small_graph(seed=4)
    app = PageRank(max_rounds=30, tol=1e-12)
    eng, metrics = run(g, app, hosts=4, layer=layer)
    got = eng.assemble_global()
    want = app.reference(g, rounds=metrics.rounds)
    np.testing.assert_allclose(got, want, rtol=1e-8, atol=1e-12)
    assert abs(got.sum()) <= 1.0 + 1e-6


def test_pagerank_respects_round_cap():
    g = small_graph(seed=4)
    app = PageRank(max_rounds=5, tol=0.0)
    _, metrics = run(g, app, hosts=2, layer="lci")
    assert metrics.rounds == 5


# ---------------------------------------------------------------------------
# Engine wrappers
# ---------------------------------------------------------------------------
def test_abelian_engine_uses_cvc():
    g = small_graph()
    eng = abelian_engine(g, Bfs(source=0), num_hosts=4, layer="lci")
    assert eng.partition.policy == "cvc"
    eng.run()
    assert np.array_equal(eng.assemble_global(), Bfs(source=0).reference(g))


def test_gemini_engine_uses_edge_cut_and_inline_mpi():
    g = small_graph()
    eng = gemini_engine(g, Bfs(source=0), num_hosts=4, layer="mpi-probe")
    assert eng.partition.policy == "edge-cut"
    assert eng.layers[0].inline_sends
    eng.run()
    assert np.array_equal(eng.assemble_global(), Bfs(source=0).reference(g))


def test_gemini_rejects_rma():
    g = small_graph()
    with pytest.raises(ValueError, match="RMA"):
        gemini_engine(g, Bfs(source=0), num_hosts=2, layer="mpi-rma")


# ---------------------------------------------------------------------------
# Metrics sanity
# ---------------------------------------------------------------------------
def test_metrics_structure():
    g = small_graph()
    eng, m = run(g, Bfs(source=0), hosts=4, layer="lci")
    assert m.rounds == len(m.compute_per_round) == len(m.comm_per_round)
    assert m.compute_seconds > 0
    assert m.comm_seconds > 0
    assert m.total_seconds >= m.compute_seconds
    assert len(m.footprint_per_host) == 4
    assert all(f > 0 for f in m.footprint_per_host)
    assert m.blobs_sent > 0
    row = m.row()
    assert row["app"] == "bfs" and row["hosts"] == 4
