"""Tests for the LCI backend models."""

import pytest

from repro.lci import LciConfig, LciRuntime
from repro.lci.backends import BACKENDS, ibverbs, libfabric, psm2
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def test_backend_registry():
    assert set(BACKENDS) == {"psm2", "ibverbs", "libfabric"}


def test_backend_cost_structure():
    # psm2 puts pay tag translation; ibverbs puts are native-cheap but
    # need registration; libfabric adds dispatch everywhere.
    assert psm2().put_extra > ibverbs().put_extra
    assert ibverbs().first_put_setup > psm2().first_put_setup
    assert libfabric().send_extra > psm2().send_extra


def test_unknown_backend_rejected():
    env = Environment()
    fabric = Fabric(env, 2, stampede2())
    with pytest.raises(ValueError, match="unknown LCI backend"):
        LciRuntime.create_world(
            env, fabric, config=LciConfig(backend="tcp")
        )


def run_pingpong(backend: str, size: int) -> float:
    env = Environment()
    fabric = Fabric(env, 2, stampede2())
    world = LciRuntime.create_world(
        env, fabric, config=LciConfig(backend=backend)
    )
    done = {}

    def rank0(env):
        yield from world[0].send_blocking(1, tag=0, size=size, payload="x")
        yield from world[0].recv_blocking()
        done["t"] = env.now
        for rt in world:
            rt.stop_server()

    def rank1(env):
        yield from world[1].recv_blocking()
        yield from world[1].send_blocking(0, tag=0, size=size, payload="y")

    env.process(rank0(env))
    env.process(rank1(env))
    env.run(max_events=1_000_000)
    return done["t"]


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_roundtrip_works_on_every_backend(backend):
    assert run_pingpong(backend, 256) > 0


def test_backend_send_extras_visible_in_latency():
    fast = run_pingpong("psm2", 256)
    slow = run_pingpong("libfabric", 256)
    assert slow > fast


def test_ibverbs_first_put_setup_amortizes():
    """First rendezvous to a peer pays registration; later ones do not."""
    env = Environment()
    fabric = Fabric(env, 2, stampede2())
    world = LciRuntime.create_world(
        env, fabric, config=LciConfig(backend="ibverbs")
    )
    big = world[0].config.packet_data_bytes * 2
    gaps = []

    def rank0(env):
        for _ in range(3):
            t0 = env.now
            yield from world[0].send_blocking(1, tag=0, size=big, payload="d")
            gaps.append(env.now - t0)
        for rt in world:
            rt.stop_server()

    def rank1(env):
        for _ in range(3):
            yield from world[1].recv_blocking()

    env.process(rank0(env))
    env.process(rank1(env))
    env.run(max_events=1_000_000)
    assert gaps[0] > gaps[1]
    assert gaps[1] == pytest.approx(gaps[2], rel=0.2)
