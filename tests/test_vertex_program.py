"""Unit tests for the vertex-program base and the shared min_relax kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bfs import INF
from repro.engine.vertex_program import ComputeResult, VertexProgram, min_relax
from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat
from repro.graph.partition import make_partition


def local_of(graph, hosts=1, policy="edge-cut", host=0):
    return make_partition(graph, hosts, policy).local(host)


def chain(n=6):
    return CsrGraph.from_edges(
        np.arange(n - 1), np.arange(1, n), n, name="chain"
    )


# ---------------------------------------------------------------------------
# min_relax
# ---------------------------------------------------------------------------
def test_min_relax_empty_active():
    lg = local_of(chain())
    label = np.full(lg.num_local, INF, dtype=np.int64)
    res = min_relax(
        lg, label, np.zeros(lg.num_local, dtype=bool),
        lambda s, e: label[s] + 1,
    )
    assert res.work_edges == 0 and res.work_nodes == 0
    assert len(res.updated) == 0


def test_min_relax_propagates_one_hop():
    lg = local_of(chain())
    label = np.full(lg.num_local, INF, dtype=np.int64)
    label[0] = 0
    active = np.zeros(lg.num_local, dtype=bool)
    active[0] = True
    res = min_relax(lg, label, active, lambda s, e: label[s] + 1)
    assert label[1] == 1
    assert list(res.updated) == [1]
    assert res.work_edges == 1 and res.work_nodes == 1


def test_min_relax_counts_all_edges_of_active():
    g = rmat(6, edge_factor=6, seed=4)
    lg = local_of(g)
    label = np.zeros(lg.num_local, dtype=np.int64)
    active = np.ones(lg.num_local, dtype=bool)
    res = min_relax(lg, label, active, lambda s, e: label[s] + 1)
    assert res.work_edges == lg.num_edges
    assert res.work_nodes == lg.num_local


def test_min_relax_reports_only_improved():
    lg = local_of(chain(4))
    label = np.array([0, 1, 5, INF], dtype=np.int64)
    active = np.ones(4, dtype=bool)
    res = min_relax(lg, label, active, lambda s, e: label[s] + 1)
    # 0->1 doesn't improve (1 == 1); 1->2 improves to 2; 2->3 improves.
    assert set(res.updated) == {2, 3}
    assert label[2] == 2


def test_min_relax_duplicate_targets_reported_once():
    # Two actives both pointing at node 2.
    g = CsrGraph.from_edges(np.array([0, 1]), np.array([2, 2]), 3)
    lg = local_of(g)
    label = np.array([0, 0, INF], dtype=np.int64)
    res = min_relax(
        lg, label, np.array([True, True, False]),
        lambda s, e: label[s] + 1,
    )
    assert list(res.updated) == [2]
    assert label[2] == 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_min_relax_never_increases_labels(seed):
    g = rmat(6, edge_factor=5, seed=seed)
    lg = local_of(g)
    rng = np.random.default_rng(seed)
    label = rng.integers(0, 50, lg.num_local).astype(np.int64)
    before = label.copy()
    active = rng.random(lg.num_local) < 0.5
    min_relax(lg, label, active, lambda s, e: label[s] + 1)
    assert np.all(label <= before)


# ---------------------------------------------------------------------------
# base-class defaults
# ---------------------------------------------------------------------------
def test_base_class_defaults():
    vp = VertexProgram()
    assert vp.post_reduce(None, {}).size == 0
    vp.reset_after_reduce_send({}, None)  # no-op must not raise
    assert vp.local_quiescent_metric(
        None, {}, np.array([True, False, True])
    ) == 2.0


def test_base_class_abstract_hooks_raise():
    vp = VertexProgram()
    for call in (
        lambda: vp.init_state(None, None),
        lambda: vp.initial_active(None, None),
        lambda: vp.compute(None, None, None),
        lambda: vp.reduce_values(None, None),
        lambda: vp.apply_reduce(None, None, None),
        lambda: vp.bcast_values(None, None),
        lambda: vp.apply_bcast(None, None, None),
        lambda: vp.next_active(None, None),
        lambda: vp.extract_masters(None, None),
        lambda: vp.reference(None),
    ):
        with pytest.raises(NotImplementedError):
            call()


def test_compute_result_fields():
    res = ComputeResult(np.array([1, 2]), 10, 3)
    assert res.work_edges == 10 and res.work_nodes == 3
    assert list(res.updated) == [1, 2]
