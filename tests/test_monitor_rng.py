"""Tests for the measurement utilities and random-stream management."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.monitor import (
    Counter,
    PeakTracker,
    StatRegistry,
    TimeSeries,
    geometric_mean,
)
from repro.sim.rng import RngFactory


# ---------------------------------------------------------------------------
# geometric mean
# ---------------------------------------------------------------------------
def test_geometric_mean_basic():
    assert geometric_mean([4, 1]) == pytest.approx(2.0)
    assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)


def test_geometric_mean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        geometric_mean([-1.0])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.01, 100), min_size=1, max_size=20))
def test_property_geomean_bounded_by_extremes(values):
    g = geometric_mean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001


# ---------------------------------------------------------------------------
# Counter / PeakTracker / TimeSeries
# ---------------------------------------------------------------------------
def test_counter():
    c = Counter("x")
    c.add()
    c.add(5)
    assert int(c) == 6
    c.reset()
    assert c.value == 0


def test_peak_tracker():
    p = PeakTracker("mem")
    p.add(100)
    p.add(50)
    p.sub(120)
    assert p.current == 30
    assert p.peak == 150
    assert p.total_added == 150


def test_peak_tracker_rejects_negative():
    p = PeakTracker()
    with pytest.raises(ValueError):
        p.add(-1)
    with pytest.raises(ValueError):
        p.sub(-1)
    p.add(10)
    with pytest.raises(ValueError, match="negative"):
        p.sub(11)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 1000), min_size=1, max_size=50))
def test_property_peak_is_running_max(allocs):
    p = PeakTracker()
    running, peak = 0, 0
    for a in allocs:
        p.add(a)
        running += a
        peak = max(peak, running)
        if running > a:  # free something occasionally
            p.sub(a // 2)
            running -= a // 2
    assert p.peak == peak
    assert p.current == running


def test_timeseries():
    ts = TimeSeries("iter")
    ts.record(0.0, 10.0)
    ts.record(1.0, 20.0)
    assert len(ts) == 2
    assert ts.total == 30.0
    assert ts.mean == 15.0
    assert ts.max == 20.0
    assert ts.items() == [(0.0, 10.0), (1.0, 20.0)]


def test_timeseries_empty_mean_raises():
    with pytest.raises(ValueError):
        TimeSeries().mean


# ---------------------------------------------------------------------------
# StatRegistry
# ---------------------------------------------------------------------------
def test_registry_lazily_creates_and_reuses():
    r = StatRegistry("host0")
    c1 = r.counter("msgs")
    c1.add(3)
    assert r.counter("msgs") is c1
    assert r.counter_value("msgs") == 3
    assert r.counter_value("missing", default=-1) == -1


def test_registry_snapshot():
    r = StatRegistry("h")
    r.counter("a").add(2)
    r.peak("m").add(10)
    r.series("s").record(0, 1.5)
    snap = r.snapshot()
    assert snap["h.a"] == 2
    assert snap["h.m.peak"] == 10
    assert snap["h.s.total"] == 1.5


def test_registry_reset():
    r = StatRegistry()
    r.counter("a").add(2)
    r.peak("m").add(10)
    r.reset()
    assert r.counter_value("a") == 0
    assert r.peak_value("m") == 0


def test_registry_reset_drops_series_but_keeps_counter_objects():
    """reset() semantics the obs sampler relies on: counters and peak
    trackers are reset *in place* (holders keep valid references), while
    TimeSeries objects are dropped entirely — a later series() call
    returns a fresh, empty object."""
    r = StatRegistry("h")
    c = r.counter("msgs")
    p = r.peak("mem")
    s = r.series("depth")
    c.add(7)
    p.add(100)
    p.sub(40)
    s.record(0.0, 3.0)
    r.reset()
    # Same objects, zeroed.
    assert r.counter("msgs") is c and c.value == 0
    assert r.peak("mem") is p and p.peak == 0 and p.current == 0
    # Series object was dropped, not emptied.
    s2 = r.series("depth")
    assert s2 is not s
    assert len(s2) == 0
    # The stale reference still holds the pre-reset samples (detached).
    assert s.items() == [(0.0, 3.0)]


def test_registry_snapshot_series_keys_and_reset_interaction():
    r = StatRegistry("x")
    r.series("q").record(0.0, 2.0)
    r.series("q").record(1.0, 4.0)
    snap = r.snapshot()
    assert snap["x.q.total"] == 6.0
    assert snap["x.q.n"] == 2
    r.reset()
    snap2 = r.snapshot()
    # Dropped series vanish from the snapshot; they do not linger as 0s.
    assert "x.q.total" not in snap2
    assert "x.q.n" not in snap2


def test_registry_snapshot_peak_reports_both_peak_and_current():
    r = StatRegistry()
    r.peak("buf").add(64)
    r.peak("buf").sub(16)
    snap = r.snapshot()
    assert snap["buf.peak"] == 64
    assert snap["buf.current"] == 48


def test_geometric_mean_error_messages():
    with pytest.raises(ValueError, match="empty"):
        geometric_mean([])
    with pytest.raises(ValueError, match="positive"):
        geometric_mean([2.0, -3.0])
    with pytest.raises(ValueError, match="positive"):
        geometric_mean(iter([0.0]))


# ---------------------------------------------------------------------------
# RngFactory
# ---------------------------------------------------------------------------
def test_rng_same_seed_same_stream():
    a = RngFactory(42).stream("graph").integers(0, 1 << 30, 10)
    b = RngFactory(42).stream("graph").integers(0, 1 << 30, 10)
    assert np.array_equal(a, b)


def test_rng_streams_independent_of_creation_order():
    f1 = RngFactory(7)
    _ = f1.stream("first")
    x1 = f1.stream("second").integers(0, 1 << 30, 5)
    f2 = RngFactory(7)
    x2 = f2.stream("second").integers(0, 1 << 30, 5)
    assert np.array_equal(x1, x2)


def test_rng_different_names_differ():
    f = RngFactory(7)
    a = f.stream("a").integers(0, 1 << 30, 20)
    b = f.stream("b").integers(0, 1 << 30, 20)
    assert not np.array_equal(a, b)


def test_rng_stream_cached():
    f = RngFactory(1)
    assert f.stream("x") is f.stream("x")


def test_rng_fork_disjoint_and_deterministic():
    f = RngFactory(3)
    c1 = f.fork("child")
    c2 = RngFactory(3).fork("child")
    assert c1.root_seed == c2.root_seed
    a = c1.stream("s").integers(0, 1 << 30, 10)
    b = f.stream("s").integers(0, 1 << 30, 10)
    assert not np.array_equal(a, b)
