"""Tests for the LCI runtime: pool, MPMC queue, Queue interface, server."""

import pytest

from repro.lci import LciConfig, LciRuntime, MpmcQueue, PacketPool
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def make_lci(num_hosts=2, config=None):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    world = LciRuntime.create_world(env, fabric, config=config)
    return env, world


# ---------------------------------------------------------------------------
# Packet pool
# ---------------------------------------------------------------------------
def test_pool_alloc_until_exhausted_then_fails():
    env = Environment()
    pool = PacketPool(
        env, stampede2().cpu, size=3, packet_data_bytes=1024, rx_reserve=0
    )
    results = []

    def proc(env):
        for _ in range(5):
            ok = yield from pool.alloc()
            results.append(ok)

    env.process(proc(env))
    env.run()
    assert results == [True, True, True, False, False]
    assert pool.in_use == 3


def test_pool_rx_reserve_protects_receive_path():
    """Send allocs stop above zero; receive allocs may drain the rest."""
    env = Environment()
    pool = PacketPool(
        env, stampede2().cpu, size=4, packet_data_bytes=1024, rx_reserve=2
    )
    results = []

    def proc(env):
        results.append((yield from pool.alloc()))          # send: 4 -> 3
        results.append((yield from pool.alloc()))          # send: 3 -> 2
        results.append((yield from pool.alloc()))          # send: blocked
        results.append((yield from pool.alloc(for_recv=True)))  # rx: 2 -> 1
        results.append((yield from pool.alloc(for_recv=True)))  # rx: 1 -> 0
        results.append((yield from pool.alloc(for_recv=True)))  # rx: empty

    env.process(proc(env))
    env.run()
    assert results == [True, True, False, True, True, False]


def test_pool_rx_reserve_clamped_below_size():
    env = Environment()
    pool = PacketPool(
        env, stampede2().cpu, size=2, packet_data_bytes=64, rx_reserve=10
    )
    assert pool.rx_reserve == 1


def test_pool_free_recycles():
    env = Environment()
    pool = PacketPool(env, stampede2().cpu, size=1, packet_data_bytes=1024)
    results = []

    def proc(env):
        results.append((yield from pool.alloc()))
        results.append((yield from pool.alloc()))
        yield from pool.free()
        results.append((yield from pool.alloc()))

    env.process(proc(env))
    env.run()
    assert results == [True, False, True]


def test_pool_local_cache_is_cheaper():
    env = Environment()
    cpu = stampede2().cpu
    pool = PacketPool(
        env, cpu, size=16, packet_data_bytes=1024,
        local_cache_packets=4, local_hit_cost_factor=0.25,
    )
    times = {}

    def proc(env):
        # Prime thread T's local cache with one freed packet.
        yield from pool.alloc("T")
        yield from pool.free("T")
        t0 = env.now
        yield from pool.alloc("T")  # local hit
        times["local"] = env.now - t0
        t0 = env.now
        yield from pool.alloc("U")  # global hit
        times["global"] = env.now - t0

    env.process(proc(env))
    env.run()
    assert times["local"] < times["global"]
    assert pool.stats.counter_value("alloc_local_hits") == 1


def test_pool_memory_is_fixed():
    env = Environment()
    pool = PacketPool(env, stampede2().cpu, size=128, packet_data_bytes=8192)
    assert pool.bytes_allocated() == 128 * 8192
    # Footprint never grows with use.
    assert pool.stats.peak_value("pool_bytes") == 128 * 8192


def test_pool_wait_available_wakes_on_free():
    env = Environment()
    pool = PacketPool(env, stampede2().cpu, size=1, packet_data_bytes=1024)
    woke_at = []

    def hog(env):
        yield from pool.alloc()
        yield env.timeout(5.0)
        yield from pool.free()

    def waiter(env):
        yield env.timeout(0.1)  # let the hog take the packet
        yield pool.wait_available()
        woke_at.append(env.now)

    env.process(hog(env))
    env.process(waiter(env))
    env.run()
    assert woke_at and woke_at[0] >= 5.0


# ---------------------------------------------------------------------------
# MPMC queue
# ---------------------------------------------------------------------------
def test_mpmc_fifo_first_packet_order():
    env = Environment()
    q = MpmcQueue(env, stampede2().cpu)
    out = []

    def proc(env):
        for i in range(4):
            yield from q.enqueue(i)
        while True:
            item = yield from q.dequeue()
            if item is None:
                break
            out.append(item)

    env.process(proc(env))
    env.run()
    assert out == [0, 1, 2, 3]


def test_mpmc_empty_dequeue_returns_none_and_counts():
    env = Environment()
    q = MpmcQueue(env, stampede2().cpu)
    res = []

    def proc(env):
        res.append((yield from q.dequeue()))

    env.process(proc(env))
    env.run()
    assert res == [None]
    assert q.stats.counter_value("empty_dequeues") == 1


def test_mpmc_operations_cost_atomics():
    env = Environment()
    cpu = stampede2().cpu
    q = MpmcQueue(env, cpu)

    def proc(env):
        yield from q.enqueue("x")
        yield from q.dequeue()

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(2 * cpu.atomic_op)


# ---------------------------------------------------------------------------
# Queue interface end-to-end
# ---------------------------------------------------------------------------
def test_eager_send_recv_roundtrip():
    env, world = make_lci()
    result = {}

    def sender(env):
        rt = world[0]
        req = yield from rt.send_blocking(1, tag=3, size=256, payload=b"q" * 256)
        result["send_done"] = req.done

    def receiver(env):
        rt = world[1]
        req = yield from rt.recv_blocking()
        result["payload"] = req.payload
        result["peer"] = req.peer
        result["tag"] = req.tag
        result["size"] = req.size

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert result["send_done"]
    assert result["payload"] == b"q" * 256
    assert (result["peer"], result["tag"], result["size"]) == (0, 3, 256)


def test_rendezvous_roundtrip():
    env, world = make_lci()
    cfg = world[0].config
    big = cfg.packet_data_bytes * 8
    result = {}

    def sender(env):
        rt = world[0]
        req = yield from rt.send_blocking(1, tag=1, size=big, payload="HUGE")
        result["send_done_at"] = env.now

    def receiver(env):
        rt = world[1]
        req = yield from rt.recv_blocking()
        result["payload"] = req.payload
        result["size"] = req.size

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert result["payload"] == "HUGE"
    assert result["size"] == big
    assert world[0].stats.counter_value("rts_sends") == 1
    assert world[1].stats.counter_value("rtr_sends") == 1
    assert world[0].stats.counter_value("rdma_puts") == 1


def test_first_packet_policy_delivers_arrival_order():
    """Messages from different senders dequeue in arrival order, not rank."""
    env, world = make_lci(num_hosts=3)
    got = []

    def sender(env, rank, delay):
        rt = world[rank]
        yield env.timeout(delay)
        yield from rt.send_blocking(2, tag=0, size=64, payload=rank)

    def receiver(env):
        rt = world[2]
        for _ in range(2):
            req = yield from rt.recv_blocking()
            got.append(req.payload)

    # Rank 1 sends first despite being higher-numbered.
    env.process(sender(env, 0, delay=1e-3))
    env.process(sender(env, 1, delay=0.0))
    env.process(receiver(env))
    env.run()
    assert got == [1, 0]


def test_send_enq_fails_when_pool_empty_nonfatal():
    cfg = LciConfig(pool_packets_min=4, pool_packets_per_host=1)
    env, world = make_lci(config=cfg)
    outcomes = []

    def sender(env):
        rt = world[0]
        # Rendezvous sends hold their packet until the (never-sent) RTR;
        # with a 4-packet pool and the 2-packet receive reserve, two of
        # them exhaust the send-side budget.
        big = rt.config.packet_data_bytes + 1
        for i in range(3):
            req = yield from rt.send_enq(1, tag=0, size=big, payload=i)
            outcomes.append(req is not None)

    env.process(sender(env))
    env.run(until=0.01)
    assert outcomes == [True, True, False]
    assert world[0].pool.stats.counter_value("alloc_failures") == 1


def test_recv_deq_returns_none_when_no_message():
    env, world = make_lci()
    res = []

    def receiver(env):
        req = yield from world[1].recv_deq()
        res.append(req)

    env.process(receiver(env))
    env.run()
    assert res == [None]


def test_status_flag_check_is_free():
    """Reading req.done must not advance simulated time."""
    env, world = make_lci()
    deltas = []

    def sender(env):
        rt = world[0]
        req = yield from rt.send_enq(1, tag=0, size=64, payload="x")
        t0 = env.now
        for _ in range(1000):
            _ = req.done
        deltas.append(env.now - t0)

    env.process(sender(env))
    env.run()
    assert deltas == [0.0]


def test_pool_budget_returns_after_full_protocol():
    env, world = make_lci()
    big = world[0].config.packet_data_bytes * 2

    def sender(env):
        yield from world[0].send_blocking(1, tag=0, size=big, payload="a")
        yield from world[0].send_blocking(1, tag=0, size=128, payload="b")

    def receiver(env):
        yield from world[1].recv_blocking()
        yield from world[1].recv_blocking()

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    for rt in world:
        assert rt.pool.in_use == 0, f"leaked packets on rank {rt.rank}"


def test_server_backpressure_when_pool_dry():
    """Receiver pool exhaustion stalls the server instead of crashing."""
    cfg = LciConfig(pool_packets_min=2, pool_packets_per_host=1)
    env, world = make_lci(config=cfg)
    received = []

    def sender(env):
        rt = world[0]
        for i in range(6):
            yield from rt.send_blocking(1, tag=0, size=64, payload=i)

    def lazy_receiver(env):
        rt = world[1]
        yield env.timeout(0.01)  # let arrivals pile up against the pool
        for _ in range(6):
            req = yield from rt.recv_blocking()
            received.append(req.payload)

    env.process(sender(env))
    env.process(lazy_receiver(env))
    env.run()
    assert received == list(range(6))
    assert world[1].stats.counter_value("server_pool_stalls") > 0


def test_stop_server():
    env, world = make_lci()

    def stopper(env):
        yield env.timeout(1.0)
        for rt in world:
            rt.stop_server()

    env.process(stopper(env))
    env.run()
    for rt in world:
        assert not rt._server_proc.is_alive
