"""Tests for repro.obs.profile and the bench-core harness.

The load-bearing guarantees pinned here:

* installing a :class:`ProfileContext` leaves ``RunMetrics``
  bit-identical across every comm layer and both engines (pure
  observation — the CI bench leg re-asserts this);
* the work-counter fingerprint is a pure function of the scenario:
  repeat runs reproduce it exactly, and the deferred-source
  :meth:`~repro.obs.ProfileContext.flush` is idempotent;
* the region tree's self/cumulative arithmetic is exact under an
  injectable clock, for both the enter/exit and the fused leaf forms;
* exports (JSON profile document, collapsed stacks) pass their
  validators;
* ``BENCH_core.json`` drift checking ignores wall-clock blocks but
  catches any deterministic change.
"""

import json

import pytest

from repro.bench.core_bench import (
    OVERHEAD_SCENARIO,
    bench_core_to_json,
    check_core_against_file,
    core_benchmark,
    measure_overhead,
    strip_wall,
)
from repro.bench.scenarios import Scenario, build_engine
from repro.cli import main
from repro.obs import (
    CounterRegistry,
    ProfileContext,
    RegionProfiler,
    validate_collapsed,
    validate_profile_doc,
)

LAYERS = ("lci", "mpi-probe", "mpi-rma")


def bfs8(layer: str, system: str = "abelian") -> Scenario:
    return Scenario(
        app="bfs", graph="rmat", scale=8, hosts=4, layer=layer,
        system=system,
    )


class FakeClock:
    """Deterministic clock: every read advances by ``step``."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


# ---------------------------------------------------------------------------
# RegionProfiler arithmetic
# ---------------------------------------------------------------------------

def test_region_nesting_self_and_cum():
    clock = FakeClock()
    prof = RegionProfiler(clock=clock)
    prof.enter("outer")          # t=1
    prof.enter("inner")          # t=2
    prof.exit()                  # t=3: inner cum = 1
    prof.exit()                  # t=4: outer cum = 3
    rows = {r["path"]: r for r in prof.rows()}
    assert rows["outer"]["cum_s"] == 3.0
    assert rows["outer"]["self_s"] == 2.0  # 3 minus inner's 1
    assert rows["outer;inner"]["cum_s"] == 1.0
    assert rows["outer;inner"]["self_s"] == 1.0
    assert rows["outer"]["calls"] == 1
    assert rows["outer;inner"]["depth"] == 1
    assert prof.depth == 0


def test_leaf_equivalent_to_enter_exit():
    """The fused leaf form builds the same tree as enter/exit."""
    c1, c2 = FakeClock(), FakeClock()
    a, b = RegionProfiler(clock=c1), RegionProfiler(clock=c2)

    a.enter("outer")
    a.enter("hot")
    a.exit()
    a.exit()

    b.enter("outer")
    t0 = b.clock()
    b.leaf("hot", t0)
    b.exit()

    assert a.rows() == b.rows()


def test_leaf_attaches_to_innermost_open_region():
    clock = FakeClock()
    prof = RegionProfiler(clock=clock)
    t0 = prof.clock()
    prof.leaf("at_root", t0)
    prof.enter("outer")
    t0 = prof.clock()
    prof.leaf("nested", t0)
    prof.exit()
    paths = [r["path"] for r in prof.rows()]
    assert "at_root" in paths
    assert "outer;nested" in paths


def test_region_context_manager_and_repeat_calls():
    clock = FakeClock()
    prof = RegionProfiler(clock=clock)
    for _ in range(3):
        with prof.region("r"):
            pass
    (row,) = prof.rows()
    assert row["calls"] == 3
    assert row["cum_s"] == 3.0  # one tick per with-block


def test_default_clock_is_monotonic_wall():
    prof = RegionProfiler()
    prof.enter("a")
    prof.exit()
    (row,) = prof.rows()
    assert row["cum_s"] >= 0.0


# ---------------------------------------------------------------------------
# CounterRegistry
# ---------------------------------------------------------------------------

def test_counter_fingerprint_order_independent():
    a, b = CounterRegistry(), CounterRegistry()
    a.inc("x", 2)
    a.inc("y", 5)
    b.inc("y", 5)
    b.inc("x")
    b.inc("x")
    assert a.fingerprint() == b.fingerprint()
    assert a.as_dict() == {"x": 2, "y": 5}


def test_counter_fingerprint_changes_with_values():
    a = CounterRegistry()
    a.inc("x")
    fp = a.fingerprint()
    a.inc("x")
    assert a.fingerprint() != fp


def test_counter_set_is_idempotent_landing_pad():
    c = CounterRegistry()
    c.set("n", 7)
    c.set("n", 7)
    assert c.get("n") == 7
    c.set("n", 9)
    assert c.get("n") == 9


def test_flush_idempotent_and_lazy():
    ctx = ProfileContext()
    total = {"v": 0}

    def source():
        return (("layer.ops", total["v"]),)

    ctx.add_source(source)
    total["v"] = 4
    assert ctx.counters.get("layer.ops") == 0  # not flushed yet
    ctx.flush()
    ctx.flush()
    assert ctx.counters.get("layer.ops") == 4
    total["v"] = 6
    assert ctx.counters_dict()["layer.ops"] == 6  # snapshot paths flush


def test_flush_skips_zero_totals():
    ctx = ProfileContext()
    ctx.add_source(lambda: (("never.happened", 0),))
    assert "never.happened" not in ctx.counters_dict()


# ---------------------------------------------------------------------------
# Bit-identity and determinism on real engine runs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("layer", LAYERS)
def test_profiler_on_is_bit_identical(layer):
    plain = build_engine(bfs8(layer)).run()
    traced = build_engine(bfs8(layer), profile=ProfileContext()).run()
    assert plain.row() == traced.row()


def test_profiler_on_is_bit_identical_gemini():
    sc = bfs8("mpi-probe", system="gemini")
    plain = build_engine(sc).run()
    traced = build_engine(sc, profile=ProfileContext()).run()
    assert plain.row() == traced.row()


@pytest.mark.parametrize("layer", LAYERS)
def test_fingerprint_reproducible_across_repeats(layer):
    fps = set()
    for _ in range(2):
        ctx = ProfileContext()
        build_engine(bfs8(layer), profile=ctx).run()
        fps.add(ctx.fingerprint())
    assert len(fps) == 1


def test_counters_cover_every_layer_prefix():
    ctx = ProfileContext()
    build_engine(bfs8("lci"), profile=ctx).run()
    prefixes = {name.split(".", 1)[0] for name in ctx.counters_dict()}
    for expected in ("sim", "netapi", "lci", "comm", "engine"):
        assert expected in prefixes, prefixes
    ctx = ProfileContext()
    build_engine(bfs8("mpi-probe"), profile=ctx).run()
    assert "mpi" in {n.split(".", 1)[0] for n in ctx.counters_dict()}


def test_regions_cover_the_hot_paths():
    ctx = ProfileContext()
    build_engine(bfs8("lci"), profile=ctx).run()
    paths = {r["name"] for r in ctx.regions.rows()}
    for expected in (
        "sim.engine.run", "netapi.nic.inject", "netapi.nic.deliver",
        "lci.server.progress", "comm.serialization.pack",
        "engine.bsp.scatter",
    ):
        assert expected in paths, sorted(paths)


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def run_ctx():
    ctx = ProfileContext()
    build_engine(bfs8("lci"), profile=ctx).run()
    return ctx


def test_profile_doc_validates(run_ctx):
    doc = run_ctx.report_dict(meta={"scenario": "bfs8"})
    assert validate_profile_doc(doc) == []
    assert doc["meta"]["scenario"] == "bfs8"


def test_profile_doc_validator_catches_corruption(run_ctx):
    doc = run_ctx.report_dict()
    doc["fingerprint"] = "nope"
    assert validate_profile_doc(doc)
    doc2 = run_ctx.report_dict()
    doc2["regions"][0]["self_s"] = -1.0
    assert validate_profile_doc(doc2)


def test_collapsed_export_validates(run_ctx):
    text = run_ctx.to_collapsed()
    assert validate_collapsed(text) == []
    assert "netapi.nic.inject" in text


def test_collapsed_validator_catches_corruption():
    assert validate_collapsed("bad stack line\n")
    assert validate_collapsed("a;b 1\na;b 2\n")  # duplicate stack
    assert validate_collapsed("a;b 1")  # missing trailing newline


def test_save_json_and_collapsed(tmp_path, run_ctx):
    jpath = tmp_path / "prof.json"
    cpath = tmp_path / "prof.folded"
    run_ctx.save_json(str(jpath), meta={"k": "v"})
    run_ctx.save_collapsed(str(cpath))
    with open(jpath) as fh:
        assert validate_profile_doc(json.load(fh)) == []
    assert validate_collapsed(cpath.read_text()) == []


def test_format_top_and_counters(run_ctx):
    top = run_ctx.format_top(5)
    assert "region" in top and "self%" in top
    table = run_ctx.format_counters()
    assert "fingerprint" in table


# ---------------------------------------------------------------------------
# bench-core harness
# ---------------------------------------------------------------------------

TINY = (Scenario(app="bfs", graph="rmat", scale=7, hosts=2, layer="lci"),)


def test_core_benchmark_shape_and_check(tmp_path):
    doc = core_benchmark(TINY, repeats=2)
    (row,) = doc["scenarios"]
    assert row["sim"]["fingerprint"]
    assert row["sim"]["events_fired"] > 0
    assert row["wall"]["wall_seconds"] > 0

    path = tmp_path / "BENCH_core.json"
    path.write_text(bench_core_to_json(doc))

    # Wall-clock drift must be invisible to the check...
    doc2 = core_benchmark(TINY, repeats=1)
    doc2["scenarios"][0]["wall"]["wall_seconds"] = 999.0
    assert check_core_against_file(doc2, str(path)) == []

    # ...while any deterministic drift is loud.
    doc3 = json.loads(bench_core_to_json(doc))
    doc3["scenarios"][0]["sim"]["fingerprint"] = "0" * 16
    assert check_core_against_file(doc3, str(path))


def test_check_against_missing_file(tmp_path):
    doc = {"format": "repro-bench-core/v1", "scenarios": []}
    assert check_core_against_file(doc, str(tmp_path / "absent.json")) is None


def test_strip_wall_removes_every_wall_subtree():
    doc = {"a": [{"wall": {"x": 1}, "sim": {"y": 2, "wall": 0}}], "wall": 3}
    stripped = strip_wall(doc)
    assert stripped == {"a": [{"sim": {"y": 2}}]}  # at every depth


def test_measure_overhead_shape():
    out = measure_overhead(TINY[0], repeats=1)
    assert set(out) == {"scenario", "wall_off", "wall_on", "overhead_pct"}
    assert out["wall_off"] > 0 and out["wall_on"] > 0


def test_overhead_scenario_is_well_formed():
    assert OVERHEAD_SCENARIO.layer in ("lci", "mpi-probe", "mpi-rma")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_profile(tmp_path, capsys):
    jpath = str(tmp_path / "p.json")
    cpath = str(tmp_path / "p.folded")
    rc = main([
        "profile", "--app", "bfs", "--graph", "rmat", "--scale", "8",
        "--hosts", "4", "--layer", "lci", "--top", "5",
        "--json", jpath, "--collapsed", cpath,
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "region" in out and "fingerprint" in out
    with open(jpath) as fh:
        assert validate_profile_doc(json.load(fh)) == []
    with open(cpath) as fh:
        assert validate_collapsed(fh.read()) == []


def test_cli_bench_core_roundtrip(tmp_path, capsys, monkeypatch):
    import repro.bench.core_bench as cb
    monkeypatch.setattr(cb, "CANONICAL_SCENARIOS", TINY)
    path = str(tmp_path / "BENCH_core.json")
    assert main(["bench-core", "--out", path, "--repeats", "1"]) == 0
    capsys.readouterr()
    assert main(["bench-core", "--check", path, "--repeats", "1"]) == 0
    assert "match" in capsys.readouterr().out
