"""Tests for repro.sanitize: the determinism lint and protocol sanitizers.

Each runtime rule is demonstrated on a deliberately broken fixture (a
planted leak, a planted double-free, a planted RMA race...) and the
bit-identity acceptance property — sanitized runs produce exactly the
numbers unsanitized runs do — is asserted end-to-end on BFS and
PageRank.
"""

import json

import pytest

from repro.bench.scenarios import Scenario, build_engine
from repro.lci import LciRuntime, PacketPool
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MpiWindow,
    MpiWorld,
    ThreadMode,
    intel_mpi,
)
from repro.mpi.exceptions import MPIUsageError
from repro.netapi.nic import Fabric
from repro.netapi.packet import PacketType
from repro.sanitize import (
    SANITIZER_EXIT_CODE,
    LciSanitizer,
    SanitizerConfig,
    SanitizerContext,
    SanitizerError,
    signatures_overlap,
)
from repro.sanitize.lint import (
    is_order_sensitive,
    lint_repo,
    lint_source,
    report_dict,
)
from repro.sanitize.runtime import resolve_mode
from repro.sim.engine import Environment
from repro.sim.machine import stampede2
from repro.sim.rng import RngFactory


# ---------------------------------------------------------------------------
# Helpers: worlds with sanitizers armed (discovered via fabric.sanitizer,
# exactly the path the engine uses)
# ---------------------------------------------------------------------------
def make_mpi_world(num_hosts=2, mode="warn", san_config=None):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    ctx = SanitizerContext(mode, env=env, config=san_config)
    fabric.sanitizer = ctx
    world = MpiWorld(env, fabric, intel_mpi(), ThreadMode.MULTIPLE)
    return env, world, ctx


def make_lci_world(num_hosts=2, mode="warn"):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    ctx = SanitizerContext(mode, env=env)
    fabric.sanitizer = ctx
    world = LciRuntime.create_world(env, fabric)
    return env, world, ctx


def make_sanitized_pool(size=3, rx_reserve=0, mode="warn"):
    env = Environment()
    ctx = SanitizerContext(mode, env=env)
    pool = PacketPool(
        env, stampede2().cpu, size=size, packet_data_bytes=1024,
        rx_reserve=rx_reserve,
    )
    pool.sanitizer = LciSanitizer(ctx, host=0)
    return env, pool, ctx


# ---------------------------------------------------------------------------
# Static determinism lint (Part A)
# ---------------------------------------------------------------------------
def rules_of(findings):
    return {f.rule for f in findings}


def test_lint_flags_wall_clock():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert "D101" in rules_of(lint_source(src, "src/repro/bench/x.py"))


def test_lint_flags_wall_clock_via_alias_and_datetime():
    src = "import time as t\nfrom datetime import datetime\n" \
          "a = t.perf_counter()\nb = datetime.now()\n"
    findings = [f for f in lint_source(src, "src/repro/x.py") if f.rule == "D101"]
    assert len(findings) == 2


def test_lint_flags_global_random():
    src = "import random\nimport numpy as np\n" \
          "a = random.random()\nb = np.random.rand(3)\n"
    findings = [f for f in lint_source(src, "src/repro/x.py") if f.rule == "D102"]
    # The `import random` itself plus both global-state draws.
    assert len(findings) == 3
    assert [f.line for f in findings] == [1, 3, 4]


def test_lint_flags_unseeded_default_rng_but_not_seeded():
    bad = "import numpy as np\nr = np.random.default_rng()\n"
    good = "import numpy as np\nr = np.random.default_rng(42)\n"
    assert "D102" in rules_of(lint_source(bad, "src/repro/x.py"))
    assert "D102" not in rules_of(lint_source(good, "src/repro/x.py"))


def test_lint_flags_set_iteration_only_in_sensitive_dirs():
    src = "s = {1, 2, 3}\nfor x in s:\n    print(x)\n"
    assert "D103" in rules_of(lint_source(src, "src/repro/mpi/x.py"))
    assert "D103" not in rules_of(lint_source(src, "src/repro/bench/x.py"))


def test_lint_set_iteration_sorted_is_clean():
    src = "s = {1, 2, 3}\nfor x in sorted(s):\n    print(x)\n"
    assert lint_source(src, "src/repro/sim/x.py") == []


def test_lint_flags_environ_only_in_sensitive_dirs():
    src = "import os\nif os.environ.get('FAST'):\n    x = 1\n"
    assert "D104" in rules_of(lint_source(src, "src/repro/lci/x.py"))
    assert "D104" not in rules_of(lint_source(src, "src/repro/cli2.py"))


def test_lint_flags_fp_accumulation_over_unordered():
    src = "vals = {1.0, 2.0}\ntotal = sum(vals)\n"
    findings = lint_source(src, "src/repro/comm/x.py")
    assert "D105" in rules_of(findings)
    # D105 claims the node: the same set must not double-report as D103.
    assert "D103" not in rules_of(findings)


def test_lint_suppression_comment():
    src = "import time\nnow = time.time()  # lint-ok: D101 wall clock wanted\n"
    assert lint_source(src, "src/repro/sim/x.py") == []
    src_all = "import time\nnow = time.time()  # lint-ok: all\n"
    assert lint_source(src_all, "src/repro/sim/x.py") == []


def test_lint_suppression_is_per_rule():
    src = "import time\nnow = time.time()  # lint-ok: D103 wrong rule\n"
    assert "D101" in rules_of(lint_source(src, "src/repro/sim/x.py"))


def test_is_order_sensitive_paths():
    assert is_order_sensitive("src/repro/sim/engine.py")
    assert is_order_sensitive("src/repro/faults/injector.py")
    assert not is_order_sensitive("src/repro/bench/report.py")
    assert not is_order_sensitive("src/repro/cli.py")


def test_lint_repo_is_clean():
    """Acceptance criterion: the lint runs clean on the repo itself."""
    result = lint_repo()
    assert result.files_checked > 50
    assert result.findings == []


def test_lint_json_report_shape(tmp_path):
    src = "import time\na = time.time()\nb = time.time()\n"
    findings = lint_source(src, "src/repro/sim/x.py")
    from repro.sanitize.lint import LintResult
    report = report_dict(LintResult(findings, files_checked=1, suppressed=0))
    assert report["counts_by_rule"] == {"D101": 2}
    assert len(report["findings"]) == 2
    assert report["findings"][0]["rule"] == "D101"
    assert report["files_checked"] == 1
    assert "D101" in report["rules"]
    # Round-trips as JSON.
    json.loads(json.dumps(report))


def test_lint_flags_set_fed_dict_iteration():
    src = (
        "s = {3, 1, 2}\n"
        "d = {k: 0 for k in s}\n"
        "for k in d.keys():\n"
        "    print(k)\n"
        "for v in d.values():\n"
        "    print(v)\n"
    )
    findings = lint_source(src, "src/repro/comm/x.py")
    # the comp itself iterates the set (D103, the root cause); both
    # downstream .keys()/.values() loops get D106
    assert [f.rule for f in findings] == ["D103", "D106", "D106"]
    # order-insensitive dirs stay silent
    assert lint_source(src, "src/repro/bench/x.py") == []


def test_lint_flags_dict_fromkeys_of_set():
    src = (
        "s = {1, 2}\n"
        "d = dict.fromkeys(s)\n"
        "for k in d.keys():\n"
        "    print(k)\n"
    )
    assert "D106" in rules_of(lint_source(src, "src/repro/mpi/x.py"))


def test_lint_set_fed_dict_clean_counterparts():
    # built from sorted(...) — ordered, no finding
    ordered = (
        "s = {3, 1, 2}\n"
        "d = {k: 0 for k in sorted(s)}\n"
        "for k in d.keys():\n"
        "    print(k)\n"
    )
    assert lint_source(ordered, "src/repro/sim/x.py") == []
    # fed from a list — insertion order is already deterministic
    listy = (
        "xs = [3, 1, 2]\n"
        "d = {k: 0 for k in xs}\n"
        "for v in d.values():\n"
        "    print(v)\n"
    )
    assert lint_source(listy, "src/repro/sim/x.py") == []
    # reassignment to an ordered dict clears the taint
    reassigned = (
        "s = {1, 2}\n"
        "d = dict.fromkeys(s)\n"
        "d = dict.fromkeys(sorted(s))\n"
        "for k in d.keys():\n"
        "    print(k)\n"
    )
    assert lint_source(reassigned, "src/repro/sim/x.py") == []


def test_lint_suppression_counts_in_result():
    from repro.sanitize.lint import _lint_source_counted

    src = (
        "import time\n"
        "a = time.time()  # lint-ok: D101 wanted\n"
        "b = time.time()\n"
    )
    result = _lint_source_counted(src, "src/repro/sim/x.py")
    assert result.suppressed == 1
    assert [f.rule for f in result.findings] == ["D101"]


def test_lint_suppression_comma_separated_rules():
    src = (
        "import time\n"
        "s = {1.0, 2.0}\n"
        "t = sum(s) + time.time()  # lint-ok: D101, D105 both intended\n"
    )
    assert lint_source(src, "src/repro/sim/x.py") == []
    # only one of the two listed: the other still fires
    partial = (
        "import time\n"
        "s = {1.0, 2.0}\n"
        "t = sum(s) + time.time()  # lint-ok: D105 fp ok\n"
    )
    assert rules_of(lint_source(partial, "src/repro/sim/x.py")) == {"D101"}


def test_lint_suppressed_count_survives_into_report(tmp_path):
    from repro.sanitize.lint import lint_paths

    f = tmp_path / "repro" / "sim" / "x.py"
    f.parent.mkdir(parents=True)
    f.write_text(
        "import time\n"
        "a = time.time()  # lint-ok: all\n"
        "b = time.time()  # lint-ok: D101 wanted\n"
        "c = time.time()\n"
    )
    result = lint_paths([f])
    assert result.suppressed == 2
    report = report_dict(result)
    assert report["suppressions"]["count"] == 2
    assert report["suppressed"] == 2  # legacy alias
    assert report["counts_by_rule"] == {"D101": 1}


# ---------------------------------------------------------------------------
# Mode resolution and context mechanics
# ---------------------------------------------------------------------------
def test_resolve_mode_env_gating(monkeypatch):
    for off in ("", "0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_SANITIZE", off)
        assert resolve_mode() is None
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert resolve_mode() == "warn"
    monkeypatch.setenv("REPRO_SANITIZE", "raise")
    assert resolve_mode() == "raise"
    monkeypatch.setenv("REPRO_SANITIZE", "strict")
    assert resolve_mode() == "raise"
    # Explicit settings beat the environment.
    assert resolve_mode("off") is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert resolve_mode("warn") == "warn"
    with pytest.raises(ValueError):
        resolve_mode("bogus")


def test_context_warn_accumulates_raise_raises():
    warn = SanitizerContext("warn")
    warn.violation("x.rule", 0, "first")
    warn.violation("x.rule", 1, "second")
    assert len(warn) == 2
    assert warn.summary() == {"x.rule": 2}
    assert [v.host for v in warn.by_rule("x.rule")] == [0, 1]
    strict = SanitizerContext("raise")
    with pytest.raises(SanitizerError) as ei:
        strict.violation("x.rule", 3, "boom", detail=7)
    assert ei.value.rule == "x.rule"
    assert ei.value.violation.details == {"detail": 7}


# ---------------------------------------------------------------------------
# LCI lifecycle sanitizers (planted bugs)
# ---------------------------------------------------------------------------
def test_pool_double_free_planted():
    env, pool, ctx = make_sanitized_pool(size=3)
    # The pool starts full: any free now is a double free.
    pool.free_nowait()
    assert ctx.summary() == {"lci.pool_double_free": 1}
    v = ctx.by_rule("lci.pool_double_free")[0]
    assert v.details["pool_size"] == 3


def test_pool_leak_planted():
    env, pool, ctx = make_sanitized_pool(size=3)

    def proc(env):
        yield from pool.alloc()
        yield from pool.alloc()
        # ...and never free: a leak at shutdown.

    env.process(proc(env))
    env.run()
    pool.sanitizer.check_shutdown(pool)
    leaks = ctx.by_rule("lci.packet_leak")
    assert len(leaks) == 1
    assert leaks[0].details["leaked"] == 2


def test_packet_double_free_and_use_after_free_planted():
    env, pool, ctx = make_sanitized_pool(size=3)

    def proc(env):
        yield from pool.alloc()
        pkt = pool.make_packet(PacketType.EGR, 0, 1, 5, 64)
        pool.touch(pkt)                 # live: fine
        pool.retire(pkt)
        yield from pool.free()
        pool.retire(pkt)                # double free
        pool.touch(pkt)                 # use after free

    env.process(proc(env))
    env.run()
    assert ctx.summary() == {
        "lci.packet_double_free": 1,
        "lci.packet_use_after_free": 1,
    }


def test_packet_lifecycle_is_per_host():
    """The transport hands the same Packet object to both ends; the
    sender retiring its budget must not poison the receiver's view."""
    env = Environment()
    ctx = SanitizerContext("warn", env=env)
    sender = LciSanitizer(ctx, host=0)
    receiver = LciSanitizer(ctx, host=1)

    class FakePkt:
        meta = {}
        uid = 1

    pkt = FakePkt()
    sender.on_packet_made(pkt)
    receiver.on_packet_made(pkt)
    sender.on_packet_retired(pkt)
    receiver.on_packet_use(pkt)     # receiver still live: no violation
    receiver.on_packet_retired(pkt)
    assert len(ctx) == 0
    sender.on_packet_use(pkt)       # sender is retired: violation
    assert ctx.summary() == {"lci.packet_use_after_free": 1}


def test_lci_healthy_roundtrip_is_clean():
    env, world, ctx = make_lci_world(2)
    result = {}

    def sender(env):
        yield from world[0].send_blocking(1, tag=9, size=256, payload=b"y" * 256)

    def receiver(env):
        req = yield from world[1].recv_blocking()
        result["payload"] = req.payload

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    for rt in world:
        rt.stop_server()
    assert result["payload"] == b"y" * 256
    assert len(ctx) == 0


def test_lci_unreceived_message_reported_at_shutdown():
    """Send without a matching dequeue: the arrival sits in the
    completion queue on a pool budget — both reported at shutdown."""
    env, world, ctx = make_lci_world(2)

    def sender(env):
        yield from world[0].send_blocking(1, tag=9, size=128, payload=b"z")

    env.process(sender(env))
    env.run()
    world[1].stop_server()
    summary = ctx.summary()
    assert summary.get("lci.packet_leak") == 1
    assert summary.get("lci.cq_unreaped") == 1
    assert ctx.by_rule("lci.packet_leak")[0].host == 1


# ---------------------------------------------------------------------------
# MPI two-sided sanitizers (planted bugs)
# ---------------------------------------------------------------------------
def test_signatures_overlap():
    A_S, A_T = ANY_SOURCE, ANY_TAG
    assert signatures_overlap(A_S, 5, 0, 5, A_S, A_T)
    assert signatures_overlap(0, A_T, 0, 5, A_S, A_T)
    assert not signatures_overlap(0, 5, 1, 5, A_S, A_T)   # disjoint sources
    assert not signatures_overlap(A_S, 4, A_S, 5, A_S, A_T)  # disjoint tags


def test_unmatched_send_and_unexpected_at_finalize():
    env, world, ctx = make_mpi_world(2)
    big = world.config.eager_limit * 4

    def sender(env):
        ep = world.endpoint(0)
        # Rendezvous send whose receiver never posts: the RTS parks in
        # rank 1's unexpected queue and this request never completes.
        yield from ep.isend(1, tag=3, size=big, payload=b"?")

    def receiver(env):
        ep = world.endpoint(1)
        yield env.timeout(0.01)         # let the RTS arrive
        yield from ep.progress()        # drain NIC -> unexpected queue

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    world.endpoint(0).finalize_check()
    world.endpoint(1).finalize_check()
    summary = ctx.summary()
    assert summary.get("mpi.unmatched_send_at_finalize") == 1
    assert summary.get("mpi.unexpected_at_finalize") == 1
    v = ctx.by_rule("mpi.unmatched_send_at_finalize")[0]
    assert v.host == 0 and v.details["first_peer"] == 1


def test_pending_recv_at_finalize():
    env, world, ctx = make_mpi_world(2)

    def receiver(env):
        ep = world.endpoint(1)
        yield from ep.irecv(source=0, tag=7)   # never matched

    env.process(receiver(env))
    env.run()
    world.endpoint(1).finalize_check()
    assert ctx.summary() == {"mpi.pending_recv_at_finalize": 1}


def test_wildcard_order_hazard_on_overlapping_posts():
    env, world, ctx = make_mpi_world(2)

    def receiver(env):
        ep = world.endpoint(1)
        yield from ep.irecv(source=ANY_SOURCE, tag=7)
        yield from ep.irecv(source=0, tag=7)   # overlaps via ANY_SOURCE

    env.process(receiver(env))
    env.run()
    hazards = ctx.by_rule("mpi.wildcard_order_hazard")
    assert len(hazards) == 1
    assert hazards[0].details["pending_source"] == ANY_SOURCE


def test_identical_signatures_are_not_a_hazard():
    """FIFO per-(source, tag) keeps identical posts deterministic."""
    env, world, ctx = make_mpi_world(2)

    def receiver(env):
        ep = world.endpoint(1)
        yield from ep.irecv(source=ANY_SOURCE, tag=7)
        yield from ep.irecv(source=ANY_SOURCE, tag=7)

    env.process(receiver(env))
    env.run()
    assert ctx.by_rule("mpi.wildcard_order_hazard") == []


def test_unexpected_watermark_fires_once():
    env, world, ctx = make_mpi_world(
        2, san_config=SanitizerConfig(unexpected_watermark=2)
    )

    def sender(env):
        ep = world.endpoint(0)
        for tag in range(4):
            req = yield from ep.isend(1, tag=tag, size=64, payload=b"a")
            yield from ep.wait(req)

    def receiver(env):
        ep = world.endpoint(1)
        yield env.timeout(0.05)
        yield from ep.progress()    # four arrivals, zero posted receives

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    marks = ctx.by_rule("mpi.unexpected_watermark")
    assert len(marks) == 1          # reported once, not on every breach
    assert marks[0].details["queue_len"] == 3


# ---------------------------------------------------------------------------
# MPI RMA / PSCW epoch sanitizers (planted races)
# ---------------------------------------------------------------------------
def run_pscw(mode, origin_puts):
    """One PSCW epoch from rank 0 to rank 1 issuing ``origin_puts``."""
    env, world, ctx = make_mpi_world(2, mode=mode)
    win = MpiWindow(world, size_fn=lambda o, t: 4096, label="san-win")

    def origin(env):
        yield from win.create(0)
        yield from win.start(0, [1])
        for (nbytes, offset) in origin_puts:
            yield from win.put(0, 1, nbytes, payload=b"p", offset=offset)
        yield from win.complete(0)

    def target(env):
        yield from win.create(1)
        yield from win.post(1, [0])
        yield from win.wait(1)

    env.process(origin(env))
    env.process(target(env))
    env.run()
    return ctx


def test_rma_overlapping_put_race_detected():
    ctx = run_pscw("warn", [(512, 0), (512, 256)])   # [0,512) x [256,768)
    races = ctx.by_rule("mpi.rma_overlapping_put")
    assert len(races) == 1
    assert races[0].details["earlier_offset"] == 0
    assert races[0].details["offset"] == 256


def test_rma_disjoint_puts_are_clean():
    ctx = run_pscw("warn", [(512, 0), (512, 512), (512, 1024)])
    assert len(ctx) == 0


def test_rma_race_cannot_span_epochs():
    """complete() synchronizes: the same offset in a new epoch is fine."""
    env, world, ctx = make_mpi_world(2)
    win = MpiWindow(world, size_fn=lambda o, t: 4096, label="san-win")

    def origin(env):
        yield from win.create(0)
        for _ in range(2):
            yield from win.start(0, [1])
            yield from win.put(0, 1, 512, payload=b"p", offset=0)
            yield from win.complete(0)

    def target(env):
        yield from win.create(1)
        for _ in range(2):
            yield from win.post(1, [0])
            yield from win.wait(1)

    env.process(origin(env))
    env.process(target(env))
    env.run()
    assert len(ctx) == 0


def test_rma_put_outside_epoch_recorded_and_raises_usage_error():
    env, world, ctx = make_mpi_world(2)
    win = MpiWindow(world, size_fn=lambda o, t: 4096, label="san-win")
    caught = []

    def origin(env):
        yield from win.create(0)
        try:
            yield from win.put(0, 1, 64, payload=b"p")
        except MPIUsageError as e:
            caught.append(str(e))

    def target(env):
        yield from win.create(1)

    env.process(origin(env))
    env.process(target(env))
    env.run()
    assert caught and "outside access epoch" in caught[0]
    assert ctx.summary() == {"mpi.rma_put_outside_epoch": 1}


def test_rma_overlapping_put_raise_mode():
    with pytest.raises(SanitizerError) as ei:
        run_pscw("raise", [(512, 0), (512, 0)])
    assert ei.value.rule == "mpi.rma_overlapping_put"


# ---------------------------------------------------------------------------
# RNG stream registry (satellite: duplicate registration rejected)
# ---------------------------------------------------------------------------
def test_rng_register_rejects_duplicates():
    rng = RngFactory(7)
    a = rng.register("faults.drop.0", owner="fault spec #0")
    assert a.random() is not None
    with pytest.raises(ValueError, match="fault spec #0"):
        rng.register("faults.drop.0", owner="fault spec #1")
    # Deliberate sharing through stream() stays legal.
    assert rng.stream("faults.drop.0") is not None


def test_rng_stream_still_shares():
    rng = RngFactory(7)
    s1 = rng.stream("shared")
    s2 = rng.stream("shared")
    assert s1 is s2


# ---------------------------------------------------------------------------
# Bit-identity acceptance: sanitize on == sanitize off, to the last bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app,layer", [
    ("bfs", "lci"),
    ("pagerank", "mpi-rma"),
])
def test_sanitized_runs_are_bit_identical(app, layer):
    def run(sanitize):
        sc = Scenario(app=app, graph="rmat", scale=8, hosts=2, layer=layer,
                      pagerank_rounds=3, sanitize=sanitize)
        return build_engine(sc).run()

    # "off" (not None) so a REPRO_SANITIZE=1 test environment cannot
    # arm the baseline too and trivialise the comparison.
    base = run("off")
    sane = run("warn")
    assert sane.sanitizer_mode == "warn"
    assert sane.sanitizer_violations == []
    assert base.sanitizer_mode == ""
    assert sane.total_seconds == base.total_seconds
    assert sane.compute_seconds == base.compute_seconds
    assert sane.comm_seconds == base.comm_seconds
    assert sane.rounds == base.rounds


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("import time\nx = time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert main(["lint", str(bad)]) == 1
    assert "D101" in capsys.readouterr().out
    assert main(["lint", str(good)]) == 0
    report = tmp_path / "report.json"
    assert main(["lint", str(bad), "--json", str(report)]) == 1
    capsys.readouterr()
    data = json.loads(report.read_text())
    assert data["counts_by_rule"] == {"D101": 1}
    assert len(data["findings"]) == 1


def test_cli_run_exits_3_on_warn_mode_violations(monkeypatch, capsys):
    import repro.cli as cli

    class FakeMetrics:
        total_seconds = 1.0
        compute_seconds = 0.5
        comm_seconds = 0.5
        rounds = 2
        sanitizer_mode = "warn"
        sanitizer_violations = [{
            "rule": "lci.packet_leak", "host": 0, "time": 0.0,
            "message": "planted", "details": {"leaked": 1},
        }]

        def row(self):
            return {"app": "bfs", "layer": "lci"}

        def stamp_wall(self, wall_seconds):
            return self

    class FakeEngine:
        def run(self):
            return FakeMetrics()

    monkeypatch.setattr(cli, "build_engine",
                        lambda sc, tracer=None, obs=None, commstats=None: FakeEngine())
    assert cli.main(["run", "--sanitize"]) == SANITIZER_EXIT_CODE
    assert "lci.packet_leak" in capsys.readouterr().err


def test_cli_run_exits_3_on_sanitizer_error(monkeypatch, capsys):
    import repro.cli as cli
    from repro.sanitize.runtime import Violation

    class FakeEngine:
        def run(self):
            raise SanitizerError(Violation(
                "mpi.rma_overlapping_put", 0, 0.0, "planted race"))

    monkeypatch.setattr(cli, "build_engine",
                        lambda sc, tracer=None, obs=None, commstats=None: FakeEngine())
    assert cli.main(["run", "--sanitize", "raise"]) == SANITIZER_EXIT_CODE
    assert "planted race" in capsys.readouterr().err
