"""Tests for machine presets and MPI configuration plumbing."""

import pytest

from repro.lci.config import LciConfig
from repro.mpi.config import ThreadMode
from repro.mpi.presets import MPI_PRESETS, default_mpi, intel_mpi
from repro.sim.machine import PRESETS, MachineModel, stampede1, stampede2


# ---------------------------------------------------------------------------
# machine presets
# ---------------------------------------------------------------------------
def test_presets_registered():
    assert set(PRESETS) == {"stampede2", "stampede1"}
    assert isinstance(PRESETS["stampede2"], MachineModel)


def test_stampede2_matches_table3():
    m = stampede2()
    assert m.cpu.cores == 68           # KNL 7250
    assert m.nic.rdma                  # Omni-Path supports RDMA
    # 100 Gb/s link, GB/s order of magnitude.
    assert 10e9 < m.nic.bandwidth < 14e9


def test_stampede1_matches_table3():
    m = stampede1()
    assert m.cpu.cores == 16           # 2 x 8 Sandy Bridge
    # FDR 56 Gb/s is slower than Omni-Path.
    assert m.nic.bandwidth < stampede2().nic.bandwidth


def test_knl_software_slower_than_snb():
    """Per-core software costs: KNL's slow cores vs SNB's fast ones."""
    knl, snb = stampede2().cpu, stampede1().cpu
    assert knl.atomic_op > snb.atomic_op
    assert knl.per_edge_cost > snb.per_edge_cost
    assert knl.alloc_cost > snb.alloc_cost


def test_stampede1_memory_locality_penalty():
    """The paper blames S1's memory subsystem for RMA's loss there."""
    assert stampede1().cpu.cold_read_factor > stampede2().cpu.cold_read_factor


def test_with_cores():
    m = stampede2().with_cores(4)
    assert m.cpu.cores == 4
    assert m.nic.bandwidth == stampede2().nic.bandwidth


def test_nic_derived_quantities():
    nic = stampede2().nic
    assert nic.serialization_time(nic.bandwidth) == pytest.approx(1.0)
    assert nic.injection_gap == pytest.approx(1.0 / nic.injection_rate)


# ---------------------------------------------------------------------------
# MPI configs
# ---------------------------------------------------------------------------
def test_mpi_presets_complete():
    assert set(MPI_PRESETS) == {"intelmpi", "mvapich2", "openmpi"}
    assert default_mpi().name == "intelmpi"


def test_with_override():
    cfg = intel_mpi().with_(eager_limit=1)
    assert cfg.eager_limit == 1
    assert cfg.name == "intelmpi"
    assert intel_mpi().eager_limit != 1  # original untouched


def test_scaled_shrinks_software_not_protocol():
    base = intel_mpi()
    fast = base.scaled(0.5)
    assert fast.call_overhead == pytest.approx(base.call_overhead * 0.5)
    assert fast.match_cost_per_element == pytest.approx(
        base.match_cost_per_element * 0.5
    )
    assert fast.rma_sync_overhead == pytest.approx(
        base.rma_sync_overhead * 0.5
    )
    # Protocol constants unchanged.
    assert fast.eager_limit == base.eager_limit
    assert fast.eager_credits_per_peer == base.eager_credits_per_peer
    assert fast.crash_on_exhaustion == base.crash_on_exhaustion
    assert fast.bandwidth_efficiency == base.bandwidth_efficiency


def test_thread_modes():
    assert ThreadMode.FUNNELED is not ThreadMode.MULTIPLE
    assert ThreadMode("funneled") is ThreadMode.FUNNELED


# ---------------------------------------------------------------------------
# LCI config
# ---------------------------------------------------------------------------
def test_lci_pool_size_rule():
    cfg = LciConfig(pool_packets_per_host=8, pool_packets_min=64)
    assert cfg.pool_size(2) == 64      # floor dominates at small scale
    assert cfg.pool_size(128) == 1024  # linear in hosts at large scale


def test_lci_with_override():
    cfg = LciConfig().with_(packet_data_bytes=2048)
    assert cfg.packet_data_bytes == 2048
    assert LciConfig().packet_data_bytes != 2048
