"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    rc = main([
        "run", "--app", "bfs", "--graph", "rmat", "--scale", "8",
        "--hosts", "4", "--layer", "lci",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "bfs" in out and "rounds" in out
    assert "total" in out and "comm" in out


def test_run_command_with_trace(tmp_path, capsys):
    trace = str(tmp_path / "t.json")
    rc = main([
        "run", "--app", "bfs", "--graph", "rmat", "--scale", "8",
        "--hosts", "4", "--layer", "lci", "--trace", trace,
    ])
    assert rc == 0
    with open(trace) as f:
        data = json.load(f)
    assert any(e["ph"] == "X" for e in data["traceEvents"])


def test_run_mpi_layer_on_stampede1(capsys):
    rc = main([
        "run", "--app", "cc", "--graph", "kron", "--scale", "8",
        "--hosts", "4", "--layer", "mpi-probe", "--machine", "stampede1",
        "--mpi", "mvapich2",
    ])
    assert rc == 0
    assert "cc" in capsys.readouterr().out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--app", "bfs", "--graph", "rmat", "--scale", "8",
        "--hosts", "2", "4",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    for layer in ("lci", "mpi-probe", "mpi-rma"):
        assert layer in out


def test_sweep_gemini_excludes_rma(capsys):
    rc = main([
        "sweep", "--app", "bfs", "--graph", "rmat", "--scale", "8",
        "--hosts", "2", "--system", "gemini",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "mpi-rma" not in out


def test_micro_command(capsys):
    rc = main(["micro", "--sizes", "8", "--threads", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "latency" in out and "message rate" in out
    assert "queue" in out


def test_inputs_command(capsys):
    rc = main(["inputs", "--scale", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "max D_out" in out


def test_invalid_choice_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--app", "nonsense"])
