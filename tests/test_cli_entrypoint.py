"""The ``python -m repro`` entry point works as a subprocess."""

import subprocess
import sys


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_module_entrypoint_inputs():
    proc = run_cli("inputs", "--scale", "7")
    assert proc.returncode == 0
    assert "max D_out" in proc.stdout


def test_module_entrypoint_run_kcore():
    proc = run_cli(
        "run", "--app", "kcore", "--graph", "kron", "--scale", "8",
        "--hosts", "4",
    )
    assert proc.returncode == 0
    assert "kcore" in proc.stdout


def test_module_entrypoint_bad_args():
    proc = run_cli("run", "--layer", "carrier-pigeon")
    assert proc.returncode != 0
    assert "invalid choice" in proc.stderr
