"""Edge cases of MPI matching (wildcards, FIFO) and LCI pool recycling.

The matching queues implement exactly the semantics LCI drops — wildcard
receives and the FIFO-per-(source, tag) ordering guarantee — so their
corner cases are load-bearing for the paper's comparison.  The pool
tests walk the full exhaustion → recycle → reuse cycle (local caches,
steal path, receive reserve) with the lifecycle sanitizer armed: clean
on the healthy paths, and loudly caught on deliberately planted leak
and double-free bugs.
"""

from repro.lci import PacketPool
from repro.netapi.packet import PacketType
from repro.mpi.matching import (
    PostedQueue,
    PostedReceive,
    UnexpectedMessage,
    UnexpectedQueue,
)
from repro.mpi.types import ANY_SOURCE, ANY_TAG, MpiRequest
from repro.sanitize import LciSanitizer, SanitizerContext
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def recv_req(source=ANY_SOURCE, tag=ANY_TAG):
    return MpiRequest("recv", source, tag, 0)


def posted(source, tag):
    return PostedReceive(recv_req(source, tag), source, tag)


def arrived(source, tag, protocol="eager"):
    return UnexpectedMessage(source, tag, 64, b"x", protocol)


# ---------------------------------------------------------------------------
# PostedQueue: wildcard receives matched in FIFO post order
# ---------------------------------------------------------------------------
def test_posted_wildcard_fifo_order():
    q = PostedQueue()
    first = posted(ANY_SOURCE, ANY_TAG)
    second = posted(ANY_SOURCE, ANY_TAG)
    q.post(first)
    q.post(second)
    entry, inspected = q.match_arrival(src=3, tag=9)
    assert entry is first and inspected == 1
    entry, inspected = q.match_arrival(src=0, tag=0)
    assert entry is second and inspected == 1
    assert len(q) == 0


def test_posted_earlier_wildcard_beats_later_specific():
    """MPI matches the *first posted* receive, not the best-fitting one —
    the nondeterminism the wildcard-order sanitizer rule warns about."""
    q = PostedQueue()
    wild = posted(ANY_SOURCE, 7)
    exact = posted(2, 7)
    q.post(wild)
    q.post(exact)
    entry, _ = q.match_arrival(src=2, tag=7)
    assert entry is wild
    entry, _ = q.match_arrival(src=2, tag=7)
    assert entry is exact


def test_posted_specific_source_skips_nonmatching():
    q = PostedQueue()
    q.post(posted(0, 5))
    q.post(posted(1, 5))
    q.post(posted(2, 5))
    entry, inspected = q.match_arrival(src=2, tag=5)
    assert entry.source == 2
    assert inspected == 3       # traversed the whole list to find it
    entry, inspected = q.match_arrival(src=9, tag=9)
    assert entry is None and inspected == 2


def test_posted_any_tag_respects_source():
    q = PostedQueue()
    q.post(posted(0, ANY_TAG))
    entry, _ = q.match_arrival(src=1, tag=3)
    assert entry is None
    entry, _ = q.match_arrival(src=0, tag=3)
    assert entry is not None


def test_posted_cancel_and_items_snapshot():
    q = PostedQueue()
    a, b = posted(0, 1), posted(0, 2)
    q.post(a)
    q.post(b)
    snapshot = q.items
    assert [e.tag for e in snapshot] == [1, 2]
    assert q.cancel(a.req) is True
    assert a.req.cancelled
    assert q.cancel(a.req) is False      # already gone
    # The snapshot is a copy: the cancel did not mutate it.
    assert [e.tag for e in snapshot] == [1, 2]
    assert [e.tag for e in q.items] == [2]


def test_posted_max_length_tracks_high_water():
    q = PostedQueue()
    for i in range(5):
        q.post(posted(0, i))
    q.match_arrival(src=0, tag=0)
    assert len(q) == 4
    assert q.max_length == 5


# ---------------------------------------------------------------------------
# UnexpectedQueue: FIFO arrivals, probe semantics
# ---------------------------------------------------------------------------
def test_unexpected_wildcard_receive_takes_oldest():
    q = UnexpectedQueue()
    q.add(arrived(2, 9))
    q.add(arrived(0, 9))
    q.add(arrived(1, 9))
    msg, inspected = q.match_receive(ANY_SOURCE, 9)
    assert msg.source == 2 and inspected == 1
    msg, _ = q.match_receive(ANY_SOURCE, ANY_TAG)
    assert msg.source == 0


def test_unexpected_fifo_per_source_tag_pair():
    """Two messages with the same (source, tag) must match in send order."""
    q = UnexpectedQueue()
    first = arrived(0, 5)
    second = arrived(0, 5)
    q.add(first)
    q.add(second)
    msg, _ = q.match_receive(0, 5)
    assert msg is first
    msg, _ = q.match_receive(0, 5)
    assert msg is second


def test_unexpected_specific_receive_skips_and_counts():
    q = UnexpectedQueue()
    q.add(arrived(0, 1))
    q.add(arrived(0, 2))
    q.add(arrived(1, 3))
    msg, inspected = q.match_receive(1, 3)
    assert msg.source == 1 and inspected == 3
    msg, inspected = q.match_receive(5, 5)
    assert msg is None and inspected == 2


def test_unexpected_probe_does_not_consume():
    q = UnexpectedQueue()
    q.add(arrived(0, 1))
    msg, _ = q.match_receive(ANY_SOURCE, ANY_TAG, remove=False)
    assert msg is not None
    assert len(q) == 1
    msg, _ = q.match_receive(ANY_SOURCE, ANY_TAG)
    assert msg is not None
    assert len(q) == 0


# ---------------------------------------------------------------------------
# PacketPool: exhaustion -> recycle -> reuse, sanitizer armed throughout
# ---------------------------------------------------------------------------
def make_pool(size, rx_reserve=0, local_cache=None):
    env = Environment()
    kwargs = {}
    if local_cache is not None:
        kwargs["local_cache_packets"] = local_cache
    pool = PacketPool(
        env, stampede2().cpu, size=size, packet_data_bytes=1024,
        rx_reserve=rx_reserve, **kwargs,
    )
    ctx = SanitizerContext("warn", env=env)
    pool.sanitizer = LciSanitizer(ctx, host=0)
    return env, pool, ctx


def drive(env, gen):
    return env.run_process(env.process(gen))


def test_pool_exhaust_recycle_reuse_cycle_is_clean():
    env, pool, ctx = make_pool(size=2)

    def cycle(env):
        out = []
        for _ in range(3):                      # repeat the full cycle
            out.append((yield from pool.alloc()))   # 2 -> 1
            out.append((yield from pool.alloc()))   # 1 -> 0 (exhausted)
            out.append((yield from pool.alloc()))   # fails
            yield from pool.free()                  # recycle
            yield from pool.free()
            out.append((yield from pool.alloc()))   # reuse works again
            yield from pool.free()
        return out

    results = drive(env, cycle(env))
    assert results == [True, True, False, True] * 3
    assert pool.in_use == 0
    assert len(ctx) == 0


def test_pool_local_cache_hit_then_steal_path():
    env, pool, ctx = make_pool(size=4, local_cache=4)
    t1, t2 = object(), object()

    def cycle(env):
        # t1 drains the shared pool...
        for _ in range(4):
            assert (yield from pool.alloc(t1))
        # ...returns two budgets to its private cache...
        yield from pool.free(t1)
        yield from pool.free(t1)
        assert pool.free_packets == 2
        # ...so t1 re-allocs hit the local cache, no shared-pool traffic.
        assert (yield from pool.alloc(t1))
        # t2 sees an empty shared pool and must steal from t1's cache.
        assert (yield from pool.alloc(t2))
        assert pool.stats.counter_value("alloc_steals") == 1
        # Everything accounted for: 4 in use, none free anywhere.
        assert pool.free_packets == 0
        assert not (yield from pool.alloc(t2))
        for _ in range(4):
            yield from pool.free()

    drive(env, cycle(env))
    assert pool.in_use == 0
    assert len(ctx) == 0


def test_pool_send_side_steal_honors_rx_reserve():
    env, pool, ctx = make_pool(size=4, rx_reserve=2, local_cache=4)
    t1 = object()

    def cycle(env):
        # Sends may take the pool down to the reserve only.
        assert (yield from pool.alloc(t1))
        assert (yield from pool.alloc(t1))
        assert not (yield from pool.alloc(t1))
        # Free one into t1's private cache: total free is 3, but a
        # send-side steal would cut into the receive reserve... no:
        # 3 > rx_reserve, so exactly one more send steal is legal.
        yield from pool.free(t1)
        assert (yield from pool.alloc(object()))  # steals from t1's cache
        # Now total free == 2 == reserve: send-side allocs fail even
        # though the shared count is at the floor and caches are empty,
        # while receive-side allocs may continue.
        assert not (yield from pool.alloc(object()))
        assert (yield from pool.alloc(for_recv=True))
        assert (yield from pool.alloc(for_recv=True))
        assert not (yield from pool.alloc(for_recv=True))
        for _ in range(4):
            yield from pool.free()

    drive(env, cycle(env))
    assert len(ctx) == 0


def test_pool_planted_leak_caught_after_reuse_cycle():
    env, pool, ctx = make_pool(size=3)

    def cycle(env):
        # A healthy exhaustion/recycle round first...
        for _ in range(3):
            yield from pool.alloc()
        for _ in range(3):
            yield from pool.free()
        # ...then the planted bug: one budget checked out, never freed.
        yield from pool.alloc()

    drive(env, cycle(env))
    pool.sanitizer.check_shutdown(pool)
    leaks = ctx.by_rule("lci.packet_leak")
    assert len(leaks) == 1
    assert leaks[0].details["leaked"] == 1


def test_pool_planted_double_free_caught():
    env, pool, ctx = make_pool(size=2)

    def cycle(env):
        yield from pool.alloc()
        yield from pool.free()
        yield from pool.free()      # planted: the same budget again

    drive(env, cycle(env))
    assert ctx.summary() == {"lci.pool_double_free": 1}


def test_pool_free_into_full_local_cache_overflows_to_shared():
    env, pool, ctx = make_pool(size=3, local_cache=1)
    t1 = object()

    def cycle(env):
        for _ in range(3):
            assert (yield from pool.alloc(t1))
        yield from pool.free(t1)        # fills the 1-slot cache
        yield from pool.free(t1)        # overflows to the shared pool
        assert pool.free_packets == 2
        assert (yield from pool.alloc())    # shared-pool hit
        yield from pool.free()
        yield from pool.free()

    drive(env, cycle(env))
    assert pool.in_use == 0
    assert len(ctx) == 0


def test_pool_wait_available_wakes_on_free():
    env, pool, ctx = make_pool(size=1)
    order = []

    def holder(env):
        yield from pool.alloc()
        yield env.timeout(5.0)
        yield from pool.free()
        order.append(("freed", env.now))

    def waiter(env):
        yield env.timeout(1.0)
        ok = yield from pool.alloc()
        assert not ok                   # exhausted: non-blocking fail
        yield pool.wait_available()
        order.append(("woken", env.now))
        assert (yield from pool.alloc())
        yield from pool.free()

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert [tag for tag, _ in order] == ["freed", "woken"]
    assert order[1][1] >= 5.0
    assert len(ctx) == 0


def test_pool_reuse_double_retire_is_noop():
    # With descriptor reuse armed, retiring the same descriptor twice
    # must not put its slot on the free list twice — that would hand the
    # same resident Packet object out as two concurrently-live packets.
    env = Environment()
    pool = PacketPool(env, stampede2().cpu, size=2, packet_data_bytes=1024)
    pool.enable_packet_reuse()

    a = pool.make_packet(PacketType.EGR, src=0, dst=1, tag=7, size=64)
    slot_a = a.slot
    assert slot_a >= 0
    pool.retire(a)
    assert a.slot == -1                  # parked: marked free
    pool.retire(a)                       # double retire: no-op
    assert pool._free_idx.count(slot_a) == 1

    # The slot comes back exactly once, re-stamped for the next packet.
    b = pool.make_packet(PacketType.EGR, src=1, dst=0, tag=8, size=32)
    assert b is a and b.slot == slot_a
    c = pool.make_packet(PacketType.EGR, src=0, dst=1, tag=9, size=16)
    assert c is not b
