"""Tests for repro.obs: lifecycle tracing, probes, critical path, exporters.

The load-bearing guarantees pinned here:

* installing an :class:`ObsContext` leaves ``RunMetrics`` bit-identical
  (pure observation);
* per-message stage durations telescope to exactly the end-to-end
  latency (the critical-path analyzer's core invariant);
* the per-protocol chains match the paper's narrative — MPI-Probe
  messages accrue ``match_wait`` (two-sided matching), LCI eager sends
  never do;
* exporters produce documents their validators accept.
"""

import json
import os

import pytest

from repro.bench.scenarios import Scenario, build_engine
from repro.obs import (
    ObsConfig,
    ObsContext,
    build_timelines,
    explain_report,
    load_timeline,
    round_attribution,
    save_prometheus,
    save_timeline,
    slowest,
    stage_attribution,
    stall_attribution,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
    validate_prometheus,
    validate_timeline,
)

LAYERS = ("lci", "mpi-probe", "mpi-rma")


def bfs8(layer: str) -> Scenario:
    """BFS on 8 hosts — the acceptance-criteria scenario."""
    return Scenario(app="bfs", graph="rmat", scale=8, hosts=8, layer=layer)


@pytest.fixture(scope="module")
def traced_runs():
    """One obs-instrumented run per layer (module-cached: runs are slow)."""
    out = {}
    for layer in LAYERS:
        plain = build_engine(bfs8(layer)).run()
        obs = ObsContext()
        metrics = build_engine(bfs8(layer), obs=obs).run()
        out[layer] = (plain, metrics, obs)
    return out


# ---------------------------------------------------------------------------
# Bit-identical guarantee
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_obs_leaves_run_metrics_bit_identical(traced_runs, layer):
    plain, traced, _obs = traced_runs[layer]
    assert traced.total_seconds == plain.total_seconds
    assert traced.rounds == plain.rounds
    assert traced.blobs_sent == plain.blobs_sent
    assert traced.updates_shipped == plain.updates_shipped
    assert traced.compute_per_round == plain.compute_per_round
    assert traced.row() == plain.row()


# ---------------------------------------------------------------------------
# Telescoping invariant + per-protocol chains
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_stage_durations_sum_to_end_to_end_latency(traced_runs, layer):
    _plain, _m, obs = traced_runs[layer]
    timelines = build_timelines(obs)
    assert timelines, "run produced no traced messages"
    for tl in timelines:
        total = sum(dur for _stage, dur in tl.stage_durations())
        assert total == pytest.approx(tl.latency, abs=1e-12), tl.trace
        # Events never run backwards in time.
        ts = [t for _s, _h, t, _a in tl.events]
        assert ts == sorted(ts)


def test_mpi_probe_accrues_match_wait_lci_eager_does_not(traced_runs):
    _p, _m, probe_obs = traced_runs["mpi-probe"]
    att = stage_attribution(build_timelines(probe_obs))
    assert att["mpi-probe"].get("match_wait", 0.0) > 0.0

    _p, _m, lci_obs = traced_runs["lci"]
    att = stage_attribution(build_timelines(lci_obs))
    assert att["lci"].get("match_wait", 0.0) == 0.0
    # LCI eager messages park in the MPMC queue instead.
    assert att["lci"].get("queue_wait", 0.0) > 0.0


def test_lci_eager_chain_order(traced_runs):
    _p, _m, obs = traced_runs["lci"]
    for tl in build_timelines(obs):
        stages = [s for s, _h, _t, _a in tl.events]
        if "complete" not in stages:
            continue
        # Eager chain: the canonical order, no matching stages.
        assert "match_wait" not in stages
        assert stages.index("api") < stages.index("lib")
        assert stages.index("lib") < stages.index("inject")
        assert stages.index("inject") < stages.index("rx")
        assert stages[-1] == "complete"


def test_rma_puts_accrue_epoch_wait(traced_runs):
    _p, _m, obs = traced_runs["mpi-rma"]
    att = stage_attribution(build_timelines(obs))
    assert att["mpi-rma"].get("epoch_wait", 0.0) > 0.0
    # One-sided: no matching engine, no receive queue involved.
    assert "match_wait" not in att["mpi-rma"]
    assert "queue_wait" not in att["mpi-rma"]


def test_rma_records_epoch_stalls(traced_runs):
    _p, _m, obs = traced_runs["mpi-rma"]
    kinds = {s.kind for s in obs.stalls}
    assert kinds & {
        "epoch_start_wait", "epoch_flush_wait",
        "epoch_close_wait", "epoch_collect_wait",
    }
    for s in obs.stalls:
        assert s.end > s.start


def test_round_attribution_recovers_phases(traced_runs):
    _p, metrics, obs = traced_runs["lci"]
    per_round = round_attribution(build_timelines(obs))
    rounds = {rnd for (_l, rnd, _pat) in per_round if rnd is not None}
    patterns = {pat for (_l, _r, pat) in per_round if pat is not None}
    assert rounds == set(range(metrics.rounds))
    assert patterns == {"reduce", "bcast"}


def test_trace_ids_are_deterministic(traced_runs):
    _p, _m, obs = traced_runs["lci"]
    obs2 = ObsContext()
    build_engine(bfs8("lci"), obs=obs2).run()
    ids = [ev.trace for ev in obs.events]
    assert ids == [ev.trace for ev in obs2.events]
    assert [ev.t for ev in obs.events] == [ev.t for ev in obs2.events]


# ---------------------------------------------------------------------------
# Probes and sampler
# ---------------------------------------------------------------------------
def test_sampler_populates_queue_probes(traced_runs):
    _p, metrics, obs = traced_runs["lci"]
    series = obs.series("lci.pool_free", 0)
    assert series is not None and len(series) > 0
    # Pool starts full; every sample is a sane occupancy reading.
    assert all(v >= 0 for v in series.values)
    # Samples tick on the configured period, starting at t=0; the
    # sampler self-stops within one period of the last protocol event.
    period = obs.config.sample_period
    assert series.times == [i * period for i in range(len(series))]
    assert max(series.times) <= metrics.total_seconds + period


def test_mpi_probe_registers_matching_probes(traced_runs):
    _p, _m, obs = traced_runs["mpi-probe"]
    names = {name for (name, _host) in obs.samples}
    assert "mpi.unexpected_depth" in names
    assert "mpi.posted_depth" in names
    assert "nic.rx_depth" in names


def test_sampler_disabled_records_nothing():
    obs = ObsContext(ObsConfig(sample_period=0.0))
    build_engine(bfs8("lci"), obs=obs).run()
    assert all(len(s) == 0 for s in obs.samples.values())
    assert len(obs.events) > 0  # tracing still on


def test_trace_messages_off_keeps_probes():
    obs = ObsContext(ObsConfig(trace_messages=False))
    build_engine(bfs8("lci"), obs=obs).run()
    assert obs.events == []
    assert any(len(s) > 0 for s in obs.samples.values())


def test_register_probe_replaces_reader_keeps_series():
    obs = ObsContext(ObsConfig(sample_period=0.0))
    obs.register_probe("q", 0, lambda: 1)
    obs.sample_once()
    first = obs.series("q", 0)
    obs.register_probe("q", 0, lambda: 2)
    obs.sample_once()
    assert obs.series("q", 0) is first
    assert first.values == [1, 2]


# ---------------------------------------------------------------------------
# Exporters + validators
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layer", LAYERS)
def test_exports_pass_validators(traced_runs, layer, tmp_path):
    _p, metrics, obs = traced_runs[layer]
    timeline = obs.as_timeline(meta={
        "total_seconds": metrics.total_seconds,
        "rounds": metrics.rounds,
    })
    assert validate_timeline(timeline) == []
    assert validate_chrome_trace(to_chrome_trace(timeline)) == []
    assert validate_prometheus(to_prometheus(timeline)) == []


def test_timeline_round_trips_through_disk(traced_runs, tmp_path):
    _p, _m, obs = traced_runs["lci"]
    timeline = obs.as_timeline(meta={"scenario": "t"})
    path = str(tmp_path / "obs.json")
    save_timeline(path, timeline)
    loaded = load_timeline(path)
    assert loaded == json.loads(json.dumps(timeline))
    assert build_timelines(loaded)[0].latency == pytest.approx(
        build_timelines(timeline)[0].latency
    )
    # Atomic write leaves no temp droppings.
    assert os.listdir(tmp_path) == ["obs.json"]


def test_chrome_trace_has_cross_host_flow_arrows(traced_runs):
    _p, _m, obs = traced_runs["lci"]
    doc = to_chrome_trace(obs.as_timeline())
    phases = [e["ph"] for e in doc["traceEvents"]]
    assert "s" in phases and "f" in phases
    starts = {e["id"] for e in doc["traceEvents"] if e["ph"] == "s"}
    finishes = {e["id"] for e in doc["traceEvents"] if e["ph"] == "f"}
    assert starts == finishes and starts
    # Metadata rows are stable and sorted per host.
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {m["name"] for m in meta} == {
        "process_name", "process_sort_index"
    }


def test_prometheus_export_content(traced_runs, tmp_path):
    _p, metrics, obs = traced_runs["mpi-probe"]
    timeline = obs.as_timeline(meta={"total_seconds": metrics.total_seconds})
    text = to_prometheus(timeline)
    assert 'repro_obs_stage_seconds_total{layer="mpi-probe",stage="match_wait"}' in text
    assert 'repro_obs_messages_total{layer="mpi-probe"}' in text
    assert "repro_run_total_seconds" in text
    assert text.endswith("\n")
    path = str(tmp_path / "m.prom")
    save_prometheus(path, timeline)
    with open(path) as f:
        assert f.read() == text


def test_validators_reject_malformed_documents():
    assert validate_timeline({"kind": "nope"}) != []
    bad_stage = {
        "version": 1, "kind": "repro-obs-timeline", "meta": {},
        "columns": ["trace", "stage", "host", "t", "args"],
        "events": [["t:0>1:0", "warp", 0, 0.0, {}]],
        "samples": [], "stalls": [],
    }
    assert any("warp" in e for e in validate_timeline(bad_stage))
    assert validate_chrome_trace({"traceEvents": [{"ph": "s", "id": 7}]}) != []
    assert validate_prometheus("repro total\n") != []
    assert validate_prometheus("x 1")  # missing trailing newline


# ---------------------------------------------------------------------------
# Critical-path analysis / explain
# ---------------------------------------------------------------------------
def test_slowest_orders_by_latency(traced_runs):
    _p, _m, obs = traced_runs["lci"]
    worst = slowest(build_timelines(obs), n=3)
    assert len(worst) == 3
    lats = [tl.latency for tl in worst]
    assert lats == sorted(lats, reverse=True)


def test_stall_attribution_totals():
    rows = [[0, "pool_wait", 1.0, 3.0], [1, "pool_wait", 0.0, 0.5]]
    assert stall_attribution(rows) == {"pool_wait": pytest.approx(2.5)}


def test_explain_report_renders_stage_table(traced_runs):
    _p, metrics, obs = traced_runs["mpi-probe"]
    timeline = obs.as_timeline(meta={"total_seconds": metrics.total_seconds})
    report = explain_report(timeline, top=3, per_round=True)
    assert "stage attribution" in report
    assert "match_wait" in report
    assert "slowest 3 messages" in report
    assert "per-round dominant stages" in report
    assert "probe peaks" in report


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
def test_cli_run_obs_and_explain(tmp_path, capsys):
    from repro.cli import main

    obs_path = str(tmp_path / "obs.json")
    chrome = str(tmp_path / "c.json")
    prom = str(tmp_path / "m.prom")
    rc = main([
        "run", "--app", "bfs", "--graph", "rmat", "--scale", "8",
        "--hosts", "8", "--layer", "mpi-probe",
        "--obs", obs_path, "--obs-chrome", chrome, "--obs-prom", prom,
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "stage attribution" in out
    with open(chrome) as f:
        assert validate_chrome_trace(json.load(f)) == []
    with open(prom) as f:
        assert validate_prometheus(f.read()) == []

    rc = main(["explain", obs_path, "--check", "--per-round"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "match_wait" in out
    assert "traced messages" in out


def test_cli_explain_rejects_garbage(tmp_path, capsys):
    from repro.cli import main

    path = str(tmp_path / "bad.json")
    with open(path, "w") as f:
        json.dump({"kind": "not-a-timeline"}, f)
    rc = main(["explain", path, "--check"])
    assert rc == 1
    assert "invalid timeline" in capsys.readouterr().err


def test_cli_chaos_obs(tmp_path, capsys):
    from repro.cli import main

    obs_path = str(tmp_path / "chaos-obs.json")
    rc = main([
        "chaos", "--plan", "flaky-link", "--layer", "lci",
        "--scale", "8", "--hosts", "4", "--obs", obs_path,
    ])
    assert rc == 0
    timeline = load_timeline(obs_path)
    assert validate_timeline(timeline) == []
    assert timeline["meta"]["plan"] == "flaky-link"
    # The fault plan drops packets; the obs stream records the loss.
    stages = {row[1] for row in timeline["events"]}
    assert "dropped" in stages
