"""The serve layer: batched execution equivalence, cache, admission.

The load-bearing assertion is **batched-vs-sequential bit-identity**:
a multi-source batch's per-column answer must exactly equal the answer
of running that query alone — for the integer min programs (BFS, SSSP)
and for float personalized PageRank (fixed rounds + ordered scatter),
with and without an active fault plan.
"""

import json

import numpy as np
import pytest

from repro.bench.scenarios import cached_graph
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    Query,
    ResultCache,
    ServeConfig,
    ServeEngine,
    TapeSpec,
    generate_tape,
    make_batched_program,
)
from repro.serve.programs import (
    MultiSourceBfs,
    MultiSourcePageRank,
    MultiSourceSssp,
)

SCALE = 8
HOSTS = 4


def serve_config(**kw):
    base = dict(scale=SCALE, hosts=HOSTS, layer="lci", max_batch=8,
                ppr_rounds=5)
    base.update(kw)
    return ServeConfig(**base)


def solo_answer(kind, source, config):
    """The query's answer when it is the only thing the service runs."""
    eng = ServeEngine(config)
    res = eng.drain([Query(qid=0, kind=kind, source=source)]).results[0]
    assert res.status == "ok"
    return res.answer


# ----------------------------------------------------------------------
# Batched-vs-sequential equivalence (the acceptance bit-identity gate)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["bfs", "sssp", "ppr"])
def test_batched_matches_sequential_bitwise(kind):
    config = serve_config()
    sources = [3, 59, 140, 201]
    eng = ServeEngine(config)
    batched = eng.drain([
        Query(qid=i, kind=kind, source=s) for i, s in enumerate(sources)
    ])
    assert [b["size"] for b in eng.batch_log] == [len(sources)]
    for i, s in enumerate(sources):
        got = batched.results[i].answer
        want = solo_answer(kind, s, config)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want), f"{kind} source {s} diverged"


@pytest.mark.parametrize("layer", ["lci", "mpi-probe", "mpi-rma"])
def test_ppr_bit_identity_across_layers(layer):
    """Float batching must be schedule-independent on every layer."""
    config = serve_config(layer=layer)
    sources = [7, 33, 180]
    eng = ServeEngine(config)
    batched = eng.drain([
        Query(qid=i, kind="ppr", source=s) for i, s in enumerate(sources)
    ])
    for i, s in enumerate(sources):
        want = solo_answer("ppr", s, config)
        assert np.array_equal(batched.results[i].answer, want)


def test_batched_matches_sequential_under_faults():
    """Equivalence holds while LCI's recovery protocol absorbs drops."""
    config = serve_config(fault_plan="drop-5pct")
    clean = serve_config()
    sources = [11, 87, 222]
    for kind in ("bfs", "sssp", "ppr"):
        eng = ServeEngine(config)
        batched = eng.drain([
            Query(qid=i, kind=kind, source=s)
            for i, s in enumerate(sources)
        ])
        for i, s in enumerate(sources):
            res = batched.results[i]
            assert res.status == "ok"
            want = solo_answer(kind, s, clean)
            assert np.array_equal(res.answer, want), (kind, s)


def test_batched_answers_match_references():
    graph = cached_graph("rmat", SCALE, 1, True)
    sources = (5, 100, 200)
    for app in (MultiSourceBfs(sources), MultiSourceSssp(sources)):
        eng = ServeEngine(serve_config())
        rep = eng.drain([
            Query(qid=i, kind=app.name.split("-")[0], source=s)
            for i, s in enumerate(sources)
        ])
        ref = app.reference(graph)
        for i in range(len(sources)):
            assert np.array_equal(rep.results[i].answer, ref[:, i])
    ppr = MultiSourcePageRank(sources, rounds=5)
    eng = ServeEngine(serve_config())
    rep = eng.drain([
        Query(qid=i, kind="ppr", source=s) for i, s in enumerate(sources)
    ])
    ref = ppr.reference(graph)
    for i in range(len(sources)):
        assert np.allclose(rep.results[i].answer, ref[:, i],
                           rtol=1e-9, atol=1e-12)


def test_kcore_same_k_share_one_execution():
    eng = ServeEngine(serve_config())
    rep = eng.drain([
        Query(qid=0, kind="kcore", source=4, k=2),
        Query(qid=1, kind="kcore", source=9, k=2),
        Query(qid=2, kind="kcore", source=9, k=3),
    ])
    ok = {r.query.qid: r for r in rep.results}
    # Same k rides one batch; different k needs its own.
    assert ok[0].batch_id == ok[1].batch_id
    assert ok[2].batch_id != ok[0].batch_id
    assert np.array_equal(ok[0].answer, ok[1].answer)


# ----------------------------------------------------------------------
# Cache behavior
# ----------------------------------------------------------------------
def test_cache_hit_and_version_invalidation():
    eng = ServeEngine(serve_config())
    first = eng.drain([Query(qid=0, kind="bfs", source=17)])
    assert first.results[0].cache_hit is False
    second = eng.drain([Query(qid=1, kind="bfs", source=17)])
    assert second.results[0].cache_hit is True
    assert np.array_equal(second.results[0].answer,
                          first.results[0].answer)
    eng.bump_graph_version()
    third = eng.drain([Query(qid=2, kind="bfs", source=17)])
    assert third.results[0].cache_hit is False
    assert third.results[0].graph_version == 1


def test_result_cache_lru_and_stats():
    cache = ResultCache(capacity=2)
    a, b, c = (np.arange(3), np.arange(3) + 1, np.arange(3) + 2)
    cache.put(0, ("bfs", 1), a)
    cache.put(0, ("bfs", 2), b)
    assert cache.get(0, ("bfs", 1)) is a      # 1 now most recent
    cache.put(0, ("bfs", 3), c)               # evicts 2
    assert cache.get(0, ("bfs", 2)) is None
    assert cache.get(0, ("bfs", 1)) is a
    assert cache.evictions == 1
    assert cache.invalidate_before(1) == 2
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_admission_rejects_past_max_pending():
    ctrl = AdmissionController(AdmissionConfig(max_pending=2))
    assert ctrl.admit(0) == (True, "")
    assert ctrl.admit(1) == (True, "")
    admitted, reason = ctrl.admit(2)
    assert not admitted and "queue full" in reason
    assert ctrl.rejected_depth == 1


def test_admission_saturation_gate_needs_backlog():
    cfg = AdmissionConfig(saturation_threshold=0.5,
                          saturation_min_pending=4)
    ctrl = AdmissionController(cfg)
    ctrl.observe_batch(1.0, 0.9)     # 90% comm fraction
    assert ctrl.admit(2)[0]          # below min backlog: admitted
    admitted, reason = ctrl.admit(4)
    assert not admitted and "saturated" in reason


def test_service_rejects_under_pressure_deterministically():
    config = serve_config(
        admission=AdmissionConfig(max_pending=4),
    )
    qs = [Query(qid=i, kind="bfs", source=i * 3 + 1, arrival=0.0)
          for i in range(10)]
    rep1 = ServeEngine(config).drain(list(qs))
    rep2 = ServeEngine(config).drain(list(qs))
    rejected1 = [r.query.qid for r in rep1.results
                 if r.status == "rejected"]
    rejected2 = [r.query.qid for r in rep2.results
                 if r.status == "rejected"]
    assert rejected1 == rejected2
    assert len(rejected1) == 6       # 4 admitted at t=0, the rest shed
    for r in rep1.results:
        if r.status == "rejected":
            assert "queue full" in r.reason


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
def test_fault_hang_fails_only_the_batch():
    """MPI has no recovery protocol: a dropped packet hangs its batch;
    the service must fail those queries and keep serving the rest."""
    config = serve_config(layer="mpi-probe", fault_plan="drop-1pct")
    eng = ServeEngine(config)
    qs = [Query(qid=i, kind="bfs", source=i * 11 + 2, arrival=0.002 * i)
          for i in range(4)]
    rep = eng.drain(qs)
    statuses = {r.query.qid: r.status for r in rep.results}
    assert len(statuses) == 4
    assert "failed" in set(statuses.values())
    failed = [r for r in rep.results if r.status == "failed"]
    for r in failed:
        assert r.reason == "LostCompletionError"
    # The clock advanced past every failure and later queries were
    # still scheduled (served or failed — never silently lost).
    assert rep.clock > 0


def test_run_serve_chaos_reports_graceful():
    from repro.faults.harness import run_serve_chaos

    spec = TapeSpec(seed=3, num_queries=10, scale=SCALE, mean_gap=1e-4)
    report = run_serve_chaos(serve_config(), spec, "drop-5pct")
    assert report.graceful
    assert report.baseline_counts.get("ok") == 10
    assert report.answer_mismatches == 0


# ----------------------------------------------------------------------
# Lint coverage + CLI smoke
# ----------------------------------------------------------------------
def test_lint_covers_serve_package():
    from repro.sanitize.lint import (
        ORDER_SENSITIVE_DIRS,
        is_order_sensitive,
        lint_paths,
        repo_package_root,
    )

    assert "serve" in ORDER_SENSITIVE_DIRS
    assert is_order_sensitive("src/repro/serve/engine.py")
    serve_dir = repo_package_root() / "serve"
    result = lint_paths([serve_dir])
    assert result.files_checked >= 7
    assert result.findings == []


def test_cli_serve_smoke(tmp_path, capsys):
    from repro.cli import main

    report_path = tmp_path / "report.json"
    tape_path = tmp_path / "tape.json"
    rc = main([
        "serve", "--scale", str(SCALE), "--hosts", "4", "--layer", "lci",
        "--tape-queries", "6", "--tape-gap", "0.0001",
        "--sanitize", "--report", str(report_path),
        "--save-tape", str(tape_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "queries" in out and "latency" in out
    doc = json.loads(report_path.read_text())
    for field in ("p50_us", "p95_us", "p99_us"):
        assert field in doc["latency"]
    assert "queries_per_sec" in doc["throughput"]
    # The saved tape replays cleanly.
    rc = main([
        "serve", "--scale", str(SCALE), "--hosts", "4",
        "--tape", str(tape_path),
    ])
    assert rc == 0


def test_cli_bench_serve_check_detects_drift(tmp_path):
    from repro.bench.serve_bench import (
        bench_doc_to_json,
        compare_bench_docs,
    )

    doc = {"format": "repro-bench-serve/v1",
           "serve": {"throughput": {"queries_per_sec": 10.0}}}
    same = json.loads(bench_doc_to_json(doc))
    assert compare_bench_docs(doc, same) == []
    drifted = {"format": "repro-bench-serve/v1",
               "serve": {"throughput": {"queries_per_sec": 11.0}}}
    diffs = compare_bench_docs(doc, drifted)
    assert diffs and "queries_per_sec" in diffs[0]


# ----------------------------------------------------------------------
# Programs: validation edges
# ----------------------------------------------------------------------
def test_batched_program_factory_validation():
    with pytest.raises(ValueError):
        make_batched_program("nope", (1,))
    with pytest.raises(ValueError):
        MultiSourceBfs(())
    with pytest.raises(ValueError):
        MultiSourcePageRank((1,), rounds=0)
    app = make_batched_program("bfs", (1, 2, 3))
    assert app.field_bytes == 24


def test_query_validation_and_roundtrip():
    with pytest.raises(ValueError):
        Query(qid=0, kind="dijkstra", source=1)
    q = Query(qid=3, kind="kcore", source=7, arrival=0.5, k=4)
    assert Query.from_row(q.as_row()) == q
    assert q.cache_key() == ("kcore", 4)
    assert q.batch_key() == ("kcore", 4)
    assert Query(qid=0, kind="bfs", source=9).batch_key() == ("bfs",)


def test_tape_generator_respects_spec():
    spec = TapeSpec(seed=11, num_queries=25, scale=6,
                    mix=(("bfs", 1.0),), k_choices=(3,))
    tape = generate_tape(spec)
    assert len(tape) == 25
    assert all(q.kind == "bfs" for q in tape)
    assert all(0 <= q.source < 64 for q in tape)
    arrivals = [q.arrival for q in tape]
    assert arrivals == sorted(arrivals)
    assert all(a > 0 for a in arrivals)
