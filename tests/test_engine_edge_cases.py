"""Engine robustness: degenerate graphs, odd host counts, empty work."""

import numpy as np

from repro.apps import Bfs, PageRank
from repro.engine import BspEngine, EngineConfig
from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat


def run(graph, app, hosts=2, layer="lci", policy="cvc", **cfg_kw):
    cfg = EngineConfig(num_hosts=hosts, policy=policy, layer=layer, **cfg_kw)
    eng = BspEngine(graph, app, cfg)
    return eng, eng.run()


def test_edgeless_graph():
    g = CsrGraph(np.zeros(9, dtype=np.int64), np.array([], dtype=np.int64),
                 8, name="isolated")
    app = Bfs(source=3)
    eng, m = run(g, app, hosts=2)
    result = eng.assemble_global()
    assert result[3] == 0
    assert all(result[i] >= 2**62 for i in range(8) if i != 3)
    assert m.rounds >= 1


def test_single_node_graph():
    g = CsrGraph(np.array([0, 0]), np.array([], dtype=np.int64), 1)
    eng, _ = run(g, Bfs(source=0), hosts=1)
    assert list(eng.assemble_global()) == [0]


def test_more_hosts_than_busy_partitions():
    """Hosts with empty partitions must still participate correctly."""
    g = CsrGraph.from_edges(np.array([0, 1]), np.array([1, 2]), 3)
    app = Bfs(source=0)
    eng, m = run(g, app, hosts=7)  # far more hosts than edges
    assert np.array_equal(eng.assemble_global(), app.reference(g))


def test_prime_host_count_cvc_grid():
    g = rmat(7, seed=3)
    app = Bfs(source=0)
    eng, _ = run(g, app, hosts=5, policy="cvc")  # grid 1 x 5
    assert np.array_equal(eng.assemble_global(), app.reference(g))


def test_source_with_no_out_edges():
    g = rmat(7, seed=3)
    sink = int(np.argmin(g.out_degree()))
    app = Bfs(source=sink)
    eng, m = run(g, app, hosts=3)
    assert np.array_equal(eng.assemble_global(), app.reference(g))
    assert m.rounds <= 3  # nothing to propagate beyond the source


def test_star_graph_hub_pressure():
    """Extreme skew: one hub with edges to everyone (clueweb-like)."""
    n = 200
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    g = CsrGraph.from_edges(src, dst, n, name="star")
    app = Bfs(source=0)
    eng, m = run(g, app, hosts=4)
    result = eng.assemble_global()
    assert result[0] == 0
    assert all(result[1:] == 1)


def test_two_phase_apps_on_two_hosts_star():
    n = 64
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    g = CsrGraph.from_edges(src, dst, n)
    app = PageRank(max_rounds=10, tol=1e-12)
    eng, m = run(g, app, hosts=2)
    got = eng.assemble_global()
    want = app.reference(g, rounds=m.rounds)
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_deterministic_repeat_runs():
    """Identical scenario twice: bit-identical results and timings."""
    g = rmat(8, edge_factor=8, seed=13)
    t, r = [], []
    for _ in range(2):
        app = Bfs(source=0)
        eng, m = run(g, app, hosts=4, layer="mpi-probe")
        t.append(m.total_seconds)
        r.append(eng.assemble_global())
    assert t[0] == t[1]
    assert np.array_equal(r[0], r[1])


def test_layers_agree_on_rounds():
    """The BSP round count is a property of the algorithm, not the layer."""
    g = rmat(8, edge_factor=8, seed=17)
    rounds = set()
    for layer in ("lci", "mpi-probe", "mpi-rma"):
        _, m = run(g, Bfs(source=0), hosts=4, layer=layer)
        rounds.add(m.rounds)
    assert len(rounds) == 1


def test_max_rounds_cap_halts():
    g = rmat(8, seed=1)
    app = PageRank(max_rounds=1000, tol=0.0)  # would run 1000 rounds
    eng, m = run(g, app, hosts=2, max_rounds=4)
    assert m.rounds == 4


def test_setup_time_excluded_from_total():
    g = rmat(8, seed=1)
    app = Bfs(source=0)
    eng, m = run(g, app, hosts=4, layer="mpi-rma")
    assert m.setup_seconds > 0  # window creation happened
    # total_seconds starts after setup (the paper excludes win creation)
    assert m.total_seconds < m.total_seconds + m.setup_seconds


def test_footprints_reported_per_host():
    g = rmat(8, seed=1)
    _, m = run(g, Bfs(source=0), hosts=5)
    assert len(m.footprint_per_host) == 5
    assert m.min_footprint <= m.max_footprint
