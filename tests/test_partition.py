"""Tests for partitioning: edge-cut, CVC, proxies, and sync metadata."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat
from repro.graph.partition import (
    blocked_edge_cut,
    cartesian_vertex_cut,
    grid_shape,
    make_partition,
)
from repro.graph.partition.edge_cut import balanced_node_blocks


def chain_graph(n=8):
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return CsrGraph.from_edges(src, dst, n, name="chain")


# ---------------------------------------------------------------------------
# Structural invariants shared by all policies
# ---------------------------------------------------------------------------
def check_partition_invariants(g, part):
    p = part.num_hosts
    # 1. every edge lands on exactly one host
    total_edges = sum(lg.num_edges for lg in part.locals)
    assert total_edges == g.num_edges
    # 2. every node has exactly one master (its owner's local graph)
    master_count = np.zeros(g.num_nodes, dtype=int)
    for lg in part.locals:
        masters = lg.global_ids[: lg.num_masters]
        master_count[masters] += 1
        # masters precede mirrors, each in ascending global order
        assert np.all(np.diff(masters) > 0) if len(masters) > 1 else True
        assert part.owner[masters].tolist() == [lg.host] * len(masters)
        mirrors = lg.global_ids[lg.num_masters:]
        if len(mirrors) > 1:
            assert np.all(np.diff(mirrors) > 0)
        assert all(part.owner[m] != lg.host for m in mirrors)
    assert np.all(master_count == 1)
    # 3. local CSR edges reproduce the global edge multiset
    rebuilt = []
    for lg in part.locals:
        ls = lg.edge_sources()
        for s, d in zip(lg.global_ids[ls], lg.global_ids[lg.indices]):
            rebuilt.append((int(s), int(d)))
    gsrc, gdst = g.edges()
    assert sorted(rebuilt) == sorted(zip(gsrc.tolist(), gdst.tolist()))
    # 4. sync pairs are aligned: same global node on both sides
    for pairs in (part.reduce_pairs, part.bcast_pairs):
        for (mh, ph), sp in pairs.items():
            assert sp.mirror_host == mh and sp.master_host == ph
            g_mirror = part.locals[mh].global_ids[sp.mirror_ids]
            g_master = part.locals[ph].global_ids[sp.master_ids]
            assert np.array_equal(g_mirror, g_master)
            # master side really is masters; mirror side really is mirrors
            assert np.all(sp.master_ids < part.locals[ph].num_masters)
            assert np.all(sp.mirror_ids >= part.locals[mh].num_masters)


@pytest.mark.parametrize("policy", ["edge-cut", "cvc"])
@pytest.mark.parametrize("hosts", [1, 2, 4, 6])
def test_partition_invariants_rmat(policy, hosts):
    g = rmat(8, edge_factor=8, seed=11)
    part = make_partition(g, hosts, policy)
    check_partition_invariants(g, part)


# ---------------------------------------------------------------------------
# Edge-cut specifics
# ---------------------------------------------------------------------------
def test_edge_cut_sources_always_local():
    """Gemini's policy: edge sources are masters, so no bcast pairs."""
    g = rmat(8, edge_factor=8, seed=11)
    part = blocked_edge_cut(g, 4)
    assert part.policy == "edge-cut"
    assert len(part.bcast_pairs) == 0
    assert len(part.reduce_pairs) > 0
    for lg in part.locals:
        srcs = lg.edge_sources()
        assert np.all(srcs < lg.num_masters)


def test_edge_cut_balances_edges():
    g = rmat(10, edge_factor=8, seed=11)
    part = blocked_edge_cut(g, 4)
    counts = [lg.num_edges for lg in part.locals]
    assert max(counts) < 2.5 * (sum(counts) / len(counts))


def test_balanced_node_blocks_contiguous():
    g = rmat(8, edge_factor=8, seed=1)
    owner = balanced_node_blocks(g, 5)
    assert np.all(np.diff(owner) >= 0)  # contiguous, non-decreasing
    assert owner.min() == 0 and owner.max() == 4


# ---------------------------------------------------------------------------
# CVC specifics
# ---------------------------------------------------------------------------
def test_grid_shape():
    assert grid_shape(1) == (1, 1)
    assert grid_shape(4) == (2, 2)
    assert grid_shape(6) == (2, 3)
    assert grid_shape(8) == (2, 4)
    assert grid_shape(16) == (4, 4)
    assert grid_shape(7) == (1, 7)


def test_cvc_limits_comm_partners():
    """CVC: hosts only talk within their grid row and column."""
    g = rmat(9, edge_factor=8, seed=11)
    hosts = 16
    part = cartesian_vertex_cut(g, hosts)
    rows, cols = part.grid
    assert rows == 4 and cols == 4
    for h in range(hosts):
        i, j = divmod(h, cols)
        allowed = {r * cols + j for r in range(rows)} | {
            i * cols + jj for jj in range(cols)
        }
        assert part.comm_partners(h) <= allowed


def test_cvc_reduce_in_columns_bcast_in_rows():
    g = rmat(9, edge_factor=8, seed=11)
    part = cartesian_vertex_cut(g, 16)
    rows, cols = part.grid
    for (mh, ph) in part.reduce_pairs:
        assert mh % cols == ph % cols, "reduce must stay within a column"
    for (mh, ph) in part.bcast_pairs:
        assert mh // cols == ph // cols, "broadcast must stay within a row"


def test_cvc_fewer_partners_than_edge_cut_at_scale():
    g = rmat(10, edge_factor=16, seed=11)
    hosts = 16
    cvc = cartesian_vertex_cut(g, hosts)
    ec = blocked_edge_cut(g, hosts)
    cvc_partners = np.mean([len(cvc.comm_partners(h)) for h in range(hosts)])
    ec_partners = np.mean([len(ec.comm_partners(h)) for h in range(hosts)])
    assert cvc_partners < ec_partners


def test_single_host_partition_has_no_comm():
    g = rmat(7, seed=1)
    for policy in ("edge-cut", "cvc"):
        part = make_partition(g, 1, policy)
        assert part.reduce_pairs == {}
        assert part.bcast_pairs == {}
        assert part.locals[0].num_mirrors == 0
        assert part.replication_factor() == 1.0


def test_unknown_policy_rejected():
    g = chain_graph()
    with pytest.raises(ValueError, match="unknown partition policy"):
        make_partition(g, 2, "metis")


@settings(max_examples=15, deadline=None)
@given(
    hosts=st.sampled_from([2, 3, 4, 6, 8]),
    seed=st.integers(0, 1000),
    policy=st.sampled_from(["edge-cut", "cvc"]),
)
def test_property_partition_invariants(hosts, seed, policy):
    g = rmat(6, edge_factor=6, seed=seed)
    part = make_partition(g, hosts, policy)
    check_partition_invariants(g, part)
