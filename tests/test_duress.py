"""Resilience under network duress: constrained TX queues and pools.

The paper's Section III-D: "LCI avoids fatal failures due to insufficient
network resources ... by allowing the upper layer to retry the operation
on such events."  These tests squeeze the simulated hardware (tiny NIC
TX queues, tiny packet pools) and verify every layer still computes the
right answer — with LCI's retries visible in its statistics rather than
hidden or fatal.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import Bfs, PageRank
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import rmat
from repro.lci.config import LciConfig
from repro.sim.machine import stampede2


def squeezed_machine(tx_depth=8, injection_rate=2e6):
    m = stampede2()
    return replace(
        m, nic=replace(m.nic, tx_queue_depth=tx_depth,
                       injection_rate=injection_rate),
    )


@pytest.mark.parametrize("layer", ["lci", "mpi-probe", "mpi-rma"])
def test_correct_under_tiny_tx_queue(layer):
    g = rmat(7, edge_factor=8, seed=31)
    app = Bfs(source=0)
    cfg = EngineConfig(
        num_hosts=4, layer=layer, machine=squeezed_machine(tx_depth=4),
    )
    eng = BspEngine(g, app, cfg)
    eng.run()
    assert np.array_equal(eng.assemble_global(), app.reference(g)), layer


def test_lci_correct_with_minimal_pool():
    g = rmat(7, edge_factor=8, seed=31)
    app = PageRank(max_rounds=5, tol=1e-12)
    cfg = EngineConfig(
        num_hosts=4, layer="lci",
        layer_kwargs={
            "lci_config": LciConfig(pool_packets_per_host=0,
                                    pool_packets_min=4)
        },
    )
    eng = BspEngine(g, app, cfg)
    m = eng.run()
    want = app.reference(g, rounds=m.rounds)
    np.testing.assert_allclose(eng.assemble_global(), want, rtol=1e-8)


def test_lci_surfaces_retries_nonfatally():
    """Duress shows up as retry/stall counters, never as an exception."""
    g = rmat(8, edge_factor=12, seed=31)
    app = PageRank(max_rounds=5, tol=1e-12)
    cfg = EngineConfig(
        num_hosts=8, layer="lci", machine=squeezed_machine(),
        layer_kwargs={
            # 3 packets, 2 receive-reserved: one send slot for parallel
            # senders -> guaranteed contention.
            "lci_config": LciConfig(pool_packets_per_host=0,
                                    pool_packets_min=3)
        },
    )
    eng = BspEngine(g, app, cfg)
    eng.run()
    pressure = sum(
        l.stats.counter_value("send_retries")
        + l.rt.stats.counter_value("server_pool_stalls")
        + l.rt.pool.stats.counter_value("alloc_failures")
        for l in eng.layers
    )
    assert pressure > 0, "expected visible back pressure under duress"


def _run_faulted(plan_name, seed=11):
    """One LCI PageRank run under a fault plan; returns (trace, metrics)."""
    from repro.faults import get_plan

    g = rmat(7, edge_factor=8, seed=31)
    app = PageRank(max_rounds=5, tol=1e-12)
    cfg = EngineConfig(
        num_hosts=4, layer="lci", fault_plan=get_plan(plan_name, seed),
    )
    eng = BspEngine(g, app, cfg)
    m = eng.run()
    return eng.injector.trace, m


def test_fault_trace_determinism():
    """Same scenario + same FaultPlan seed => byte-identical fault traces
    and identical RunMetrics."""
    trace1, m1 = _run_faulted("flaky-link", seed=11)
    trace2, m2 = _run_faulted("flaky-link", seed=11)
    assert trace1 == trace2
    assert len(trace1) > 0, "plan injected nothing at this scale"
    assert m1 == m2
    # A different fault seed replays a different adversity schedule.
    trace3, _ = _run_faulted("flaky-link", seed=12)
    assert trace1 != trace3


def test_lci_bfs_identical_answer_under_drops():
    """Acceptance: nonzero drops, LCI answer == fault-free answer, with
    retransmissions visible in the metrics."""
    g = rmat(7, edge_factor=8, seed=31)
    app = Bfs(source=0)
    clean = BspEngine(g, app, EngineConfig(num_hosts=4, layer="lci"))
    clean.run()
    want = clean.assemble_global()

    eng = BspEngine(g, app, EngineConfig(
        num_hosts=4, layer="lci", fault_plan="drop-5pct"))
    m = eng.run()
    assert np.array_equal(eng.assemble_global(), want)
    assert m.fault_counts["drops"] > 0
    assert m.layer_counters["retransmissions"] > 0
    # ... and in the runtime's own StatRegistry.
    retrans = sum(
        l.rt.stats.counter_value("retransmissions") for l in eng.layers
    )
    assert retrans == m.layer_counters["retransmissions"]


def test_lci_pagerank_identical_answer_under_drops():
    g = rmat(7, edge_factor=8, seed=31)
    app = PageRank(max_rounds=5, tol=1e-12)
    clean = BspEngine(g, app, EngineConfig(num_hosts=4, layer="lci"))
    clean.run()
    want = clean.assemble_global()

    eng = BspEngine(g, app, EngineConfig(
        num_hosts=4, layer="lci", fault_plan="drop-5pct"))
    m = eng.run()
    np.testing.assert_allclose(eng.assemble_global(), want, rtol=1e-12)
    assert m.fault_counts["drops"] > 0


def test_faults_compose_with_squeezed_hardware():
    """Injected faults stack on top of genuine hardware duress."""
    g = rmat(7, edge_factor=8, seed=31)
    app = Bfs(source=0)
    clean = BspEngine(g, app, EngineConfig(num_hosts=4, layer="lci"))
    clean.run()
    want = clean.assemble_global()
    eng = BspEngine(g, app, EngineConfig(
        num_hosts=4, layer="lci", machine=squeezed_machine(tx_depth=4),
        fault_plan="flaky-link",
    ))
    eng.run()
    assert np.array_equal(eng.assemble_global(), want)


def test_cached_graph_is_frozen():
    """Scenario runs share one graph instance; it must be immutable."""
    from repro.bench.scenarios import cached_graph

    g = cached_graph("rmat", 7, 31, False)
    assert g.frozen
    assert g is cached_graph("rmat", 7, 31, False)
    with pytest.raises(ValueError):
        g.indices[0] = 0
    with pytest.raises(ValueError):
        g.indptr[0] = 1
    # The cached transpose view is frozen too.
    with pytest.raises(ValueError):
        g.transpose().indices[0] = 0
    gw = cached_graph("rmat", 7, 31, True)
    with pytest.raises(ValueError):
        gw.edge_data[0] = 0.0


def test_slow_injection_rate_still_correct():
    g = rmat(7, edge_factor=8, seed=5)
    app = Bfs(source=0)
    cfg = EngineConfig(
        num_hosts=4, layer="lci",
        machine=squeezed_machine(tx_depth=64, injection_rate=1e5),
    )
    eng = BspEngine(g, app, cfg)
    m = eng.run()
    assert np.array_equal(eng.assemble_global(), app.reference(g))
    # The message-rate cap is visible in the communication time.
    fast = BspEngine(
        rmat(7, edge_factor=8, seed=5), Bfs(source=0),
        EngineConfig(num_hosts=4, layer="lci"),
    )
    mf = fast.run()
    assert m.comm_seconds > mf.comm_seconds
