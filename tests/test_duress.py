"""Resilience under network duress: constrained TX queues and pools.

The paper's Section III-D: "LCI avoids fatal failures due to insufficient
network resources ... by allowing the upper layer to retry the operation
on such events."  These tests squeeze the simulated hardware (tiny NIC
TX queues, tiny packet pools) and verify every layer still computes the
right answer — with LCI's retries visible in its statistics rather than
hidden or fatal.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import Bfs, PageRank
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import rmat
from repro.lci.config import LciConfig
from repro.sim.machine import stampede2


def squeezed_machine(tx_depth=8, injection_rate=2e6):
    m = stampede2()
    return replace(
        m, nic=replace(m.nic, tx_queue_depth=tx_depth,
                       injection_rate=injection_rate),
    )


@pytest.mark.parametrize("layer", ["lci", "mpi-probe", "mpi-rma"])
def test_correct_under_tiny_tx_queue(layer):
    g = rmat(7, edge_factor=8, seed=31)
    app = Bfs(source=0)
    cfg = EngineConfig(
        num_hosts=4, layer=layer, machine=squeezed_machine(tx_depth=4),
    )
    eng = BspEngine(g, app, cfg)
    eng.run()
    assert np.array_equal(eng.assemble_global(), app.reference(g)), layer


def test_lci_correct_with_minimal_pool():
    g = rmat(7, edge_factor=8, seed=31)
    app = PageRank(max_rounds=5, tol=1e-12)
    cfg = EngineConfig(
        num_hosts=4, layer="lci",
        layer_kwargs={
            "lci_config": LciConfig(pool_packets_per_host=0,
                                    pool_packets_min=4)
        },
    )
    eng = BspEngine(g, app, cfg)
    m = eng.run()
    want = app.reference(g, rounds=m.rounds)
    np.testing.assert_allclose(eng.assemble_global(), want, rtol=1e-8)


def test_lci_surfaces_retries_nonfatally():
    """Duress shows up as retry/stall counters, never as an exception."""
    g = rmat(8, edge_factor=12, seed=31)
    app = PageRank(max_rounds=5, tol=1e-12)
    cfg = EngineConfig(
        num_hosts=8, layer="lci", machine=squeezed_machine(),
        layer_kwargs={
            # 3 packets, 2 receive-reserved: one send slot for parallel
            # senders -> guaranteed contention.
            "lci_config": LciConfig(pool_packets_per_host=0,
                                    pool_packets_min=3)
        },
    )
    eng = BspEngine(g, app, cfg)
    eng.run()
    pressure = sum(
        l.stats.counter_value("send_retries")
        + l.rt.stats.counter_value("server_pool_stalls")
        + l.rt.pool.stats.counter_value("alloc_failures")
        for l in eng.layers
    )
    assert pressure > 0, "expected visible back pressure under duress"


def test_slow_injection_rate_still_correct():
    g = rmat(7, edge_factor=8, seed=5)
    app = Bfs(source=0)
    cfg = EngineConfig(
        num_hosts=4, layer="lci",
        machine=squeezed_machine(tx_depth=64, injection_rate=1e5),
    )
    eng = BspEngine(g, app, cfg)
    m = eng.run()
    assert np.array_equal(eng.assemble_global(), app.reference(g))
    # The message-rate cap is visible in the communication time.
    fast = BspEngine(
        rmat(7, edge_factor=8, seed=5), Bfs(source=0),
        EngineConfig(num_hosts=4, layer="lci"),
    )
    mf = fast.run()
    assert m.comm_seconds > mf.comm_seconds
