"""Tests for the BSP barrier/allreduce primitives."""

import pytest

from repro.comm.collective import AllReducer, SimBarrier, barrier_cost
from repro.sim.engine import Environment
from repro.sim.machine import stampede1, stampede2


def test_barrier_cost_zero_for_single_host():
    assert barrier_cost(stampede2(), 1) == 0.0


def test_barrier_cost_log_rounds():
    m = stampede2()
    c2 = barrier_cost(m, 2)
    c16 = barrier_cost(m, 16)
    assert c16 == pytest.approx(4 * c2)


def test_barrier_synchronizes():
    env = Environment()
    bar = SimBarrier(env, 3, stampede2())
    arrive, leave = {}, {}

    def worker(env, i):
        yield env.timeout(i * 1e-4)
        arrive[i] = env.now
        yield from bar.arrive()
        leave[i] = env.now

    for i in range(3):
        env.process(worker(env, i))
    env.run()
    assert min(leave.values()) >= max(arrive.values())
    # Everyone pays the barrier cost after release.
    for i in range(3):
        assert leave[i] == pytest.approx(max(arrive.values()) + bar.cost)


def test_barrier_reusable_across_generations():
    env = Environment()
    bar = SimBarrier(env, 2, stampede2())
    crossings = []

    def worker(env, i):
        for rnd in range(3):
            yield env.timeout((i + 1) * 1e-5)
            yield from bar.arrive()
            crossings.append((rnd, i, env.now))

    env.process(worker(env, 0))
    env.process(worker(env, 1))
    env.run()
    assert len(crossings) == 6
    # Rounds complete in order, both workers per round at the same time.
    times = {}
    for rnd, i, t in crossings:
        times.setdefault(rnd, set()).add(t)
    assert all(len(ts) == 1 for ts in times.values())


def test_allreduce_sum():
    env = Environment()
    ar = AllReducer(env, 4, stampede2())
    got = {}

    def worker(env, i):
        total = yield from ar.allreduce_sum(i, i + 1)
        got[i] = total

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    assert got == {0: 10, 1: 10, 2: 10, 3: 10}


def test_allreduce_repeated_rounds():
    env = Environment()
    ar = AllReducer(env, 2, stampede1())
    got = []

    def worker(env, i):
        for rnd in range(3):
            total = yield from ar.allreduce_sum(i, rnd * 10 + i)
            if i == 0:
                got.append(total)

    env.process(worker(env, 0))
    env.process(worker(env, 1))
    env.run()
    assert got == [1, 21, 41]


def test_allreduce_zero_terminates_bsp_convention():
    env = Environment()
    ar = AllReducer(env, 2, stampede2())
    results = []

    def worker(env, i):
        total = yield from ar.allreduce_sum(i, 0)
        results.append(total)

    env.process(worker(env, 0))
    env.process(worker(env, 1))
    env.run()
    assert results == [0, 0]
