"""Tests for the synthetic graph generators (Table I input families)."""

import numpy as np
import pytest

from repro.graph.generators import kron, make_graph, rmat, webcrawl
from repro.graph.properties import graph_properties


def test_rmat_size_and_determinism():
    g1 = rmat(8, edge_factor=8, seed=5)
    g2 = rmat(8, edge_factor=8, seed=5)
    assert g1.num_nodes == 256
    assert g1.num_edges > 0
    assert np.array_equal(g1.indices, g2.indices)
    assert np.array_equal(g1.indptr, g2.indptr)


def test_rmat_seed_changes_graph():
    g1 = rmat(8, seed=1)
    g2 = rmat(8, seed=2)
    assert not (
        len(g1.indices) == len(g2.indices)
        and np.array_equal(g1.indices, g2.indices)
    )


def test_rmat_skewed_degrees():
    g = rmat(10, edge_factor=16, seed=1)
    props = graph_properties(g)
    # Power-law: max degree far above the average.
    assert props.max_out_degree > 8 * props.avg_degree


def test_rmat_weights():
    g = rmat(6, seed=1, weights=True)
    assert g.edge_data is not None
    assert g.edge_data.min() >= 1
    assert len(g.edge_data) == g.num_edges


def test_kron_roughly_symmetric_degrees():
    g = kron(9, edge_factor=10, seed=2)
    props = graph_properties(g)
    # Symmetrized: max in and out degree are identical.
    assert props.max_in_degree == props.max_out_degree


def test_kron_is_symmetric_digraph():
    g = kron(7, seed=3)
    src, dst = g.edges()
    fwd = set(zip(src.tolist(), dst.tolist()))
    assert all((d, s) in fwd for s, d in fwd)


def test_webcrawl_in_degree_asymmetry():
    """clueweb-like: max in-degree orders of magnitude above max out."""
    g = webcrawl(12, seed=3)
    props = graph_properties(g)
    assert props.max_in_degree > 10 * props.max_out_degree


def test_webcrawl_bounded_out_degree():
    g = webcrawl(10, seed=3, max_out=64)
    # top-up can exceed the cap slightly, but not wildly
    assert graph_properties(g).max_out_degree <= 64 + 32


def test_webcrawl_edge_factor_respected():
    g = webcrawl(10, edge_factor=44, seed=3)
    props = graph_properties(g)
    # dedup against hub targets trims a fair share; still the densest family
    assert props.avg_degree > 12


def test_make_graph_families():
    for family in ("rmat", "kron", "webcrawl"):
        g = make_graph(family, 7, seed=4)
        assert g.num_nodes == 128
        assert g.num_edges > 0


def test_make_graph_paper_aliases():
    g = make_graph("rmat28", 7)
    assert g.name.startswith("rmat")
    g = make_graph("kron30", 7)
    assert g.name.startswith("kron")
    g = make_graph("clueweb12", 7)
    assert g.name.startswith("webcrawl")


def test_make_graph_unknown_family():
    with pytest.raises(ValueError, match="unknown family"):
        make_graph("nonsense", 8)


def test_no_self_loops_after_dedup():
    for family in ("rmat", "kron", "webcrawl"):
        g = make_graph(family, 8, seed=7)
        src, dst = g.edges()
        assert not np.any(src == dst), family
