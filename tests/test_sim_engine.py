"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(2.5)
        seen.append(env.now)
        yield env.timeout(1.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [2.5, 3.5]
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    out = []

    def proc(env):
        v = yield env.timeout(1, value="hello")
        out.append(v)

    env.process(proc(env))
    env.run()
    assert out == ["hello"]


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for i in range(5):
        env.process(proc(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        val = yield ev
        got.append((env.now, val))

    def trigger(env):
        yield env.timeout(4)
        ev.succeed(42)

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert got == [(4, 42)]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    env.process(waiter(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("quiet"))
    ev.defuse()
    env.run()  # should not raise


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return result + "!"

    p = env.process(parent(env))
    assert env.run_process(p) == "done!"


def test_process_waiting_on_already_processed_event():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 7

    def parent(env):
        c = env.process(child(env))
        yield env.timeout(10)  # child long done
        val = yield c
        return val

    p = env.process(parent(env))
    assert env.run_process(p) == 7
    assert env.now == 10


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            return "caught"

    p = env.process(parent(env))
    assert env.run_process(p) == "caught"


def test_yield_non_event_fails_process():
    # Numbers are valid yields (the zero-allocation timeout fast path),
    # so the garbage here must be non-numeric.
    env = Environment()

    def bad(env):
        yield "not an event"

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
    assert p.triggered and not p.ok


def test_interrupt_resumes_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3, "wake up")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    p.interrupt()  # no error


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(2, value="fast")
        got = yield env.any_of([t1, t2])
        results.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert results[0][0] == 2
    assert results[0][1] == {1: "fast"}


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(2, value="b")
        got = yield env.all_of([t1, t2])
        results.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert results == [(5, {0: "a", 1: "b"})]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_max_events_guard():
    env = Environment()

    def spinner(env):
        while True:
            yield env.timeout(0)

    env.process(spinner(env))
    with pytest.raises(SimulationError, match="max_events"):
        env.run(max_events=100)


def test_schedule_callback():
    env = Environment()
    hits = []
    env.schedule_callback(2.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.0]


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3)
    assert env.peek() == 3


def test_run_process_unfinished_raises():
    env = Environment()

    def waits_forever(env):
        yield env.event()

    p = env.process(waits_forever(env))
    with pytest.raises(SimulationError, match="did not finish"):
        env.run_process(p)


# ----------------------------------------------------------------------
# Calendar-queue scheduler determinism
# ----------------------------------------------------------------------

def _record_order(env, log, label, delay):
    def proc():
        yield delay
        log.append((env.now, label))
    return env.process(proc())


def test_same_timestamp_ordering_across_bucket_boundaries():
    # Schedule pairs of events at the same timestamp where one lands in
    # the current bucket and its twin beyond the calendar horizon (far
    # heap); scheduling order must still decide the tie everywhere.
    env = Environment(bucket_width=1e-6, num_buckets=4)  # 4 us horizon
    log = []
    for i, when in enumerate([3e-6, 3e-6, 50e-6, 50e-6, 0.5e-6, 0.5e-6]):
        _record_order(env, log, i, when)
    env.run()
    assert log == [
        (0.5e-6, 4), (0.5e-6, 5),
        (3e-6, 0), (3e-6, 1),
        (50e-6, 2), (50e-6, 3),
    ]


def test_calendar_resize_mid_run_preserves_order():
    env = Environment(bucket_width=1e-6, num_buckets=8)
    log = []
    for i, when in enumerate([2e-6, 2e-6, 5e-6, 300e-6, 300e-6, 301e-6]):
        _record_order(env, log, i, when)

    def resizer():
        yield 4e-6
        env.resize(100e-6)  # re-bucket everything still pending
        log.append((env.now, "resized"))
    env.process(resizer())
    env.run()
    assert log == [
        (2e-6, 0), (2e-6, 1),
        (4e-6, "resized"),
        (5e-6, 2),
        (300e-6, 3), (300e-6, 4),
        (301e-6, 5),
    ]


def test_automatic_resize_drops_and_duplicates_nothing():
    # Regression: a streak of sparse rebases triggers the automatic
    # width growth *inside* _advance.  The resize rebuilds the calendar
    # mid-scan; the scan must restart on the fresh state or it will
    # re-deliver (from the stale bucket table) and/or clobber the
    # rebuilt current heap, losing events.  Both historical failure
    # modes are pinned here.
    def fire_at(times):
        env = Environment(bucket_width=1.0, num_buckets=4)
        fired = []
        for t in times:
            env.call_later(t, (lambda tt: (lambda: fired.append(tt)))(t))
        env.run()
        assert env._width > 1.0  # the automatic resize actually ran
        return fired

    # Lost-event shape: 306 lands in the rebuilt current heap, which a
    # stale fall-through used to overwrite.
    assert fire_at([100, 200, 300, 305, 306]) == [100, 200, 300, 305, 306]
    # Duplicate-event shape: 400 sat in a drained-but-uncleared old
    # bucket and used to be delivered twice.
    assert fire_at([100, 200, 300, 400, 500]) == [100, 200, 300, 400, 500]


def test_sparse_rebase_streak_matches_pure_heap():
    # Coarse-timescale workload: every delay dwarfs the whole calendar
    # window (bucket_width * num_buckets = 4 s vs ~1000 s gaps), so each
    # rebase migrates one or two entries and the resize streak trips
    # repeatedly.  The fire order must equal the degenerate single-heap
    # scheduler's, event for event.
    import random

    def workload(env):
        rng = random.Random(99)
        log = []

        def proc(name):
            for _ in range(6):
                yield 100.0 + rng.random() * 1000.0
                log.append((env.now, name))

        for i in range(6):
            env.process(proc(f"p{i}"))
        env.run()
        return log

    calendar = workload(Environment(bucket_width=1.0, num_buckets=4))
    pure = workload(Environment(bucket_width=float("inf")))
    assert calendar == pure
    assert len(calendar) == 36


def test_interrupt_from_fast_timeout_path():
    # A process sleeping via the zero-allocation float-yield path must
    # still be interruptible, and the stale fast-timer must not fire.
    env = Environment()
    log = []

    def sleeper():
        try:
            yield 100.0  # fast-path timeout
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))
            yield 1.0    # fast path again after the interrupt
            log.append(("resumed", env.now))

    p = env.process(sleeper())

    def waker():
        yield 2.0
        p.interrupt("wake")
    env.process(waker())
    env.run()
    assert log == [("interrupted", 2.0, "wake"), ("resumed", 3.0)]
    # The defused 100 s timer still drains as a no-op pop (exactly like
    # a historical Timeout whose callbacks were removed), so event and
    # clock accounting match the pre-calendar engine.
    assert env.now == 100.0


def test_calendar_and_pure_heap_orders_identical():
    # Property-style: a randomized seeded workload of timers, chained
    # resumes, and interrupts must fire in the identical order under the
    # calendar queue and under the pure-heap degenerate configuration.
    import random

    def workload(env):
        rng = random.Random(1234)
        log = []

        def jittery(name):
            for _ in range(rng.randint(1, 5)):
                yield rng.choice([0.0, 1e-7, 3.7e-6, 1e-3]) * rng.random()
                log.append((env.now, name))

        def sleeper(name):
            # Long fast-path sleeps that expect to be poked awake.
            try:
                yield 1e-2
                log.append((env.now, name, "slept"))
            except Interrupt:
                log.append((env.now, name, "poked"))
                yield rng.random() * 1e-5
                log.append((env.now, name, "back"))

        for i in range(25):
            env.process(jittery(f"p{i}"))
        sleepers = [env.process(sleeper(f"s{i}")) for i in range(5)]

        def meddler():
            yield 2e-6
            for p in sleepers[::2]:
                if p.is_alive:
                    p.interrupt("poke")
            log.append((env.now, "meddled"))
        env.process(meddler())
        env.run()
        return log

    fast = workload(Environment(bucket_width=1e-6, num_buckets=16))
    # Interrupted processes raise into jittery generators which have no
    # handler; both runs must crash identically or succeed identically.
    pure = workload(Environment(bucket_width=float("inf")))
    assert fast == pure
    assert len(fast) > 25
