"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(2.5)
        seen.append(env.now)
        yield env.timeout(1.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [2.5, 3.5]
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    out = []

    def proc(env):
        v = yield env.timeout(1, value="hello")
        out.append(v)

    env.process(proc(env))
    env.run()
    assert out == ["hello"]


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for i in range(5):
        env.process(proc(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        val = yield ev
        got.append((env.now, val))

    def trigger(env):
        yield env.timeout(4)
        ev.succeed(42)

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert got == [(4, 42)]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    env.process(waiter(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("quiet"))
    ev.defuse()
    env.run()  # should not raise


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return result + "!"

    p = env.process(parent(env))
    assert env.run_process(p) == "done!"


def test_process_waiting_on_already_processed_event():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 7

    def parent(env):
        c = env.process(child(env))
        yield env.timeout(10)  # child long done
        val = yield c
        return val

    p = env.process(parent(env))
    assert env.run_process(p) == 7
    assert env.now == 10


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            return "caught"

    p = env.process(parent(env))
    assert env.run_process(p) == "caught"


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 123

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
    assert p.triggered and not p.ok


def test_interrupt_resumes_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3, "wake up")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    p.interrupt()  # no error


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(2, value="fast")
        got = yield env.any_of([t1, t2])
        results.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert results[0][0] == 2
    assert results[0][1] == {1: "fast"}


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(2, value="b")
        got = yield env.all_of([t1, t2])
        results.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert results == [(5, {0: "a", 1: "b"})]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_max_events_guard():
    env = Environment()

    def spinner(env):
        while True:
            yield env.timeout(0)

    env.process(spinner(env))
    with pytest.raises(SimulationError, match="max_events"):
        env.run(max_events=100)


def test_schedule_callback():
    env = Environment()
    hits = []
    env.schedule_callback(2.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.0]


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3)
    assert env.peek() == 3


def test_run_process_unfinished_raises():
    env = Environment()

    def waits_forever(env):
        yield env.event()

    p = env.process(waits_forever(env))
    with pytest.raises(SimulationError, match="did not finish"):
        env.run_process(p)
