"""Every example script must run end-to-end (they are part of the API)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "runtime_comparison.py",
            "partitioning_study.py", "microbench_latency.py",
            "memory_footprint.py"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, (
        f"{path.name} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{path.name} printed nothing"
