"""Unit tests for Store / Resource / Lock."""

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.resources import Lock, Resource, Store


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1, 0), (2, 1), (3, 2)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(5)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(5, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    timeline = []

    def producer(env):
        yield store.put("a")
        timeline.append(("put-a", env.now))
        yield store.put("b")
        timeline.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(3)
        item = yield store.get()
        timeline.append(("got-" + item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0) in timeline
    assert ("put-b", 3) in timeline  # unblocked by the get at t=3


def test_store_try_put_try_get():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.try_get() is None
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert store.try_get() == 1
    assert len(store) == 1


def test_store_try_put_hands_to_waiting_getter():
    env = Environment()
    store = Store(env, capacity=1)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append(item)

    env.process(consumer(env))
    env.run()  # consumer now blocked
    assert store.try_put("direct")
    env.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------
def test_resource_capacity_enforced():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(env, i):
        yield res.request()
        active.append(i)
        peak.append(len(active))
        yield env.timeout(1)
        active.remove(i)
        res.release()

    for i in range(5):
        env.process(worker(env, i))
    env.run()
    assert max(peak) == 2


def test_resource_try_request():
    env = Environment()
    res = Resource(env, capacity=1)
    assert res.try_request()
    assert not res.try_request()
    res.release()
    assert res.try_request()


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def worker(env, i):
        yield env.timeout(i * 0.1)  # stagger arrival
        yield res.request()
        grants.append(i)
        yield env.timeout(10)
        res.release()

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    assert grants == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# Lock
# ---------------------------------------------------------------------------
def test_lock_mutual_exclusion_and_cost():
    env = Environment()
    lock = Lock(env, acquire_cost=0.5)
    inside = []

    def critical(env, i):
        yield from lock.acquire()
        inside.append(("enter", i, env.now))
        yield env.timeout(1)
        inside.append(("exit", i, env.now))
        lock.release()

    env.process(critical(env, 0))
    env.process(critical(env, 1))
    env.run()
    # First holder enters after paying acquire cost.
    assert inside[0] == ("enter", 0, 0.5)
    # Second cannot enter before the first exits.
    enter1 = [e for e in inside if e[0] == "enter" and e[1] == 1][0]
    exit0 = [e for e in inside if e[0] == "exit" and e[1] == 0][0]
    assert enter1[2] >= exit0[2]


def test_lock_contention_counter():
    env = Environment()
    lock = Lock(env)

    def holder(env):
        yield from lock.acquire()
        yield env.timeout(5)
        lock.release()

    def contender(env):
        yield env.timeout(1)
        yield from lock.acquire()
        lock.release()

    env.process(holder(env))
    env.process(contender(env))
    env.run()
    assert lock.acquisitions == 2
    assert lock.contended_acquisitions == 1


def test_lock_held_releases_on_exception():
    env = Environment()
    lock = Lock(env)

    def body(env):
        yield env.timeout(1)
        raise ValueError("inner failure")

    def proc(env):
        try:
            yield from lock.held(body(env))
        except ValueError:
            pass
        return lock.locked

    p = env.process(proc(env))
    assert env.run_process(p) is False
