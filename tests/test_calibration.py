"""Every calibration observable must land in its published-magnitude range."""

import pytest

from repro.bench.calibration import CHECKS, calibration_report


@pytest.fixture(scope="module")
def report():
    return calibration_report()


def test_all_checks_covered(report):
    assert set(report) == set(CHECKS)


@pytest.mark.parametrize("name", sorted(CHECKS))
def test_observable_in_range(report, name):
    value, low, high = report[name]
    assert low <= value <= high, (
        f"{name} = {value:.3e} outside calibration range "
        f"[{low:.3e}, {high:.3e}]"
    )
