"""Tests for the simulated MPI two-sided layer."""

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MPIResourceExhausted,
    MpiWorld,
    ThreadMode,
    intel_mpi,
    mvapich2,
    openmpi,
)
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def make_world(num_hosts=2, config=None, thread_mode=ThreadMode.FUNNELED):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    world = MpiWorld(env, fabric, config or intel_mpi(), thread_mode)
    return env, world


def test_eager_send_recv_roundtrip():
    env, world = make_world()
    result = {}

    def sender(env):
        ep = world.endpoint(0)
        req = yield from ep.isend(1, tag=7, size=128, payload=b"x" * 128)
        yield from ep.wait(req)

    def receiver(env):
        ep = world.endpoint(1)
        payload, status = yield from ep.recv(source=0, tag=7)
        result["payload"] = payload
        result["status"] = status

    env.process(sender(env))
    p = env.process(receiver(env))
    env.run()
    assert p.ok
    assert result["payload"] == b"x" * 128
    assert result["status"].source == 0
    assert result["status"].tag == 7
    assert result["status"].count == 128
    assert env.now > 0  # time actually passed


def test_rendezvous_large_message():
    env, world = make_world()
    cfg = world.config
    big = cfg.eager_limit * 4
    result = {}

    def sender(env):
        ep = world.endpoint(0)
        req = yield from ep.isend(1, tag=1, size=big, payload="BIGDATA")
        yield from ep.wait(req)
        result["send_done_at"] = env.now

    def receiver(env):
        ep = world.endpoint(1)
        payload, status = yield from ep.recv(source=0, tag=1)
        result["payload"] = payload
        result["count"] = status.count

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert result["payload"] == "BIGDATA"
    assert result["count"] == big
    ep0 = world.endpoint(0)
    assert ep0.stats.counter_value("rndv_sends") == 1
    assert ep0.stats.counter_value("eager_sends") == 0


def test_message_ordering_same_source_tag():
    """MPI guarantees FIFO matching per (source, tag)."""
    env, world = make_world()
    got = []

    def sender(env):
        ep = world.endpoint(0)
        for i in range(10):
            yield from ep.isend(1, tag=5, size=64, payload=i)

    def receiver(env):
        ep = world.endpoint(1)
        for _ in range(10):
            payload, _ = yield from ep.recv(source=0, tag=5)
            got.append(payload)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert got == list(range(10))


def test_wildcard_receive_any_source():
    env, world = make_world(num_hosts=3)
    got = []

    def sender(env, rank):
        ep = world.endpoint(rank)
        yield env.timeout(rank * 1e-6)  # stagger
        yield from ep.isend(2, tag=9, size=32, payload=rank)

    def receiver(env):
        ep = world.endpoint(2)
        for _ in range(2):
            payload, status = yield from ep.recv(source=ANY_SOURCE, tag=9)
            got.append((payload, status.source))

    env.process(sender(env, 0))
    env.process(sender(env, 1))
    env.process(receiver(env))
    env.run()
    assert sorted(got) == [(0, 0), (1, 1)]


def test_wildcard_tag():
    env, world = make_world()
    got = []

    def sender(env):
        ep = world.endpoint(0)
        yield from ep.isend(1, tag=3, size=16, payload="a")
        yield from ep.isend(1, tag=8, size=16, payload="b")

    def receiver(env):
        ep = world.endpoint(1)
        for _ in range(2):
            payload, status = yield from ep.recv(source=0, tag=ANY_TAG)
            got.append((payload, status.tag))

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert got == [("a", 3), ("b", 8)]


def test_iprobe_reports_without_consuming():
    env, world = make_world()
    result = {}

    def sender(env):
        ep = world.endpoint(0)
        yield from ep.isend(1, tag=4, size=100, payload="probe-me")

    def receiver(env):
        ep = world.endpoint(1)
        status = None
        while status is None:
            status = yield from ep.iprobe(source=ANY_SOURCE, tag=ANY_TAG)
            if status is None:
                yield env.timeout(1e-7)
        result["probed"] = (status.source, status.tag, status.count)
        # Message still there: a matching recv completes immediately.
        payload, _ = yield from ep.recv(source=status.source, tag=status.tag)
        result["payload"] = payload

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert result["probed"] == (0, 4, 100)
    assert result["payload"] == "probe-me"


def test_iprobe_none_when_empty():
    env, world = make_world()
    result = {}

    def prober(env):
        ep = world.endpoint(1)
        result["status"] = yield from ep.iprobe()

    env.process(prober(env))
    env.run()
    assert result["status"] is None


def test_posted_receive_matches_later_arrival():
    env, world = make_world()
    result = {}

    def receiver(env):
        ep = world.endpoint(1)
        req = yield from ep.irecv(source=0, tag=2)
        assert not req.done
        yield from ep.wait(req)
        result["payload"] = req.payload

    def sender(env):
        ep = world.endpoint(0)
        yield env.timeout(5e-6)
        yield from ep.isend(1, tag=2, size=64, payload="late")

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert result["payload"] == "late"


def test_test_returns_false_then_true():
    env, world = make_world()
    observations = []

    def receiver(env):
        ep = world.endpoint(1)
        req = yield from ep.irecv(source=0, tag=1)
        done = yield from ep.test(req)
        observations.append(done)
        yield from ep.wait(req)
        observations.append(req.done)

    def sender(env):
        ep = world.endpoint(0)
        yield env.timeout(1e-5)
        yield from ep.isend(1, tag=1, size=32, payload="z")

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert observations == [False, True]


def test_eager_credit_exhaustion_aborts_intelmpi():
    cfg = intel_mpi().with_(eager_credits_per_peer=4, crash_on_exhaustion=True)
    env, world = make_world(config=cfg)

    def flooder(env):
        ep = world.endpoint(0)
        # Receiver never posts receives: credits never come home.
        for i in range(10):
            yield from ep.isend(1, tag=1, size=64, payload=i)

    p = env.process(flooder(env))
    with pytest.raises(MPIResourceExhausted):
        env.run()
    assert world.endpoint(0).stats.counter_value("eager_exhaustion_aborts") == 1


def test_eager_credit_exhaustion_stalls_openmpi():
    cfg = openmpi().with_(eager_credits_per_peer=4)
    env, world = make_world(config=cfg)
    done = {}

    def flooder(env):
        ep = world.endpoint(0)
        for i in range(10):
            yield from ep.isend(1, tag=1, size=64, payload=i)
        done["sent_all_at"] = env.now

    def slow_receiver(env):
        ep = world.endpoint(1)
        yield env.timeout(1e-3)  # long delay before consuming
        for _ in range(10):
            yield from ep.recv(source=0, tag=1)

    env.process(flooder(env))
    env.process(slow_receiver(env))
    env.run()
    # Sender stalled until the receiver drained: completion after the delay.
    assert done["sent_all_at"] > 1e-3
    assert world.endpoint(0).stats.counter_value("eager_stalls") > 0


def test_thread_multiple_lock_contention_counted():
    env, world = make_world(thread_mode=ThreadMode.MULTIPLE)
    ep = world.endpoint(0)

    def caller(env, i):
        yield from ep.isend(1, tag=1, size=16, payload=i)

    for i in range(4):
        env.process(caller(env, i))

    def receiver(env):
        rep = world.endpoint(1)
        for _ in range(4):
            yield from rep.recv(source=0, tag=1)

    env.process(receiver(env))
    env.run()
    assert ep._lock.acquisitions >= 4


def test_funneled_mode_rejects_second_thread():
    from repro.mpi.exceptions import MPIUsageError

    env, world = make_world(thread_mode=ThreadMode.FUNNELED)
    ep = world.endpoint(0)

    def thread_a(env):
        yield from ep.isend(1, tag=1, size=16, payload="a", thread="A")

    def thread_b(env):
        yield env.timeout(1e-6)
        yield from ep.isend(1, tag=1, size=16, payload="b", thread="B")

    env.process(thread_a(env))
    env.process(thread_b(env))
    with pytest.raises(MPIUsageError, match="FUNNELED"):
        env.run()


def test_barrier_synchronizes_all_ranks():
    env, world = make_world(num_hosts=8)
    arrive = {}
    leave = {}

    def worker(env, rank):
        yield env.timeout(rank * 1e-5)  # staggered arrival
        arrive[rank] = env.now
        yield from world.barrier(rank)
        leave[rank] = env.now

    for r in range(8):
        env.process(worker(env, r))
    env.run()
    # Nobody leaves before the last arrival.
    assert min(leave.values()) >= max(arrive.values())


def test_barrier_single_host_trivial():
    env, world = make_world(num_hosts=1)

    def worker(env):
        yield from world.barrier(0)
        return "ok"

    p = env.process(worker(env))
    assert env.run_process(p) == "ok"


def test_mpi_presets_distinct():
    names = {c.name for c in (intel_mpi(), mvapich2(), openmpi())}
    assert names == {"intelmpi", "mvapich2", "openmpi"}
    assert mvapich2().match_cost_per_element < openmpi().match_cost_per_element


def test_latency_scales_with_unmatched_queue_depth():
    """Matching cost grows with posted-queue length — the MPI pathology."""

    send_at = 1e-3  # long after all receives are posted in both runs

    def run_with_preposted(n_preposted):
        env, world = make_world()
        result = {}

        def receiver(env):
            ep = world.endpoint(1)
            # Pre-post receives that never match (wrong tag), lengthening
            # the posted queue the arrival must traverse.
            for _ in range(n_preposted):
                yield from ep.irecv(source=0, tag=999)
            req = yield from ep.irecv(source=0, tag=5)
            yield from ep.wait(req)
            result["done_at"] = env.now

        def sender(env):
            ep = world.endpoint(0)
            yield env.timeout(send_at)
            yield from ep.isend(1, tag=5, size=64, payload="hi")

        env.process(receiver(env))
        env.process(sender(env))
        env.run(until=2e-3)
        return result["done_at"] - send_at

    slow = run_with_preposted(500)
    fast = run_with_preposted(0)
    assert slow > fast
    # Traversal of ~500 extra entries should cost microseconds, not noise.
    assert slow - fast > 500 * 0.5 * intel_mpi().match_cost_per_element
