"""Additional graph-substrate coverage: properties, io errors, structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CsrGraph
from repro.graph.generators import kron, rmat, webcrawl
from repro.graph.io import load_edgelist
from repro.graph.partition.edge_cut import balanced_node_blocks
from repro.graph.properties import graph_properties


def test_properties_empty_graph():
    g = CsrGraph(np.zeros(4, dtype=np.int64), np.array([], dtype=np.int64), 3)
    p = graph_properties(g)
    assert p.num_edges == 0
    assert p.max_out_degree == 0 and p.max_in_degree == 0


def test_properties_as_row_keys():
    p = graph_properties(rmat(6, seed=1))
    row = p.as_row()
    assert set(row) == {"graph", "|V|", "|E|", "|E|/|V|",
                        "max D_out", "max D_in"}


def test_avg_degree_consistency():
    g = rmat(7, edge_factor=8, seed=2)
    p = graph_properties(g)
    assert p.avg_degree == pytest.approx(g.num_edges / g.num_nodes)


def test_edgelist_mixed_weights_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1 5\n1 2\n")
    with pytest.raises(ValueError, match="weights"):
        load_edgelist(str(path), num_nodes=3)


def test_edgelist_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n\n0 1\n# middle\n1 2\n")
    g = load_edgelist(str(path), num_nodes=3)
    assert g.num_edges == 2


def test_edgelist_infers_num_nodes(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 9\n")
    g = load_edgelist(str(path))
    assert g.num_nodes == 10


def test_generators_scale_one():
    """Degenerate scale must not crash (2 nodes)."""
    for gen in (rmat, kron, webcrawl):
        g = gen(1, seed=1)
        assert g.num_nodes == 2
        src, dst = g.edges()
        assert not np.any(src == dst)


def test_balanced_blocks_single_block():
    g = rmat(6, seed=1)
    owner = balanced_node_blocks(g, 1)
    assert np.all(owner == 0)


def test_balanced_blocks_rejects_zero():
    with pytest.raises(ValueError):
        balanced_node_blocks(rmat(5, seed=1), 0)


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.integers(1, 9),
    seed=st.integers(0, 500),
)
def test_property_balanced_blocks_cover_all_nodes(blocks, seed):
    g = rmat(6, edge_factor=4, seed=seed)
    owner = balanced_node_blocks(g, blocks)
    assert len(owner) == g.num_nodes
    assert owner.min() >= 0 and owner.max() <= blocks - 1
    assert np.all(np.diff(owner) >= 0)  # contiguous blocks


@settings(max_examples=15, deadline=None)
@given(scale=st.integers(4, 9), seed=st.integers(0, 100))
def test_property_generators_in_bounds(scale, seed):
    for gen in (rmat, kron, webcrawl):
        g = gen(scale, seed=seed)
        assert g.num_nodes == 1 << scale
        if g.num_edges:
            assert g.indices.max() < g.num_nodes
            assert g.indices.min() >= 0
