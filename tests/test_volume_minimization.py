"""Abelian's volume claim: only *updated* labels are communicated.

Section II: Abelian "minimizes the communication meta-data while
synchronizing only the updated labels, thereby further reducing
communication volume".  These tests pin that behaviour: shipped updates
track actual label changes, not pair sizes x rounds, and quiet rounds
ship (nearly) nothing.
"""

import numpy as np

from repro.apps import Bfs, PageRank
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import rmat


def run(graph, app, hosts=4, layer="lci", **kw):
    eng = BspEngine(graph, app, EngineConfig(num_hosts=hosts, layer=layer, **kw))
    m = eng.run()
    return eng, m


def test_bfs_ships_bounded_updates():
    """Total shipped updates are bounded by label improvements, far below
    the worst case of (pair sizes x rounds)."""
    g = rmat(9, edge_factor=8, seed=3)
    eng, m = run(g, Bfs(source=0), hosts=8)
    worst_case = m.rounds * sum(
        len(sp)
        for pairs in (eng.partition.reduce_pairs, eng.partition.bcast_pairs)
        for sp in pairs.values()
    )
    assert 0 < m.updates_shipped < 0.6 * worst_case
    # Each proxy's label can only improve a few times (BFS levels are
    # bounded by the round count), so updates are O(proxies x rounds)
    # but concentrated in the expansion rounds.
    total_proxies = sum(lg.num_local for lg in eng.partition.locals)
    assert m.updates_shipped < total_proxies * m.rounds


def test_payload_bytes_accounted():
    g = rmat(8, edge_factor=8, seed=3)
    _, m = run(g, Bfs(source=0), hosts=4)
    assert m.payload_bytes_sent > 0
    assert m.blobs_sent > 0
    # Header-only floor: every blob carries at least the header.
    from repro.comm.serialization import HEADER_BYTES
    assert m.payload_bytes_sent >= m.blobs_sent * HEADER_BYTES


def test_unreachable_source_ships_almost_nothing():
    """A BFS from an isolated source converges with ~no update traffic."""
    import numpy as np
    from repro.graph.csr import CsrGraph

    # Node 0 is isolated; the rest form a chain.
    src = np.arange(1, 9)
    dst = np.arange(2, 10)
    g = CsrGraph.from_edges(src, dst, 10)
    eng, m = run(g, Bfs(source=0), hosts=3)
    assert m.updates_shipped == 0  # nothing ever improves off-host


def test_converged_pagerank_rounds_go_quiet():
    """With a loose tolerance, later rounds ship fewer updates."""
    g = rmat(8, edge_factor=8, seed=3)
    app_long = PageRank(max_rounds=30, tol=1e-3)
    _, m = run(g, app_long, hosts=4)
    # Converged early thanks to the tolerance.
    assert m.rounds < 30
    per_round = m.updates_shipped / m.rounds
    app_dense = PageRank(max_rounds=m.rounds, tol=0.0)
    _, dense = run(g, app_dense, hosts=4)
    dense_per_round = dense.updates_shipped / dense.rounds
    # Same rounds, but the tol run stops shipping converged masters.
    assert per_round <= dense_per_round


def test_layers_ship_identical_volume():
    """Update selection is engine logic: identical across layers."""
    g = rmat(8, edge_factor=8, seed=5)
    volumes = set()
    for layer in ("lci", "mpi-probe", "mpi-rma"):
        _, m = run(g, Bfs(source=0), hosts=4, layer=layer)
        volumes.add((m.updates_shipped, m.payload_bytes_sent))
    assert len(volumes) == 1
