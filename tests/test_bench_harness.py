"""Tests for the benchmark harness: reports, scenarios, microbench API."""

import pytest

from repro.bench.micro import message_rate, pingpong_latency
from repro.bench.report import format_seconds, format_table, geomean_speedup
from repro.bench.scenarios import Scenario, cached_graph, run_scenario


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------
def test_format_seconds_units():
    assert format_seconds(2.5) == "2.50s"
    assert format_seconds(3.2e-3) == "3.20ms"
    assert format_seconds(4.56e-6) == "4.56us"


def test_format_table_alignment():
    rows = [{"a": 1, "bb": "xx"}, {"a": 100, "bb": "y"}]
    out = format_table(rows)
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(l) == len(lines[0]) for l in lines)
    assert "bb" in lines[0]


def test_format_table_explicit_columns():
    rows = [{"a": 1, "b": 2}]
    out = format_table(rows, columns=["b"])
    assert "a" not in out.splitlines()[0]


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_geomean_speedup():
    base = {"x": 2.0, "y": 8.0}
    fast = {"x": 1.0, "y": 2.0}
    assert geomean_speedup(base, fast) == pytest.approx((2 * 4) ** 0.5)


def test_geomean_speedup_requires_matching_keys():
    with pytest.raises(ValueError, match="matching"):
        geomean_speedup({"x": 1.0}, {"y": 1.0})


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def test_cached_graph_identity():
    g1 = cached_graph("rmat", 7, 1, False)
    g2 = cached_graph("rmat", 7, 1, False)
    assert g1 is g2
    assert cached_graph("rmat", 7, 2, False) is not g1


def test_scenario_label():
    sc = Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="lci")
    assert sc.label() == "abelian/bfs/rmat10@8h/lci"


def test_run_scenario_basic():
    sc = Scenario(app="bfs", graph="rmat", scale=8, hosts=4, layer="lci")
    m = run_scenario(sc)
    assert m.app == "bfs" and m.num_hosts == 4
    assert m.total_seconds > 0
    assert m.policy == "cvc"


def test_run_scenario_gemini_edge_cut():
    sc = Scenario(
        app="bfs", graph="rmat", scale=8, hosts=4, layer="mpi-probe",
        system="gemini",
    )
    m = run_scenario(sc)
    assert m.policy == "edge-cut"


def test_run_scenario_gemini_rma_rejected():
    sc = Scenario(
        app="bfs", graph="rmat", scale=8, hosts=4, layer="mpi-rma",
        system="gemini",
    )
    with pytest.raises(ValueError, match="Gemini"):
        run_scenario(sc)


def test_run_scenario_unknown_system():
    sc = Scenario(
        app="bfs", graph="rmat", scale=8, hosts=2, layer="lci",
        system="powergraph",
    )
    with pytest.raises(ValueError, match="unknown system"):
        run_scenario(sc)


def test_run_scenario_sssp_gets_weights():
    sc = Scenario(app="sssp", graph="rmat", scale=8, hosts=4, layer="lci")
    m = run_scenario(sc)
    assert m.app == "sssp" and m.rounds > 0


def test_run_scenario_stampede1_scales_mpi_costs():
    base = Scenario(
        app="pagerank", graph="kron", scale=9, hosts=8,
        layer="mpi-probe", pagerank_rounds=5,
    )
    s1 = Scenario(
        app="pagerank", graph="kron", scale=9, hosts=8,
        layer="mpi-probe", machine="stampede1", pagerank_rounds=5,
    )
    m2 = run_scenario(base)
    m1 = run_scenario(s1)
    # Faster cores: cheaper software path per message on Stampede1.
    assert m1.total_seconds < m2.total_seconds


def test_run_scenario_pagerank_round_cap():
    sc = Scenario(
        app="pagerank", graph="rmat", scale=8, hosts=2, layer="lci",
        pagerank_rounds=3,
    )
    assert run_scenario(sc).rounds == 3


def test_run_scenario_lci_pool_overrides():
    sc = Scenario(
        app="bfs", graph="rmat", scale=8, hosts=2, layer="lci",
        lci_pool_packets_per_host=0, lci_pool_packets_min=16,
        lci_packet_bytes=2048,
    )
    m = run_scenario(sc)
    # The fixed pool footprint reflects the override: 16 x 2 KiB.
    assert min(m.footprint_per_host) >= 16 * 2048


def test_run_scenario_work_scale_inflates_compute_only():
    a = Scenario(app="pagerank", graph="rmat", scale=9, hosts=4,
                 layer="lci", pagerank_rounds=5)
    b = Scenario(app="pagerank", graph="rmat", scale=9, hosts=4,
                 layer="lci", pagerank_rounds=5, work_scale=10.0)
    ma, mb = run_scenario(a), run_scenario(b)
    assert mb.compute_seconds == pytest.approx(10 * ma.compute_seconds, rel=1e-6)


# ---------------------------------------------------------------------------
# micro API validation
# ---------------------------------------------------------------------------
def test_pingpong_rejects_unknown_interface():
    with pytest.raises(ValueError, match="unknown interface"):
        pingpong_latency("tcp", 8)


def test_message_rate_rejects_unknown_interface():
    with pytest.raises(ValueError, match="unknown interface"):
        message_rate("tcp", 2)


def test_pingpong_monotone_in_size():
    small = pingpong_latency("queue", 8, iters=10)
    big = pingpong_latency("queue", 65536, iters=10)
    assert big > small
