"""Cross-layer conformance tests: MPI-Probe, MPI-RMA, and LCI layers must
all deliver the same gather-communicate-scatter semantics."""

import numpy as np
import pytest

from repro.comm import make_layers
from repro.comm.serialization import pack_updates
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2

LAYERS = ["lci", "mpi-probe", "mpi-rma"]


def make_world(layer_name, num_hosts):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    layers = make_layers(layer_name, env, fabric, stampede2())
    return env, layers


def all_pairs(num_hosts):
    """Sync-pair stand-ins: every ordered pair, 64-element pairs."""
    pairs = {}
    for a in range(num_hosts):
        for b in range(num_hosts):
            if a != b:
                class _P:  # minimal stand-in with len()
                    def __len__(self):
                        return 64
                pairs[(a, b)] = _P()
    return pairs


def run_exchange(layer_name, num_hosts, rounds=2, payload_words=16):
    """Every host sends a distinct blob to every other host each round."""
    env, layers = make_world(layer_name, num_hosts)
    pairs = all_pairs(num_hosts)
    received = {h: [] for h in range(num_hosts)}
    peers = {
        h: [p for p in range(num_hosts) if p != h] for h in range(num_hosts)
    }

    def host_proc(h):
        layer = layers[h]
        yield from layer.setup(
            reduce_pairs=pairs, bcast_pairs=None, field_bytes=8,
            patterns=("reduce",),
        )
        for rnd in range(rounds):
            phase = (rnd, "reduce")
            yield from layer.phase_begin(phase, peers[h], peers[h])
            for dst in peers[h]:
                vals = np.full(payload_words, h * 1000 + rnd, dtype=np.int64)
                blob = pack_updates(
                    np.arange(payload_words), vals, 64, 8, phase=phase
                )
                yield from layer.send(dst, blob)
            yield from layer.flush(phase)
            got = yield from layer.collect(phase, peers[h])
            for src, blob in got:
                received[h].append((rnd, src, int(blob.values[0])))
                layer.consume(blob)
            yield from layer.phase_end(phase)
        layer.shutdown()

    procs = [env.process(host_proc(h)) for h in range(num_hosts)]
    env.run(max_events=5_000_000)
    for p in procs:
        assert p.triggered and p.ok, f"host process died: {p}"
    return env, layers, received


@pytest.mark.parametrize("layer_name", LAYERS)
def test_all_to_all_exchange_delivers_everything(layer_name):
    num_hosts = 4
    rounds = 2
    env, layers, received = run_exchange(layer_name, num_hosts, rounds)
    for h in range(num_hosts):
        expected = {
            (rnd, src, src * 1000 + rnd)
            for rnd in range(rounds)
            for src in range(num_hosts)
            if src != h
        }
        assert set(received[h]) == expected, f"host {h} mismatch"


@pytest.mark.parametrize("layer_name", LAYERS)
def test_exchange_takes_positive_time(layer_name):
    env, _layers, _ = run_exchange(layer_name, 2, rounds=1)
    assert env.now > 0


@pytest.mark.parametrize("layer_name", ["lci", "mpi-probe"])
def test_staging_buffers_fully_released(layer_name):
    """After all rounds, transient buffers are freed (no footprint leak)."""
    env, layers, _ = run_exchange(layer_name, 3, rounds=3)
    for layer in layers:
        fixed = 0
        if layer_name == "lci":
            fixed = layer.rt.pool.bytes_allocated()
        assert layer.footprint.current == fixed, (
            f"{layer_name} host {layer.host} leaked "
            f"{layer.footprint.current - fixed} bytes"
        )


def test_rma_footprint_dominated_by_windows():
    env, layers, _ = run_exchange("mpi-rma", 4, rounds=1)
    for layer in layers:
        win_bytes = sum(
            w.bytes_allocated(layer.host) for w in layer.windows.values()
        )
        assert win_bytes > 0
        assert layer.footprint.peak >= win_bytes


def test_lci_footprint_far_below_rma():
    """The Fig. 5 effect: with realistically sized sync pairs, RMA's
    worst-case preallocation dwarfs LCI's fixed pool."""

    def big_pairs(num_hosts, pair_len=1 << 17):
        class _P:
            def __len__(self):
                return pair_len

        return {
            (a, b): _P()
            for a in range(num_hosts)
            for b in range(num_hosts)
            if a != b
        }

    num_hosts = 4
    peaks = {}
    for layer_name in ("lci", "mpi-rma"):
        env = Environment()
        fabric = Fabric(env, num_hosts, stampede2())
        layers = make_layers(layer_name, env, fabric, stampede2())

        def host(h, layer=None):
            layer = layers[h]
            yield from layer.setup(
                reduce_pairs=big_pairs(num_hosts), field_bytes=8,
                patterns=("reduce",),
            )
            phase = (0, "reduce")
            peers = [p for p in range(num_hosts) if p != h]
            yield from layer.phase_begin(phase, peers, peers)
            for dst in peers:
                # Sparse update: only 100 of the 128Ki pair entries.
                blob = pack_updates(
                    np.arange(100), np.arange(100, dtype=np.int64),
                    1 << 17, 8, phase=phase,
                )
                yield from layer.send(dst, blob)
            yield from layer.flush(phase)
            got = yield from layer.collect(phase, peers)
            for _src, blob in got:
                layer.consume(blob)
            yield from layer.phase_end(phase)
            layer.shutdown()

        procs = [env.process(host(h)) for h in range(num_hosts)]
        env.run(max_events=5_000_000)
        assert all(p.ok for p in procs)
        peaks[layer_name] = max(l.footprint.peak for l in layers)
    # The paper reports up to an order of magnitude; require a clear gap.
    assert peaks["lci"] * 2 < peaks["mpi-rma"]


def test_probe_layer_aggregates_small_blobs():
    env, layers = make_world("mpi-probe", 2)
    done = []

    def sender(env):
        layer = layers[0]
        # Many tiny blobs to the same destination: aggregation kicks in.
        # Each has a distinct phase key (one blob per (src, phase)).
        for i in range(20):
            blob = pack_updates(
                np.arange(4), np.full(4, i, dtype=np.int64), 64, 8,
                phase=(i, "reduce"),
            )
            yield from layer.send(1, blob)
        yield from layer.flush()
        n = 0
        for i in range(20):
            got = yield from layers[1].collect((i, "reduce"), [0])
            n += len(got)
        done.append(n)

    env.process(sender(env))
    env.run(max_events=2_000_000)
    # 20 blobs arrived but in fewer MPI messages than blobs.
    assert done == [20]
    isends = layers[0].stats.counter_value("mpi_isends")
    assert 0 < isends < 20


def test_probe_layer_timeout_flush():
    env, layers = make_world("mpi-probe", 2)
    got_at = {}

    def sender(env):
        layer = layers[0]
        phase = (0, "reduce")
        blob = pack_updates(
            np.arange(2), np.zeros(2, dtype=np.int64), 64, 8, phase=phase
        )
        yield from layer.send(1, blob)  # small: parked in the aggregate
        # No flush() — the timeout must push it out.

    def receiver(env):
        got = yield from layers[1].collect((0, "reduce"), [0])
        got_at["t"] = env.now
        got_at["n"] = len(got)

    env.process(sender(env))
    env.process(receiver(env))
    env.run(max_events=2_000_000)
    assert got_at["n"] == 1
    assert got_at["t"] >= layers[0].flush_timeout


@pytest.mark.parametrize("layer_name", LAYERS)
def test_large_blob_rendezvous_path(layer_name):
    """Blobs above the eager limit travel the rendezvous/put path."""
    env, layers = make_world(layer_name, 2)
    pairs = all_pairs(2)
    result = {}
    big_words = 8192  # 64 KiB of values: above every eager limit

    def host(h):
        layer = layers[h]
        yield from layer.setup(
            reduce_pairs={(a, b): type("P", (), {"__len__": lambda s: big_words})()
                          for (a, b) in pairs},
            field_bytes=8, patterns=("reduce",),
        )
        phase = (0, "reduce")
        peer = 1 - h
        yield from layer.phase_begin(phase, [peer], [peer])
        blob = pack_updates(
            np.arange(big_words),
            np.full(big_words, 7 + h, dtype=np.int64),
            big_words, 8, phase=phase,
        )
        yield from layer.send(peer, blob)
        yield from layer.flush(phase)
        got = yield from layer.collect(phase, [peer])
        result[h] = (got[0][0], int(got[0][1].values[0]), got[0][1].count)
        layer.consume(got[0][1])
        yield from layer.phase_end(phase)
        layer.shutdown()

    procs = [env.process(host(h)) for h in range(2)]
    env.run(max_events=2_000_000)
    for p in procs:
        assert p.ok
    assert result[0] == (1, 8, big_words)
    assert result[1] == (0, 7, big_words)
