"""Tests for MPI one-sided windows with PSCW synchronization."""

import pytest

from repro.mpi import MpiWindow, MpiWorld, ThreadMode, intel_mpi
from repro.mpi.exceptions import MPIUsageError
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2


def make_world(num_hosts=4):
    env = Environment()
    fabric = Fabric(env, num_hosts, stampede2())
    world = MpiWorld(env, fabric, intel_mpi(), ThreadMode.MULTIPLE)
    return env, world


def all_pairs_window(world, slot=4096):
    return MpiWindow(world, size_fn=lambda o, t: slot, label="test-win")


def test_window_create_is_collective_and_allocates():
    env, world = make_world(4)
    win = all_pairs_window(world, slot=1000)
    done = []

    def worker(env, rank):
        yield from win.create(rank)
        done.append(rank)

    for r in range(4):
        env.process(worker(env, r))
    env.run()
    assert sorted(done) == [0, 1, 2, 3]
    # Each rank exposes one slot per possible origin.
    for r in range(4):
        assert win.bytes_allocated(r) == 3 * 1000


def test_pscw_put_delivers_payload():
    env, world = make_world(2)
    win = all_pairs_window(world)
    result = {}

    def origin(env):
        yield from win.create(0)
        yield from win.start(0, [1])
        yield from win.put(0, 1, 512, payload={"round": 1, "data": [1, 2, 3]})
        yield from win.complete(0)

    def target(env):
        yield from win.create(1)
        yield from win.post(1, [0])
        blobs = yield from win.wait(1)
        result["blobs"] = blobs

    env.process(origin(env))
    env.process(target(env))
    env.run()
    assert len(result["blobs"]) == 1
    src, payload, nbytes = result["blobs"][0]
    assert src == 0
    assert payload == {"round": 1, "data": [1, 2, 3]}
    assert nbytes == 512


def test_pscw_all_to_one():
    env, world = make_world(4)
    win = all_pairs_window(world)
    result = {}

    def origin(env, rank):
        yield from win.create(rank)
        yield from win.start(rank, [0])
        yield from win.put(rank, 0, 100 * rank, payload=f"from-{rank}")
        yield from win.complete(rank)

    def target(env):
        yield from win.create(0)
        yield from win.post(0, [1, 2, 3])
        blobs = yield from win.wait(0)
        result["blobs"] = {src: payload for src, payload, _ in blobs}

    for r in (1, 2, 3):
        env.process(origin(env, r))
    env.process(target(env))
    env.run()
    assert result["blobs"] == {1: "from-1", 2: "from-2", 3: "from-3"}


def test_fine_grained_test_wait_processes_early_arrivals_first():
    """The generalized active-target sync scatters per-origin on arrival."""
    env, world = make_world(3)
    win = all_pairs_window(world)
    order = []

    def origin(env, rank, delay):
        yield from win.create(rank)
        yield env.timeout(delay)
        yield from win.start(rank, [0])
        yield from win.put(rank, 0, 64, payload=rank)
        yield from win.complete(rank)

    def target(env):
        yield from win.create(0)
        yield from win.post(0, [1, 2])
        # Rank 2 completes much earlier; fine-grained wait sees it first.
        payload, _ = yield from win.test_wait(0, 2)
        order.append(payload)
        payload, _ = yield from win.test_wait(0, 1)
        order.append(payload)
        win.finish_exposure(0)

    env.process(origin(env, 1, delay=5e-4))
    env.process(origin(env, 2, delay=0.0))
    env.process(target(env))
    env.run()
    assert order == [2, 1]


def test_put_outside_epoch_rejected():
    env, world = make_world(2)
    win = all_pairs_window(world)

    def bad(env):
        yield from win.create(0)
        yield from win.put(0, 1, 64, payload="x")

    def other(env):
        yield from win.create(1)

    env.process(bad(env))
    env.process(other(env))
    with pytest.raises(MPIUsageError, match="outside access epoch"):
        env.run()


def test_put_exceeding_slot_rejected():
    env, world = make_world(2)
    win = MpiWindow(world, size_fn=lambda o, t: 100)

    def origin(env):
        yield from win.create(0)
        yield from win.start(0, [1])
        yield from win.put(0, 1, 5000, payload="too big")

    def target(env):
        yield from win.create(1)
        yield from win.post(1, [0])

    env.process(origin(env))
    env.process(target(env))
    with pytest.raises(MPIUsageError, match="worst-case"):
        env.run()


def test_zero_size_pairs_get_no_buffer():
    env, world = make_world(3)
    # Only 1->0 communicates.
    win = MpiWindow(
        world, size_fn=lambda o, t: 256 if (o, t) == (1, 0) else 0
    )
    assert win.bytes_allocated(0) == 256
    assert win.bytes_allocated(1) == 0
    assert win.bytes_allocated(2) == 0


def test_repeated_epochs_reuse_window():
    env, world = make_world(2)
    win = all_pairs_window(world)
    rounds_received = []

    def origin(env):
        yield from win.create(0)
        for rnd in range(3):
            yield from win.start(0, [1])
            yield from win.put(0, 1, 64, payload=f"r{rnd}")
            yield from win.complete(0)

    def target(env):
        yield from win.create(1)
        for _ in range(3):
            yield from win.post(1, [0])
            blobs = yield from win.wait(1)
            rounds_received.append(blobs[0][1])

    env.process(origin(env))
    env.process(target(env))
    env.run()
    assert rounds_received == ["r0", "r1", "r2"]


def test_start_blocks_until_post():
    env, world = make_world(2)
    win = all_pairs_window(world)
    times = {}

    def origin(env):
        yield from win.create(0)
        t0 = env.now
        yield from win.start(0, [1])
        times["start_returned"] = env.now
        times["start_called"] = t0
        yield from win.complete(0)

    def target(env):
        yield from win.create(1)
        yield env.timeout(1e-3)
        times["posted_at"] = env.now
        yield from win.post(1, [0])
        yield from win.wait(1)

    env.process(origin(env))
    env.process(target(env))
    env.run()
    assert times["start_returned"] >= times["posted_at"]
