"""Tests for the execution tracer and its engine integration."""

import json
import os

import pytest

from repro.apps import Bfs
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import rmat
from repro.sim.engine import Environment
from repro.sim.trace import Span, Tracer


def test_span_duration():
    s = Span(0, "main", "compute", "round 0", 1.0, 3.5)
    assert s.duration == 2.5


def test_begin_end_uses_env_clock():
    env = Environment()
    tr = Tracer(env)
    log = []

    def proc(env):
        h = tr.begin(0, "work", "step", actor="t0", round=1)
        yield env.timeout(2.0)
        span = tr.end(h, items=5)
        log.append(span)

    env.process(proc(env))
    env.run()
    (span,) = log
    assert span.start == 0.0 and span.end == 2.0
    assert span.args == {"round": 1, "items": 5}
    assert tr.spans == [span]


def test_disabled_tracer_records_nothing():
    env = Environment()
    tr = Tracer(env, enabled=False)
    assert tr.begin(0, "c", "n") is None
    tr.record(0, "c", "n", 0, 1)
    tr.instant(0, "n", 0)
    assert len(tr) == 0


def test_begin_without_env_raises():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.begin(0, "c", "n")


def test_filtering_and_totals():
    tr = Tracer(enabled=True)
    tr.record(0, "compute", "r0", 0.0, 1.0)
    tr.record(0, "compute", "r1", 2.0, 2.5)
    tr.record(1, "compute", "r0", 0.0, 4.0)
    tr.record(0, "comm", "r0", 1.0, 2.0)
    assert len(tr.spans_for(host=0)) == 3
    assert len(tr.spans_for(category="compute")) == 3
    assert len(tr.spans_for(host=0, category="compute")) == 2
    assert tr.total_time(0, "compute") == pytest.approx(1.5)


def test_chrome_trace_export(tmp_path):
    tr = Tracer()
    tr.record(0, "compute", "r0", 0.0, 1e-6, actor="main", edges=10)
    tr.instant(1, "barrier", 2e-6, round=0)
    path = tr.save(str(tmp_path / "trace.json"))
    with open(path) as f:
        data = json.load(f)
    events = data["traceEvents"]
    x = [e for e in events if e["ph"] == "X"]
    i = [e for e in events if e["ph"] == "i"]
    m = [e for e in events if e["ph"] == "M"]
    assert len(x) == 1 and x[0]["dur"] == pytest.approx(1.0)  # us
    assert len(i) == 1 and i[0]["name"] == "barrier"
    assert {e["pid"] for e in m} == {0, 1}


def test_metadata_rows_sorted_and_complete():
    tr = Tracer()
    tr.record(2, "compute", "r0", 0.0, 1e-6)
    tr.record(0, "compute", "r0", 0.0, 1e-6)
    tr.record(1, "compute", "r0", 0.0, 1e-6)
    m = [e for e in tr.to_chrome_trace()["traceEvents"] if e["ph"] == "M"]
    # process_name + process_sort_index per host, in ascending host order.
    hosts = [e["pid"] for e in m if e["name"] == "process_name"]
    assert hosts == [0, 1, 2]
    sort_rows = [e for e in m if e["name"] == "process_sort_index"]
    assert [e["args"]["sort_index"] for e in sort_rows] == [0, 1, 2]


def test_save_is_atomic(tmp_path):
    """save() replaces the destination in one step: a crashed or raced
    writer can never leave a truncated JSON behind."""
    tr = Tracer()
    tr.record(0, "compute", "r0", 0.0, 1e-6)
    path = tmp_path / "trace.json"
    path.write_text("stale-but-parseable-must-survive-until-replace")
    tr.save(str(path))
    with open(path) as f:
        json.load(f)  # fully written
    assert os.listdir(tmp_path) == ["trace.json"]  # no temp droppings


def test_atomic_write_json_cleans_up_on_failure(tmp_path):
    from repro.sim.trace import atomic_write_json

    path = tmp_path / "out.json"
    with pytest.raises(TypeError):
        atomic_write_json(str(path), {"bad": object()})
    assert os.listdir(tmp_path) == []


def test_engine_emits_spans():
    g = rmat(7, edge_factor=8, seed=3)
    tracer = Tracer()
    cfg = EngineConfig(num_hosts=4, layer="lci", tracer=tracer)
    eng = BspEngine(g, Bfs(source=0), cfg)
    metrics = eng.run()
    # One compute span per host per round, plus allreduce spans.
    comp = tracer.spans_for(category="compute")
    assert len(comp) == 4 * metrics.rounds
    assert tracer.spans_for(category="allreduce")
    # Tracer totals agree with the metrics' compute accounting.
    for h in range(4):
        assert tracer.total_time(h, "compute") == pytest.approx(
            sum(eng._compute_rounds[h]), rel=1e-9
        )
    # The trace exports cleanly.
    payload = tracer.to_chrome_trace()
    assert any(e["ph"] == "X" for e in payload["traceEvents"])
