"""Table IV — other MPI implementations vs LCI.

Paper: "we ran some experiments using OpenMPI (commit f9b157) and
MVAPICH 2.3b ... The results show that LCI remains the winner
compared to other MPI implementations.  There is no clear winner between
different MPI implementations, though IntelMPI-RMA performs best in the
majority of cases.  LCI is again closest in performance to RMA
implementations, and is better if we include time for window creation in
the result."
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.bench.scenarios import Scenario, run_scenario

HOSTS = 64
SCALE = 12
APPS = ["pagerank", "cc"]
MPIS = ["intelmpi", "mvapich2", "openmpi"]


def run_table4():
    out = {}
    for app in APPS:
        sc = Scenario(
            app=app, graph="kron", scale=SCALE, hosts=HOSTS,
            layer="lci", system="abelian", pagerank_rounds=10,
        )
        out[(app, "lci")] = run_scenario(sc)
        for impl in MPIS:
            for layer in ("mpi-probe", "mpi-rma"):
                sc = Scenario(
                    app=app, graph="kron", scale=SCALE, hosts=HOSTS,
                    layer=layer, system="abelian", mpi_impl=impl,
                    pagerank_rounds=10,
                )
                out[(app, f"{impl}-{layer[4:]}")] = run_scenario(sc)
    return out


def test_table4_mpi_implementations(benchmark, results_sink):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    configs = ["lci"] + [
        f"{impl}-{kind}" for impl in MPIS for kind in ("probe", "rma")
    ]
    rows = []
    for app in APPS:
        row = {"app": app}
        for c in configs:
            m = results[(app, c)]
            row[c + "_ms"] = round(m.total_seconds * 1e3, 3)
            if c.endswith("rma"):
                row[c + "+win_ms"] = round(
                    (m.total_seconds + m.setup_seconds) * 1e3, 3
                )
        rows.append(row)
    emit(f"Table IV: MPI implementations vs LCI, kron{SCALE} @ {HOSTS} hosts "
         "(window-creation time excluded, and shown as +win)",
         format_table(rows))
    results_sink("table4_mpi_impls", rows)

    for app in APPS:
        lci = results[(app, "lci")].total_seconds
        mpi_times = {
            c: results[(app, c)].total_seconds for c in configs if c != "lci"
        }
        # LCI remains the winner against every MPI configuration.
        assert lci < min(mpi_times.values()), app
        # LCI is closest in performance to the RMA implementations.
        best_rma = min(v for c, v in mpi_times.items() if c.endswith("rma"))
        best_probe = min(v for c, v in mpi_times.items() if c.endswith("probe"))
        assert best_rma < best_probe, app
        # IntelMPI-RMA is the best MPI configuration.
        assert (
            results[(app, "intelmpi-rma")].total_seconds
            == best_rma
        ), app
        # Including window creation, LCI beats RMA by an even wider margin.
        with_win = (
            results[(app, "intelmpi-rma")].total_seconds
            + results[(app, "intelmpi-rma")].setup_seconds
        )
        assert with_win > best_rma
