"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper.  The
quantity of interest is *simulated* time (the cluster's clock), not the
harness's wall time; pytest-benchmark wraps the simulation run so
``--benchmark-only`` reports harness cost, while the reproduced numbers
are printed as tables and saved as JSON under ``benchmarks/results/``
for EXPERIMENTS.md.
"""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def results_sink():
    """Save a named result payload to benchmarks/results/<name>.json."""

    def _save(name, payload):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.json")
        with open(path, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
        return path

    return _save


def emit(title, text):
    """Print a reproduced table under a banner (shows with pytest -s)."""
    bar = "=" * len(title)
    print(f"\n{title}\n{bar}\n{text}\n")
