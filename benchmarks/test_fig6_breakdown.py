"""Fig. 6 — per-iteration breakdown: computation vs non-overlapped
communication, kron at high host count.

Paper: "We measured the computation time of each iteration or round on
each host.  We consider the maximum across hosts for each iteration and
take the sum of those values to report the computation time.  The rest
of the execution time is the non-overlapped communication time.  ...
As expected, the changes in performance come from the communication
component.  In most applications, LCI performs best, or comparable to
MPI-RMA."

The engine computes the breakdown exactly that way.  ``work_scale``
restores the paper's per-host work (its kron30 carries ~10^4x more edges
per host than the harness graph), so the compute/comm ratio in the
printed figure resembles the original.
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.bench.scenarios import Scenario, run_scenario

HOSTS = 64
SCALE = 12
APPS = ["bfs", "cc", "pagerank", "sssp"]
LAYERS = ["lci", "mpi-probe", "mpi-rma"]
WORK_SCALE = 40.0


def run_fig6():
    out = {}
    for app in APPS:
        for layer in LAYERS:
            sc = Scenario(
                app=app, graph="kron", scale=SCALE, hosts=HOSTS,
                layer=layer, system="abelian", pagerank_rounds=10,
                work_scale=WORK_SCALE,
            )
            out[(app, layer)] = run_scenario(sc)
    return out


def test_fig6_compute_comm_breakdown(benchmark, results_sink):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    rows = []
    for app in APPS:
        for layer in LAYERS:
            m = results[(app, layer)]
            rows.append({
                "app": app,
                "layer": layer,
                "compute_ms": round(m.compute_seconds * 1e3, 3),
                "non_overlap_comm_ms": round(m.comm_seconds * 1e3, 3),
                "total_ms": round(m.total_seconds * 1e3, 3),
            })
    emit(
        f"Fig 6: compute vs non-overlapped communication, kron{SCALE} @ "
        f"{HOSTS} hosts (work_scale={WORK_SCALE})",
        format_table(rows),
    )
    results_sink("fig6_breakdown", rows)

    for app in APPS:
        comps = [results[(app, l)].compute_seconds for l in LAYERS]
        comms = {l: results[(app, l)].comm_seconds for l in LAYERS}
        # Computation time is (near-)identical across layers: the layer
        # only changes the communication component.
        assert max(comps) < 1.15 * min(comps), app
        # LCI has the smallest (or tied-smallest) comm component.
        assert comms["lci"] <= min(comms.values()) * 1.02, app
        # Probe's comm component exceeds LCI's by a clear margin.
        assert comms["mpi-probe"] > 1.3 * comms["lci"], app
