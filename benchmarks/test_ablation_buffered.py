"""Ablation — the buffered network layer under the MPI-Probe runtime.

Section III-B: without back pressure, MPI's eager protocol exhausts its
buffers under Abelian's traffic and "may cause MPI to either seg-fault or
hang due to unrecoverable errors" (observed with MVAPICH2 and IntelMPI).
The buffered layer aggregates small items per destination, capping the
number of outstanding eager sends.

This ablation reproduces the failure: a burst of small messages to a
slow consumer with realistic per-peer eager credits.

* buffered layer ON  -> the aggregate exceeds the eager limit, travels by
  rendezvous, and everything completes;
* buffered layer OFF + IntelMPI semantics (abort on exhaustion) ->
  ``MPIResourceExhausted``, the paper's seg-fault;
* buffered layer OFF + OpenMPI semantics (stall) -> completes but only
  after head-of-line stalls.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.comm.probe_layer import ProbeCommLayer
from repro.comm.serialization import pack_updates
from repro.mpi.exceptions import MPIResourceExhausted
from repro.mpi.presets import intel_mpi, openmpi
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2

N_MSGS = 120
CREDITS = 16


def run_burst(buffered: bool, crash: bool):
    """Returns ("ok", finish_time) or ("crash", exception message)."""
    env = Environment()
    machine = stampede2()
    fabric = Fabric(env, 2, machine)
    base = intel_mpi() if crash else openmpi()
    cfg = base.with_(eager_credits_per_peer=CREDITS, crash_on_exhaustion=crash)
    layers = ProbeCommLayer.create_world(
        env, fabric, machine, mpi_config=cfg, buffered=buffered,
    )
    done = {}

    def sender(env):
        layer = layers[0]
        for i in range(N_MSGS):
            blob = pack_updates(
                np.arange(8), np.full(8, i, dtype=np.int64), 64, 8,
                phase=(i, "x"),
            )
            yield from layer.send(1, blob)
        yield from layer.flush()
        done["sender_t"] = env.now

    def consumer(env):
        layer = layers[1]
        # Slow consumer: stays away while the burst lands.
        yield env.timeout(2e-3)
        for i in range(N_MSGS):
            got = yield from layer.collect((i, "x"), [0])
            layer.consume(got[0][1])
        # Drain time: how long consuming took once the consumer showed up.
        done["drain"] = env.now - 2e-3
        for l in layers:
            l.shutdown()

    env.process(sender(env))
    env.process(consumer(env))
    try:
        env.run(max_events=20_000_000)
    except MPIResourceExhausted as e:
        return ("crash", None)
    # How often the sending side ran out of eager buffers and had to
    # stall (the pressure the buffered layer is designed to absorb).
    ep0 = layers[0].ep
    return ("ok", ep0.stats.counter_value("eager_stalls"))


def test_ablation_buffered_layer(benchmark, results_sink):
    def run_all():
        return {
            "buffered": run_burst(buffered=True, crash=True),
            "unbuffered-abort": run_burst(buffered=False, crash=True),
            "unbuffered-stall": run_burst(buffered=False, crash=False),
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (status, detail) in outcomes.items():
        rows.append({
            "configuration": name,
            "outcome": status,
            "detail": (f"{detail} eager-buffer stalls"
                       if status == "ok" else "resource exhaustion abort"),
        })
    emit(f"Ablation: buffered network layer ({N_MSGS} small msgs, "
         f"{CREDITS} eager credits/peer)", format_table(rows))
    results_sink("ablation_buffered", {
        k: {"status": s, "detail": str(d)} for k, (s, d) in outcomes.items()
    })

    # The buffered layer turns a fatal burst into a completed run.
    assert outcomes["buffered"][0] == "ok"
    # Without it, IntelMPI-style semantics abort (the paper's seg-fault)...
    assert outcomes["unbuffered-abort"][0] == "crash"
    # ...and stall-style semantics survive only by repeatedly stalling
    # the producer on exhausted eager buffers, while the buffered layer
    # never touches that limit (its aggregates ride rendezvous).
    assert outcomes["unbuffered-stall"][0] == "ok"
    assert outcomes["unbuffered-stall"][1] > 0
    assert outcomes["buffered"][1] == 0
