"""Fig. 1 — latency and message-rate microbenchmark, three interfaces.

Paper: "using LCI significantly reduces the overhead of the communication
by up to a factor of 3.5x in comparison to probe", with interface
ordering queue < no-probe < probe for latency, and MPI message rates
tapering with thread count while LCI's keep rising.
"""

import pytest

from conftest import emit
from repro.bench.micro import MICRO_INTERFACES, message_rate, pingpong_latency
from repro.bench.report import format_table

SIZES = [8, 64, 512, 4096, 16384, 65536]
THREADS = [1, 2, 4, 8, 16, 32, 64]


def run_fig1():
    latency_rows = []
    for size in SIZES:
        row = {"msg_bytes": size}
        for iface in MICRO_INTERFACES:
            row[iface + "_us"] = round(
                pingpong_latency(iface, size, iters=30) * 1e6, 3
            )
        row["probe/queue"] = round(row["probe_us"] / row["queue_us"], 2)
        latency_rows.append(row)

    rate_rows = []
    for t in THREADS:
        row = {"threads": t}
        for iface in MICRO_INTERFACES:
            row[iface + "_Mmsg/s"] = round(
                message_rate(iface, t, window=16) / 1e6, 3
            )
        rate_rows.append(row)
    return latency_rows, rate_rows


def test_fig1_microbenchmarks(benchmark, results_sink):
    latency_rows, rate_rows = benchmark.pedantic(
        run_fig1, rounds=1, iterations=1
    )
    emit("Fig 1a: one-way latency (us) vs message size",
         format_table(latency_rows))
    emit("Fig 1b: message rate (M msg/s) vs threads per host",
         format_table(rate_rows))
    results_sink("fig1_microbench", {
        "latency": latency_rows, "rate": rate_rows,
    })

    # --- shape assertions (the paper's qualitative claims) -------------
    for row in latency_rows:
        # queue is the fastest interface at every size...
        assert row["queue_us"] < row["no-probe_us"] < row["probe_us"] * 1.05
    # ...with a significant factor over probe for small messages.
    small = latency_rows[0]
    assert small["probe/queue"] > 1.5

    # Message rate: LCI above both MPI modes everywhere.
    for row in rate_rows:
        assert row["queue_Mmsg/s"] > row["no-probe_Mmsg/s"]
        assert row["queue_Mmsg/s"] > row["probe_Mmsg/s"]
    # MPI-probe tapers off at high thread counts; LCI keeps rising.
    probe_rates = [r["probe_Mmsg/s"] for r in rate_rows]
    queue_rates = [r["queue_Mmsg/s"] for r in rate_rows]
    assert probe_rates[-1] < max(probe_rates)
    assert queue_rates[-1] == max(queue_rates)
