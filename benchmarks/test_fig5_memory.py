"""Fig. 5 — communication-buffer memory footprint: LCI vs MPI-RMA.

Paper: "The memory footprint of LCI is much smaller for all applications
on all hosts than MPI-RMA.  Due to its design, LCI can quickly recycle
buffers ...  Maximum and minimum memory footprints for MPI-RMA are close
to each other.  The memory usage of MPI-RMA can be up to an order of
magnitude higher than that of LCI because MPI-RMA has to preallocate all
buffers with a size that is the upper-bound of memory required for
communication."

Footprints count the memory allocated by the runtime's own communication
buffers (the paper likewise excludes MPI-internal memory): for LCI the
fixed packet pool plus transient gather/landing buffers, for MPI-RMA the
preallocated worst-case windows plus gather staging held across each
access epoch.

Scale note (recorded in EXPERIMENTS.md): the paper's 10x gap arises
because at kron30 scale the data-driven per-round volume is a small
fraction of the all-nodes-active worst case the windows are sized for.
At the harness's reduced scale a single peak round communicates a large
fraction of every sync pair, so actual transient volume approaches the
worst case and the ratio compresses to ~1.3-2x.  The *invariants* are
preserved and asserted: RMA exceeds LCI on every host for every app, the
gap is structural (windows vs pool+transients — also printed as a
diagnostic), RMA's footprint is flat across hosts while LCI's varies
with data, and LCI gives up no performance for the memory win.
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.bench.scenarios import Scenario, run_scenario
from repro.comm.rma_layer import worst_case_blob_bytes

HOSTS = 16
SCALE = 17
APPS = ["bfs", "cc", "pagerank", "sssp"]

#: Scale-reduced pool geometry: the pool stays "a small constant times
#: the number of hosts" in packets, with packet bytes shrunk with the
#: graph so the pool does not dwarf the scaled-down windows.
POOL_KW = dict(
    lci_pool_packets_per_host=2,
    lci_packet_bytes=1024,
    lci_pool_packets_min=16,
)


def run_fig5():
    out = {}
    for app in APPS:
        for layer in ("lci", "mpi-rma"):
            sc = Scenario(
                app=app, graph="kron", scale=SCALE, hosts=HOSTS,
                layer=layer, system="abelian", pagerank_rounds=10,
                **(POOL_KW if layer == "lci" else {}),
            )
            out[(app, layer)] = run_scenario(sc)
    return out


def test_fig5_memory_footprint(benchmark, results_sink):
    results = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    rows = []
    for app in APPS:
        lci = results[(app, "lci")]
        rma = results[(app, "mpi-rma")]
        rows.append({
            "app": app,
            "lci_min_KiB": round(lci.min_footprint / 1024, 1),
            "lci_max_KiB": round(lci.max_footprint / 1024, 1),
            "rma_min_KiB": round(rma.min_footprint / 1024, 1),
            "rma_max_KiB": round(rma.max_footprint / 1024, 1),
            "rma/lci(max)": round(rma.max_footprint / lci.max_footprint, 2),
        })
    emit(
        f"Fig 5: comm-buffer memory footprint, kron{SCALE} @ {HOSTS} hosts "
        "(max / min across hosts)",
        format_table(rows),
    )
    results_sink("fig5_memory", rows)

    for app in APPS:
        lci = results[(app, "lci")]
        rma = results[(app, "mpi-rma")]
        # RMA's footprint exceeds LCI's on every host, for every app.
        assert lci.max_footprint < rma.max_footprint, app
        assert lci.min_footprint < rma.min_footprint, app
        # RMA is structurally flat across hosts relative to LCI, whose
        # footprint is data-dependent (recycled transients).
        rma_spread = rma.max_footprint / rma.min_footprint
        lci_spread = lci.max_footprint / lci.min_footprint
        assert rma_spread < lci_spread * 1.1, app
        # The memory win costs no performance.
        assert lci.total_seconds <= rma.total_seconds * 1.05, app

    # The structural gap (preallocated worst case vs fixed pool): compare
    # the window bytes RMA preallocates against LCI's entire pool.
    any_lci = results[("bfs", "lci")]
    any_rma = results[("bfs", "mpi-rma")]
    pool_bytes = POOL_KW["lci_pool_packets_min"] * POOL_KW["lci_packet_bytes"]
    # Windows alone (min across hosts) dwarf the whole LCI pool.
    assert any_rma.min_footprint > 4 * pool_bytes
    emit(
        "Fig 5 structural diagnostic",
        f"LCI fixed pool: {pool_bytes / 1024:.0f} KiB/host; MPI-RMA "
        f"preallocation (min host): {any_rma.min_footprint / 1024:.0f} KiB "
        f"— the worst-case-window vs fixed-pool gap of the paper.",
    )
