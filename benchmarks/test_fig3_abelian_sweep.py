"""Fig. 3 — Abelian total execution time vs host count, three layers.

Paper: "With MPI two-sided, Abelian does not scale well ...  LCI on the
other hand, is able to achieve comparable or better performance than
MPI-RMA at various settings.  ...  the improvement is more significant
when the application runs with more iterations ...  like in the case of
pagerank.  At 128 hosts, LCI achieves a geometric mean speedup of 1.34x
over MPI-Probe and 1.08x over MPI-RMA."

This bench sweeps hosts x apps x graphs x layers, prints the series the
figure plots, and asserts the shape claims: LCI never loses; its
advantage over MPI-Probe *grows* with host count; pagerank shows the
biggest gap; geomean speedups at the top host count are material.
"""

import pytest

from conftest import emit
from repro.bench.report import format_table, geomean_speedup
from repro.bench.scenarios import Scenario, run_scenario

HOSTS = [4, 16, 64]
APPS = ["bfs", "cc", "pagerank", "sssp"]
GRAPHS = [("rmat", 12), ("kron", 12), ("webcrawl", 12)]
LAYERS = ["lci", "mpi-probe", "mpi-rma"]
#: Restores the paper's per-host work at reduced graph scale, so the
#: end-to-end ratios include a realistic compute fraction (see Fig. 6).
WORK_SCALE = 40.0


def run_fig3():
    out = {}
    for graph, scale in GRAPHS:
        for app in APPS:
            for hosts in HOSTS:
                for layer in LAYERS:
                    sc = Scenario(
                        app=app, graph=graph, scale=scale, hosts=hosts,
                        layer=layer, system="abelian",
                        pagerank_rounds=10, work_scale=WORK_SCALE,
                    )
                    out[(graph, app, hosts, layer)] = run_scenario(sc)
    return out


def test_fig3_abelian_host_sweep(benchmark, results_sink):
    results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    rows = []
    for graph, _scale in GRAPHS:
        for app in APPS:
            for hosts in HOSTS:
                row = {"graph": graph, "app": app, "hosts": hosts}
                for layer in LAYERS:
                    row[layer + "_ms"] = round(
                        results[(graph, app, hosts, layer)].total_seconds
                        * 1e3, 3,
                    )
                rows.append(row)
    emit("Fig 3: Abelian execution time (ms) by host count and layer",
         format_table(rows))
    results_sink("fig3_abelian_sweep", {
        f"{g}/{a}/{h}/{l}": r.total_seconds
        for (g, a, h, l), r in results.items()
    })

    top = HOSTS[-1]

    # LCI is comparable-or-better than both MPI layers everywhere.
    for (graph, app, hosts, _l), _ in results.items():
        lci = results[(graph, app, hosts, "lci")].total_seconds
        probe = results[(graph, app, hosts, "mpi-probe")].total_seconds
        rma = results[(graph, app, hosts, "mpi-rma")].total_seconds
        assert lci <= probe * 1.02
        assert lci <= rma * 1.02

    # The probe gap grows with host count (probe "does not scale well").
    for graph, _s in GRAPHS:
        lo = (
            results[(graph, "pagerank", HOSTS[0], "mpi-probe")].total_seconds
            / results[(graph, "pagerank", HOSTS[0], "lci")].total_seconds
        )
        hi = (
            results[(graph, "pagerank", top, "mpi-probe")].total_seconds
            / results[(graph, "pagerank", top, "lci")].total_seconds
        )
        assert hi > lo, f"probe gap must grow with hosts on {graph}"

    # Geomean speedups at the top host count (paper: 1.34x / 1.08x at 128).
    lci_t = {
        f"{g}/{a}": results[(g, a, top, "lci")].total_seconds
        for g, _ in GRAPHS for a in APPS
    }
    probe_t = {
        f"{g}/{a}": results[(g, a, top, "mpi-probe")].total_seconds
        for g, _ in GRAPHS for a in APPS
    }
    rma_t = {
        f"{g}/{a}": results[(g, a, top, "mpi-rma")].total_seconds
        for g, _ in GRAPHS for a in APPS
    }
    sp_probe = geomean_speedup(probe_t, lci_t)
    sp_rma = geomean_speedup(rma_t, lci_t)
    emit(
        f"Fig 3 headline @ {top} hosts",
        f"geomean speedup of LCI: {sp_probe:.2f}x over MPI-Probe "
        f"(paper: 1.34x), {sp_rma:.2f}x over MPI-RMA (paper: 1.08x)",
    )
    assert sp_probe > 1.2
    assert sp_rma > 1.0
    assert sp_probe > sp_rma  # probe is the weaker baseline, as in the paper
