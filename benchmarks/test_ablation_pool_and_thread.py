"""Ablations — LCI packet-pool size; dedicated comm thread vs inline MPI.

1. **Pool size** (Section III-D: "The size of the packet pool determines
   the maximum injection rate ... typically a small constant times the
   number of hosts").  Sweeping the pool shows the trade: a starved pool
   forces send retries (back pressure) and slows the run; growing it
   buys speed until the network becomes the limit; memory rises linearly.

2. **Dedicated communication thread** (Fig. 2) vs compute threads
   calling MPI directly with THREAD_MULTIPLE (Gemini's original shape).
   The funneled design pays one queue hop but avoids the library lock on
   every call from every thread.
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.bench.scenarios import Scenario, run_scenario

HOSTS = 32
SCALE = 12


def test_ablation_pool_size(benchmark, results_sink):
    def sweep():
        out = {}
        # Pool sizes from starved (below the per-phase partner count, so
        # sends fail and retry and the server stalls on receive budgets)
        # to ample.
        for pool in (4, 32, 512):
            sc = Scenario(
                app="pagerank", graph="kron", scale=SCALE, hosts=HOSTS,
                layer="lci", pagerank_rounds=10,
                lci_pool_packets_per_host=0,
                lci_pool_packets_min=pool,
            )
            out[pool] = run_scenario(sc)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "pool_packets": k,
            "time_ms": round(m.total_seconds * 1e3, 3),
            "mem_max_KiB": round(m.max_footprint / 1024, 1),
        }
        for k, m in results.items()
    ]
    emit(f"Ablation: LCI pool size (pagerank, kron{SCALE} @ {HOSTS} hosts)",
         format_table(rows))
    results_sink("ablation_pool_size", rows)

    times = {k: m.total_seconds for k, m in results.items()}
    mems = {k: m.max_footprint for k, m in results.items()}
    # A starved pool costs time (send retries, cache steals and server
    # stalls are the back pressure); performance saturates quickly — "a
    # small constant times the number of hosts" is enough.
    assert times[4] > times[32] * 1.02
    assert times[32] <= times[512] * 1.02
    # Memory rises linearly with the pool.
    assert mems[4] < mems[32] < mems[512]


def test_ablation_dedicated_comm_thread(benchmark, results_sink):
    def run_both():
        out = {}
        for inline in (False, True):
            sc = Scenario(
                app="pagerank", graph="kron", scale=SCALE, hosts=HOSTS,
                layer="mpi-probe", pagerank_rounds=10,
                system="gemini" if inline else "abelian",
            )
            out["inline" if inline else "dedicated"] = run_scenario(sc)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        {
            "design": k,
            "policy": m.policy,
            "time_ms": round(m.total_seconds * 1e3, 3),
            "comm_ms": round(m.comm_seconds * 1e3, 3),
        }
        for k, m in results.items()
    ]
    emit("Ablation: dedicated comm thread (FUNNELED) vs inline sends "
         f"(THREAD_MULTIPLE), pagerank kron{SCALE} @ {HOSTS} hosts",
         format_table(rows))
    results_sink("ablation_comm_thread", rows)

    # Note: the two designs also differ in partition policy (Abelian/CVC
    # vs Gemini/edge-cut), as in the paper's systems.  The dedicated-
    # thread CVC configuration is the faster shape end to end.
    assert (
        results["dedicated"].total_seconds < results["inline"].total_seconds
    )


def test_ablation_eager_limit(benchmark, results_sink):
    """Protocol switch point: eager copy-through vs rendezvous RTS/RTR.

    Very small packets force everything through rendezvous (three control
    trips per message); very large ones spend time on bounce copies.  The
    default sits where graph-update blobs mostly fit one packet.
    """

    def sweep():
        out = {}
        for pkt in (256, 4096, 65536):
            sc = Scenario(
                app="pagerank", graph="kron", scale=SCALE, hosts=HOSTS,
                layer="lci", pagerank_rounds=10,
                lci_packet_bytes=pkt,
            )
            out[pkt] = run_scenario(sc)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {"packet_bytes": k, "time_ms": round(m.total_seconds * 1e3, 3)}
        for k, m in results.items()
    ]
    emit(f"Ablation: eager/rendezvous switch point (pagerank, kron{SCALE} "
         f"@ {HOSTS} hosts)", format_table(rows))
    results_sink("ablation_eager_limit", rows)

    # Forcing rendezvous for every small blob is the worst configuration.
    assert results[256].total_seconds > results[4096].total_seconds * 0.99
