"""Table I — inputs and their key properties.

Paper's table (at full scale):

              clueweb12   kron30    rmat28
|V|           978M        1073M     268M
|E|           42.57B      10.79B    4.29B
|E|/|V|       44          10        16
max D_out     7,447       3.2M      4M
max D_in      75M         3.2M      0.3M

The harness regenerates the same three families at reduced scale and
checks the *structural* signatures: the E/V ratios, kron's symmetric
degree extremes, rmat's skew, and clueweb's giant in/out-degree
asymmetry (max D_in orders of magnitude above max D_out).
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.graph.generators import kron, rmat, webcrawl
from repro.graph.properties import graph_properties

SCALE = 14


def build_inputs():
    graphs = {
        "clueweb12 (webcrawl)": webcrawl(SCALE, seed=3),
        "kron30 (kron)": kron(SCALE, seed=2),
        "rmat28 (rmat)": rmat(SCALE, seed=1),
    }
    return {name: graph_properties(g) for name, g in graphs.items()}


def test_table1_input_properties(benchmark, results_sink):
    props = benchmark.pedantic(build_inputs, rounds=1, iterations=1)
    rows = [p.as_row() | {"graph": name} for name, p in props.items()]
    emit(f"Table I: inputs and key properties (scale {SCALE})",
         format_table(rows))
    results_sink("table1_inputs", rows)

    web = props["clueweb12 (webcrawl)"]
    kr = props["kron30 (kron)"]
    rm = props["rmat28 (rmat)"]

    # E/V ordering matches the paper: clueweb (44) > rmat (16) > kron (10).
    assert web.avg_degree > rm.avg_degree > kr.avg_degree

    # kron is symmetric: identical max in/out degree (3.2M / 3.2M).
    assert kr.max_in_degree == kr.max_out_degree

    # rmat's max out-degree dwarfs its max in-degree (4M vs 0.3M).
    assert rm.max_out_degree > 3 * rm.max_in_degree

    # clueweb: hub pages give max D_in >> max D_out (75M vs 7.4K).
    assert web.max_in_degree > 20 * web.max_out_degree

    # All are heavy-tailed: max degree far above the mean.
    for p in (web, kr, rm):
        assert max(p.max_in_degree, p.max_out_degree) > 10 * p.avg_degree
