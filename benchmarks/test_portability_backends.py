"""Portability — LCI over psm2 / ibverbs / libfabric backends.

Paper (Section IV-B3 and conclusions): "LCI and its performance is
portable to other NICs ... We have implemented LCI on top of ibverbs,
psm2, and Libfabric".  This bench runs the same Abelian workload with
LCI on each backend and on both machine models, asserting that backend
choice perturbs performance only mildly — and that LCI beats MPI-Probe
on *every* backend (portability of the win, not just of the code).
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.bench.scenarios import Scenario, run_scenario
from repro.apps import make_app
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import make_graph
from repro.lci.backends import BACKENDS
from repro.lci.config import LciConfig
from repro.sim.machine import PRESETS

HOSTS = 32
SCALE = 12


def run_backend(backend: str, machine: str):
    graph = make_graph("kron", SCALE, seed=1)
    app = make_app("pagerank", max_rounds=10, tol=1e-12)
    cfg = EngineConfig(
        num_hosts=HOSTS, machine=PRESETS[machine], layer="lci",
        layer_kwargs={"lci_config": LciConfig(backend=backend)},
    )
    return BspEngine(graph, app, cfg).run()


def test_portability_backends(benchmark, results_sink):
    def run_all():
        out = {}
        for machine in ("stampede2", "stampede1"):
            for backend in sorted(BACKENDS):
                out[(machine, backend)] = run_backend(backend, machine)
            probe = Scenario(
                app="pagerank", graph="kron", scale=SCALE, hosts=HOSTS,
                layer="mpi-probe", machine=machine, pagerank_rounds=10,
            )
            out[(machine, "mpi-probe")] = run_scenario(probe)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for machine in ("stampede2", "stampede1"):
        row = {"machine": machine}
        for backend in sorted(BACKENDS):
            row[backend + "_ms"] = round(
                results[(machine, backend)].total_seconds * 1e3, 3
            )
        row["mpi-probe_ms"] = round(
            results[(machine, "mpi-probe")].total_seconds * 1e3, 3
        )
        rows.append(row)
    emit(f"Portability: LCI backends, pagerank kron{SCALE} @ {HOSTS} hosts",
         format_table(rows))
    results_sink("portability_backends", rows)

    for machine in ("stampede2", "stampede1"):
        times = [
            results[(machine, b)].total_seconds for b in sorted(BACKENDS)
        ]
        # Backend choice is a second-order effect (< 25% spread)...
        assert max(times) < 1.25 * min(times), machine
        # ...and LCI beats MPI-Probe on every backend.
        probe = results[(machine, "mpi-probe")].total_seconds
        assert all(t < probe for t in times), machine
