"""Fig. 4 — Gemini with LCI vs MPI-Probe runtimes.

Paper: "We made simple modifications to the Gemini runtime such that
each sending/receiving thread uses LCI Queue instead of MPI ...  Across
all applications at 128 hosts, the geometric mean speedup of LCI over
MPI-Probe in communication is 2x, yielding an execution time speedup of
1.64x", with the biggest wins on kron/rmat "where communication
overheads present a significant fraction".
"""

import pytest

from conftest import emit
from repro.bench.report import format_table, geomean_speedup
from repro.bench.scenarios import Scenario, run_scenario

HOSTS = 64
SCALE = 12
APPS = ["bfs", "cc", "pagerank", "sssp"]
GRAPHS = ["rmat", "kron", "webcrawl"]
#: Restores a realistic compute fraction (see Fig. 6's breakdown).
WORK_SCALE = 40.0


def run_fig4():
    out = {}
    for graph in GRAPHS:
        for app in APPS:
            for layer in ("lci", "mpi-probe"):
                sc = Scenario(
                    app=app, graph=graph, scale=SCALE, hosts=HOSTS,
                    layer=layer, system="gemini", pagerank_rounds=10,
                    work_scale=WORK_SCALE,
                )
                out[(graph, app, layer)] = run_scenario(sc)
    return out


def test_fig4_gemini(benchmark, results_sink):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    rows = []
    for graph in GRAPHS:
        for app in APPS:
            lci = results[(graph, app, "lci")]
            probe = results[(graph, app, "mpi-probe")]
            rows.append({
                "graph": graph,
                "app": app,
                "lci_ms": round(lci.total_seconds * 1e3, 3),
                "probe_ms": round(probe.total_seconds * 1e3, 3),
                "lci_comm_ms": round(lci.comm_seconds * 1e3, 3),
                "probe_comm_ms": round(probe.comm_seconds * 1e3, 3),
            })
    emit(f"Fig 4: Gemini execution time @ {HOSTS} hosts (edge-cut)",
         format_table(rows))
    results_sink("fig4_gemini", rows)

    # LCI wins on every graph/app pair.
    for graph in GRAPHS:
        for app in APPS:
            lci = results[(graph, app, "lci")]
            probe = results[(graph, app, "mpi-probe")]
            assert lci.total_seconds < probe.total_seconds

    # Headline geomeans (paper: comm 2x, end-to-end 1.64x at 128 hosts).
    keys = [f"{g}/{a}" for g in GRAPHS for a in APPS]
    comm_speedup = geomean_speedup(
        {k: results[(k.split("/")[0], k.split("/")[1], "mpi-probe")].comm_seconds
         for k in keys},
        {k: results[(k.split("/")[0], k.split("/")[1], "lci")].comm_seconds
         for k in keys},
    )
    e2e_speedup = geomean_speedup(
        {k: results[(k.split("/")[0], k.split("/")[1], "mpi-probe")].total_seconds
         for k in keys},
        {k: results[(k.split("/")[0], k.split("/")[1], "lci")].total_seconds
         for k in keys},
    )
    emit(
        "Fig 4 headline",
        f"Gemini geomean speedup of LCI over MPI-Probe: communication "
        f"{comm_speedup:.2f}x (paper: 2x), end-to-end {e2e_speedup:.2f}x "
        f"(paper: 1.64x)",
    )
    assert comm_speedup > 1.5
    assert e2e_speedup > 1.2
    # Communication speedup exceeds end-to-end (compute is unchanged).
    assert comm_speedup >= e2e_speedup
