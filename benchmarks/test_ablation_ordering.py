"""Ablation — LCI's first-packet policy vs MPI-style ordered matching.

Section III-D: "Unlike MPI, ordering semantics are not required and not
enforced.  Instead, the RECV-DEQ returns any pending/completed request
based on the order of the first packet arrival."  This ablation runs the
same many-senders workload twice: once consuming in first-packet order,
once demanding a specific source order from the queue (the
``enforce_ordering`` mode, which pays an MPI-like traversal of the queue
per dequeue) — quantifying what LCI saves by dropping the semantics.
"""

import pytest

from conftest import emit
from repro.bench.report import format_table
from repro.lci.config import LciConfig
from repro.lci.server import LciRuntime
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import stampede2

SENDERS = 15
MSGS_EACH = 20


def run_consumer(ordered: bool) -> float:
    """Hosts 1..SENDERS each send MSGS_EACH messages to host 0, staggered
    so arrivals interleave; host 0 consumes them all.  Returns the time
    at which the last message was consumed."""
    env = Environment()
    machine = stampede2()
    fabric = Fabric(env, SENDERS + 1, machine)
    cfg = LciConfig(
        enforce_ordering=ordered,
        pool_packets_min=4 * SENDERS * MSGS_EACH,
    )
    world = LciRuntime.create_world(env, fabric, config=cfg)
    done = {}

    def sender(env, rank):
        rt = world[rank]
        # Interleave arrivals: stagger by a fraction of a message gap.
        yield env.timeout(rank * 0.07e-6)
        for i in range(MSGS_EACH):
            yield from rt.send_blocking(0, tag=0, size=64, payload=i)

    def consumer(env):
        rt = world[0]
        got = 0
        if ordered:
            # MPI-style: insist on draining sender 1 first, then 2, ...
            # (a fixed matching order, like posted receives per source).
            for src in range(1, SENDERS + 1):
                for _ in range(MSGS_EACH):
                    req = None
                    while req is None:
                        req = yield from rt.recv_deq(source=src)
                        if req is None:
                            yield rt.queue.wait_nonempty()
                    got += 1
        else:
            while got < SENDERS * MSGS_EACH:
                req = yield from rt.recv_deq()
                if req is None:
                    yield rt.queue.wait_nonempty()
                    continue
                got += 1
        done["t"] = env.now
        for rt_ in world:
            rt_.stop_server()

    for r in range(1, SENDERS + 1):
        env.process(sender(env, r))
    env.process(consumer(env))
    env.run(max_events=20_000_000)
    return done["t"]


def test_ablation_first_packet_policy(benchmark, results_sink):
    def run_both():
        return run_consumer(ordered=False), run_consumer(ordered=True)

    first_packet, ordered = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        {"policy": "first-packet (LCI)", "time_us": round(first_packet * 1e6, 2)},
        {"policy": "ordered matching (MPI-like)", "time_us": round(ordered * 1e6, 2)},
        {"policy": "penalty", "time_us": round((ordered / first_packet - 1) * 100, 1)},
    ]
    emit("Ablation: first-packet policy vs enforced ordering "
         f"({SENDERS} senders x {MSGS_EACH} msgs)", format_table(rows))
    results_sink("ablation_ordering", {
        "first_packet_s": first_packet, "ordered_s": ordered,
    })

    # Enforcing order costs real time: queue traversal per dequeue plus
    # head-of-line blocking on the slowest-staggered sender.
    assert ordered > first_packet * 1.1
