"""Table II — Abelian at 128 hosts, rmat, on both clusters.

Paper (seconds, rmat28 @ 128 hosts):

            Stampede2                    Stampede1
            LCI   MPI-Probe  MPI-RMA     LCI   MPI-Probe  MPI-RMA
  bfs       0.59  0.60       -           ...   (RMA slowest on S1)
  cc        0.95  1.44       -
  pagerank  17.60 44.26      -
  sssp      1.11  1.17       -

Qualitative claims checked here: LCI <= MPI-Probe on both clusters for
every application; the gap is largest for pagerank (most communication
rounds); the trend is similar across clusters ("the results show a
similar trend, LCI performs better in all tested cases"), and on
Stampede1 MPI-RMA loses its Stampede2 advantage (locality of
communication is the bottleneck there).
"""

import pytest

from conftest import emit
from repro.bench.report import format_table, format_seconds
from repro.bench.scenarios import Scenario, run_scenario

HOSTS = 128
SCALE = 12
APPS = ["bfs", "cc", "pagerank", "sssp"]


def run_table2():
    results = {}
    for machine in ("stampede2", "stampede1"):
        for app in APPS:
            for layer in ("lci", "mpi-probe", "mpi-rma"):
                sc = Scenario(
                    app=app, graph="rmat", scale=SCALE, hosts=HOSTS,
                    layer=layer, system="abelian", machine=machine,
                    pagerank_rounds=10,
                )
                results[(machine, app, layer)] = run_scenario(sc)
    return results


def test_table2_both_clusters(benchmark, results_sink):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    rows = []
    for app in APPS:
        row = {"app": app}
        for machine in ("stampede2", "stampede1"):
            for layer in ("lci", "mpi-probe", "mpi-rma"):
                m = results[(machine, app, layer)]
                tag = {"stampede2": "S2", "stampede1": "S1"}[machine]
                row[f"{tag}:{layer}"] = format_seconds(m.total_seconds)
        rows.append(row)
    emit(f"Table II: Abelian total execution time, rmat{SCALE} @ {HOSTS} hosts",
         format_table(rows))
    results_sink("table2_clusters", {
        f"{m}/{a}/{l}": r.total_seconds for (m, a, l), r in results.items()
    })

    for machine in ("stampede2", "stampede1"):
        for app in APPS:
            lci = results[(machine, app, "lci")].total_seconds
            probe = results[(machine, app, "mpi-probe")].total_seconds
            assert lci < probe, f"LCI must beat MPI-Probe ({machine}/{app})"

    # pagerank (many communication rounds) shows the largest probe gap.
    def gap(app):
        r = results[("stampede2", app, "mpi-probe")].total_seconds
        return r / results[("stampede2", app, "lci")].total_seconds

    assert gap("pagerank") >= max(gap("bfs"), gap("sssp"))

    # On Stampede2, MPI-RMA beats MPI-Probe at 128 hosts; on Stampede1
    # its advantage shrinks or inverts (the paper: RMA is slowest there).
    s2_rma_adv = (
        results[("stampede2", "pagerank", "mpi-probe")].total_seconds
        / results[("stampede2", "pagerank", "mpi-rma")].total_seconds
    )
    s1_rma_adv = (
        results[("stampede1", "pagerank", "mpi-probe")].total_seconds
        / results[("stampede1", "pagerank", "mpi-rma")].total_seconds
    )
    assert s2_rma_adv > 1.0
    assert s1_rma_adv < s2_rma_adv
