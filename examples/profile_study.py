#!/usr/bin/env python
"""Where does the *simulator's own* time go?  Host-side profile study.

Everything else in ``examples/`` measures simulated seconds — what the
modelled hardware would do.  This study measures the other axis: the
wall-clock cost of running the simulator itself, using the host-side
region profiler behind ``repro profile`` and ``repro bench-core``.

Two scenarios are profiled, one per engine:

* Abelian (cvc partitioning) BFS over LCI — the progress-engine path:
  packet-pool traffic, server harvesting, eager completions;
* Gemini (edge-cut) BFS over MPI-Probe — the two-sided path: posted /
  unexpected matching walks on every arrival.

For each run the study prints the top-10 regions by *self* wall-clock
time (where the Python interpreter actually spends its cycles), then a
per-layer breakdown of the deterministic work counters — the counts
that must reproduce bit-for-bit on every machine, fingerprinted in
``BENCH_core.json``.  It closes by re-running one scenario unprofiled
to confirm the contract the profiler is built on: instrumentation
never changes a single simulated metric.

Run:  python examples/profile_study.py
"""

from repro.bench.scenarios import Scenario, build_engine
from repro.obs import ProfileContext

SCENARIOS = [
    Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="lci"),
    Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="mpi-probe",
             system="gemini"),
]


def counters_by_layer(ctx):
    """Group the flat counter registry by its dotted layer prefix."""
    groups = {}
    for name, value in ctx.counters_dict().items():
        prefix = name.split(".", 1)[0]
        groups.setdefault(prefix, []).append((name, value))
    return groups


def main():
    for sc in SCENARIOS:
        ctx = ProfileContext()
        metrics = build_engine(sc, profile=ctx).run()
        print(f"== {sc.label()} "
              f"({metrics.rounds} rounds, {metrics.blobs_sent} blobs) ==")
        print()
        print(ctx.format_top(10))
        print()
        print("work counters by layer:")
        for prefix, items in sorted(counters_by_layer(ctx).items()):
            print(f"  [{prefix}]")
            for name, value in items:
                print(f"    {name:<38} {value:>12}")
        print(f"  fingerprint: {ctx.fingerprint()}")
        print()

    # The profiler's contract: observation only.  Same scenario without
    # the context must report the identical metrics row.
    sc = SCENARIOS[0]
    plain = build_engine(sc).run()
    traced = build_engine(sc, profile=ProfileContext()).run()
    assert plain.row() == traced.row(), "profiler perturbed the simulation"
    print(f"bit-identical check: profiled and plain runs of {sc.label()} "
          "report the same RunMetrics row")


if __name__ == "__main__":
    main()
