#!/usr/bin/env python
"""Partitioning study: Gemini's edge-cut vs Abelian's cartesian vertex cut.

Section II of the paper explains why partitioning policy shapes
communication: with a blocked *edge-cut* every edge source is a local
master (only the reduce pattern is needed) but each host may exchange
messages with all p-1 others; the *cartesian vertex cut* (CVC) adds a
broadcast pattern yet confines each host's partners to its grid row and
column — about 2*sqrt(p) peers — which is what keeps Abelian's
communication structured at high host counts.

This example partitions one graph both ways and reports replication
factor, communication partners, sync-pattern sizes, and end-to-end
time with the LCI runtime.

Run:  python examples/partitioning_study.py
"""

import numpy as np

from repro.apps import Bfs
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import rmat
from repro.graph.partition import make_partition

HOSTS = 16


def describe(part):
    partners = [len(part.comm_partners(h)) for h in range(part.num_hosts)]
    reduce_vol = sum(len(sp) for sp in part.reduce_pairs.values())
    bcast_vol = sum(len(sp) for sp in part.bcast_pairs.values())
    print(f"  replication factor:    {part.replication_factor():.2f}")
    print(f"  comm partners/host:    min={min(partners)} max={max(partners)}")
    print(f"  reduce pattern volume: {reduce_vol} node updates (worst case)")
    print(f"  bcast pattern volume:  {bcast_vol} node updates (worst case)")
    if hasattr(part, "grid"):
        print(f"  CVC grid:              {part.grid[0]} x {part.grid[1]}")


def main():
    graph = rmat(scale=12, edge_factor=16, seed=5)
    print(f"input: {graph}, {HOSTS} hosts\n")

    for policy in ("edge-cut", "cvc"):
        print(f"policy: {policy}")
        part = make_partition(graph, HOSTS, policy)
        describe(part)

        app = Bfs(source=0)
        cfg = EngineConfig(num_hosts=HOSTS, policy=policy, layer="lci")
        engine = BspEngine(graph, app, cfg)
        metrics = engine.run()
        assert np.array_equal(engine.assemble_global(), app.reference(graph))
        print(f"  bfs with LCI:          {metrics.total_seconds * 1e6:.1f} us "
              f"in {metrics.rounds} rounds (result verified)\n")

    print("Note how CVC trades extra proxies (higher replication) for a")
    print("much smaller partner set per host - the partition-awareness")
    print("that makes Abelian's communication scale (Section II).")


if __name__ == "__main__":
    main()
