#!/usr/bin/env python
"""The Fig. 5 effect: recycled pool vs worst-case preallocation.

MPI-RMA must preallocate, for every (origin, pattern) pair, a receive
window sized as if *all* nodes were active — before the first byte
moves.  LCI holds a fixed packet pool ("a small constant times the
number of hosts") and recycles transient gather/landing buffers whose
lifetime is one message.  This example runs the same workload both ways
and breaks the footprints down so the structural difference is visible.

Run:  python examples/memory_footprint.py
"""

from repro.apps import PageRank
from repro.engine import BspEngine, EngineConfig
from repro.graph.generators import kron
from repro.lci.config import LciConfig

HOSTS = 16
SCALE = 17


def run(layer, lci_config=None):
    graph = kron(scale=SCALE, seed=2)
    app = PageRank(max_rounds=10, tol=1e-12)
    kwargs = {"lci_config": lci_config} if lci_config else {}
    cfg = EngineConfig(num_hosts=HOSTS, layer=layer, layer_kwargs=kwargs)
    engine = BspEngine(graph, app, cfg)
    metrics = engine.run()
    return engine, metrics


def main():
    lci_cfg = LciConfig(
        pool_packets_per_host=2, pool_packets_min=16, packet_data_bytes=1024
    )
    lci_eng, lci = run("lci", lci_cfg)
    rma_eng, rma = run("mpi-rma")

    pool_bytes = lci_eng.layers[0].rt.pool.bytes_allocated()
    win_bytes = sum(
        w.bytes_allocated(0) for w in rma_eng.layers[0].windows.values()
    )

    print(f"workload: pagerank on kron{SCALE}, {HOSTS} simulated hosts\n")
    print("LCI:")
    print(f"  fixed packet pool:        {pool_bytes / 1024:8.1f} KiB/host")
    print(f"  peak incl. transients:    {lci.max_footprint / 1024:8.1f} KiB "
          f"(min host {lci.min_footprint / 1024:.1f})")
    print(f"  execution time:           {lci.total_seconds * 1e3:8.3f} ms")
    print("MPI-RMA:")
    print(f"  preallocated windows:     {win_bytes / 1024:8.1f} KiB on host 0")
    print(f"  peak incl. staging:       {rma.max_footprint / 1024:8.1f} KiB "
          f"(min host {rma.min_footprint / 1024:.1f})")
    print(f"  window creation (excl.):  {rma.setup_seconds * 1e3:8.3f} ms")
    print(f"  execution time:           {rma.total_seconds * 1e3:8.3f} ms")
    print()
    ratio = rma.max_footprint / lci.max_footprint
    print(f"MPI-RMA uses {ratio:.1f}x LCI's communication-buffer memory here")
    print("(the paper reports up to 10x at kron30 scale, where the")
    print("all-nodes-active worst case dwarfs the data-driven reality)")
    print("— while LCI is also the faster runtime.")


if __name__ == "__main__":
    main()
