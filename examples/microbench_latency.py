#!/usr/bin/env python
"""Fig. 1 in miniature: latency and message rate of the three interfaces.

Compares, between two simulated hosts:

* ``no-probe`` — MPI send/recv with pre-posted, known-size receives;
* ``probe``    — MPI_Iprobe first (what irregular graph runtimes must do
  because message sizes are unknown);
* ``queue``    — LCI's SEND-ENQ / RECV-DEQ.

Expected shapes (the paper's Fig. 1): queue < no-probe < probe for
latency at every size, and MPI message rates taper with thread count
(the THREAD_MULTIPLE lock) while LCI's keep climbing.

Run:  python examples/microbench_latency.py
"""

from repro.bench.micro import MICRO_INTERFACES, message_rate, pingpong_latency


def main():
    print("one-way latency (us)")
    print(f"{'bytes':>8s}" + "".join(f"{i:>12s}" for i in MICRO_INTERFACES))
    for size in (8, 64, 1024, 16384, 65536):
        cells = [
            pingpong_latency(iface, size, iters=20) * 1e6
            for iface in MICRO_INTERFACES
        ]
        print(f"{size:8d}" + "".join(f"{c:12.2f}" for c in cells))

    print("\nmessage rate (M msg/s), 64-byte messages")
    print(f"{'threads':>8s}" + "".join(f"{i:>12s}" for i in MICRO_INTERFACES))
    for threads in (1, 4, 16, 64):
        cells = [
            message_rate(iface, threads, window=16) / 1e6
            for iface in MICRO_INTERFACES
        ]
        print(f"{threads:8d}" + "".join(f"{c:12.3f}" for c in cells))

    print("\nqueue (LCI) wins both: no tag matching, no ordering, no")
    print("library lock - completion is a plain flag read.")


if __name__ == "__main__":
    main()
