#!/usr/bin/env python
"""Compare the three communication runtimes on the paper's workloads.

This reproduces the core experiment of the paper at example scale: run
PageRank and BFS through Abelian over LCI, MPI-Probe, and MPI-RMA and
watch where the time goes.  Expected outcome (the paper's Figs 3 & 6):

* all three layers compute the *identical* result in the *identical*
  number of rounds — only communication time differs;
* LCI has the lowest non-overlapped communication time;
* MPI-RMA sits between LCI and MPI-Probe at this host count (see
  examples/memory_footprint.py for the buffer-memory side of the trade);
* MPI-Probe (the baseline two-sided layer) is slowest — wildcard
  probing, tag matching, and the single funneled communication thread.

Run:  python examples/runtime_comparison.py
"""

import numpy as np

from repro.apps import PageRank, Bfs
from repro.engine import abelian_engine
from repro.graph.generators import kron

LAYERS = ("lci", "mpi-probe", "mpi-rma")
HOSTS = 16


def run_one(graph, make_app, layer):
    engine = abelian_engine(graph, make_app(), num_hosts=HOSTS, layer=layer)
    metrics = engine.run()
    return engine, metrics


def compare(graph, app_name, make_app):
    print(f"\n=== {app_name} on {graph.name}, {HOSTS} hosts ===")
    print(f"{'layer':10s} {'total':>10s} {'compute':>10s} {'comm':>10s} "
          f"{'rounds':>7s} {'bufs(max)':>10s}")
    reference = None
    for layer in LAYERS:
        engine, m = run_one(graph, make_app, layer)
        result = engine.assemble_global()
        if reference is None:
            reference = result
        else:
            # Same answer regardless of runtime.
            np.testing.assert_allclose(result, reference, rtol=1e-9)
        print(
            f"{layer:10s} {m.total_seconds * 1e6:9.1f}us "
            f"{m.compute_seconds * 1e6:9.1f}us "
            f"{m.comm_seconds * 1e6:9.1f}us "
            f"{m.rounds:7d} {m.max_footprint / 1024:8.1f}KiB"
        )


def main():
    graph = kron(scale=13, seed=2)
    print(f"input: {graph}")
    compare(graph, "pagerank (20 rounds)",
            lambda: PageRank(max_rounds=20, tol=1e-12))
    compare(graph, "bfs", lambda: Bfs(source=0))
    print("\nAll three runtimes produced identical results; only the "
          "communication layer changed.")


if __name__ == "__main__":
    main()
