#!/usr/bin/env python
"""Resilience under packet loss: LCI's recovery overhead vs MPI's failures.

Sweeps uniform drop rates and runs the same BFS workload on all three
communication layers under each rate.  LCI's ack/retransmit protocol
absorbs the drops — the answer stays bit-identical to the fault-free run
and the cost shows up as measurable recovery overhead (retransmissions,
extra simulated time).  The MPI layers assume a reliable transport, as
real MPI does, so the same drops cost them the whole run: a dropped
completion leaves a request forever pending and the run hangs
(``LostCompletionError``).

Every fault draw comes from a seeded RNG stream, so the table below is
deterministic and reproducible.

Run:  python examples/chaos_study.py
"""

from repro.bench.report import format_table
from repro.bench.scenarios import Scenario
from repro.faults import FaultPlan, FaultSpec
from repro.faults.harness import run_chaos

DROP_RATES = [0.005, 0.01, 0.02, 0.05]
LAYERS = ["lci", "mpi-probe", "mpi-rma"]
FAULT_SEED = 7


def drop_plan(rate):
    return FaultPlan(
        specs=(FaultSpec("drop", rate=rate),),
        seed=FAULT_SEED,
        name=f"drop-{rate * 100:g}pct",
    )


def main():
    rows = []
    reports = {}
    for rate in DROP_RATES:
        plan = drop_plan(rate)
        row = {"drop rate": f"{rate * 100:g}%"}
        for layer in LAYERS:
            sc = Scenario(app="bfs", graph="rmat", scale=10, hosts=8,
                          layer=layer)
            rep = run_chaos(sc, plan)
            reports[(rate, layer)] = rep
            if rep.outcome == "recovered":
                row[layer] = (f"+{rep.overhead * 100:.1f}% "
                              f"({rep.recovery.get('retransmissions', 0)} rtx)")
            else:
                row[layer] = rep.outcome
        rows.append(row)

    print("bfs on rmat10, 8 simulated hosts — outcome per layer")
    print("(recovered = answer identical to fault-free run; cell shows")
    print(" recovery overhead in simulated time and retransmission count)\n")
    print(format_table(rows))

    print("\nper-layer recovery detail at the highest drop rate:")
    worst = DROP_RATES[-1]
    for layer in LAYERS:
        rep = reports[(worst, layer)]
        if rep.outcome == "recovered":
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(rep.recovery.items()))
            detail = f"{rep.overhead * 100:+.1f}% overhead; {pairs}"
        else:
            detail = f"{rep.outcome} after {sum(rep.fault_counts.values())} faults"
        print(f"  {layer:10s} {detail}")

    print("\nthe asymmetry is the paper's Section III-D resilience claim in")
    print("miniature: LCI surfaces transport-level trouble to a layer that")
    print("can retry, while MPI's matching machinery has no recovery path.")


if __name__ == "__main__":
    main()
