#!/usr/bin/env python
"""Quickstart: run BFS on a simulated 8-host cluster with the LCI runtime.

This is the 60-second tour of the library:

1. generate a scale-free input graph,
2. build an Abelian-style engine (vertex-cut partitioning) over a
   simulated Stampede2 cluster using the LCI communication layer,
3. run breadth-first search to quiescence,
4. verify the distributed result against a sequential reference, and
5. read the measurements the paper's evaluation is built from.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import Bfs
from repro.engine import abelian_engine
from repro.graph.generators import rmat


def main():
    # 1. An R-MAT graph: 2^12 nodes, ~16 edges per node (the rmat28
    #    family of the paper's Table I, at laptop scale).
    graph = rmat(scale=12, edge_factor=16, seed=7)
    print(f"input: {graph}")

    # 2. Abelian = vertex-cut partitioning + partition-aware sync.
    #    Swap layer= for "mpi-probe" or "mpi-rma" to compare runtimes.
    app = Bfs(source=0)
    engine = abelian_engine(graph, app, num_hosts=8, layer="lci")
    part = engine.partition
    print(
        f"partition: {part.policy}, replication factor "
        f"{part.replication_factor():.2f}, "
        f"host 0 talks to {sorted(part.comm_partners(0))}"
    )

    # 3. Run the BSP engine on the simulated cluster.
    metrics = engine.run()

    # 4. Verify against a sequential BFS.
    got = engine.assemble_global()
    want = app.reference(graph)
    assert np.array_equal(got, want), "distributed BFS diverged!"
    reached = int(np.count_nonzero(want < np.int64(2**62)))
    print(f"verified: {reached}/{graph.num_nodes} nodes reached, "
          f"levels match the sequential reference")

    # 5. The measurements everything in benchmarks/ is made of.
    print(f"rounds:               {metrics.rounds}")
    print(f"simulated time:       {metrics.total_seconds * 1e6:.1f} us")
    print(f"  computation:        {metrics.compute_seconds * 1e6:.1f} us")
    print(f"  non-overlap comm:   {metrics.comm_seconds * 1e6:.1f} us")
    print(f"comm buffers (max):   {metrics.max_footprint / 1024:.1f} KiB/host")


if __name__ == "__main__":
    main()
