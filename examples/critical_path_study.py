#!/usr/bin/env python
"""Where does a message's latency go?  MPI-Probe vs LCI, stage by stage.

The paper argues (Section III, Fig. 2) that the MPI baseline pays for
two-sided semantics it does not need: every incoming aggregate must
traverse tag matching — and with wildcard ``MPI_Iprobe`` receives the
message always lands in the *unexpected queue* first, waiting for the
polling comm thread — while LCI completes eager sends straight into a
queue the handler drains.  This study makes that argument quantitative:
it runs the same BFS workload on both layers with the observability
context installed and prints each layer's stage-attribution table —
the simulated seconds every message spent in every lifecycle stage —
plus the single slowest message of each run, fully broken down.

The MPI-Probe table shows a large ``match_wait`` share; the LCI table
has no ``match_wait`` row at all (eager sends never touch a matching
engine).  Installing the context does not perturb the runs: both
engines report bit-identical times with tracing on or off.

Run:  python examples/critical_path_study.py
"""

from repro.bench.report import format_table
from repro.bench.scenarios import Scenario, build_engine
from repro.obs import ObsContext, build_timelines, slowest, stage_attribution

LAYERS = ["mpi-probe", "lci"]


def run_traced(layer):
    sc = Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer=layer)
    obs = ObsContext()
    metrics = build_engine(sc, obs=obs).run()
    return metrics, build_timelines(obs)


def us(seconds):
    return f"{seconds * 1e6:.2f}us"


def main():
    results = {layer: run_traced(layer) for layer in LAYERS}

    rows = []
    for layer in LAYERS:
        metrics, timelines = results[layer]
        stages = stage_attribution(timelines)[layer]
        total = sum(stages[s] for s in sorted(stages))
        for stage, secs in sorted(stages.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            rows.append({
                "layer": layer,
                "stage": stage,
                "time": us(secs),
                "share": f"{secs / total * 100:.1f}%",
            })

    print("stage attribution, BFS rmat10 @ 8 hosts "
          "(seconds in each lifecycle stage, summed over messages)\n")
    print(format_table(rows))

    probe_stages = stage_attribution(results["mpi-probe"][1])["mpi-probe"]
    lci_stages = stage_attribution(results["lci"][1])["lci"]
    print(f"\nmpi-probe match_wait: {us(probe_stages.get('match_wait', 0.0))}"
          f"  |  lci match_wait: {us(lci_stages.get('match_wait', 0.0))}"
          " (eager sends never enter a matching engine)")

    print("\nslowest message per layer:")
    for layer in LAYERS:
        (worst,) = slowest(results[layer][1], n=1)
        breakdown = "  ".join(
            f"{stage}={us(dur)}"
            for stage, dur in sorted(worst.stage_totals().items(),
                                     key=lambda kv: (-kv[1], kv[0]))
            if dur > 0
        )
        print(f"  {worst.trace}: {us(worst.latency)} end-to-end")
        print(f"    {breakdown}")

    print("\ntotal time: " + ", ".join(
        f"{layer} {us(results[layer][0].total_seconds)}" for layer in LAYERS
    ))


if __name__ == "__main__":
    main()
