"""Machine cost models: CPUs, NICs, and cluster presets.

The paper evaluates on two clusters (its Table III):

* **Stampede2** — Intel Xeon Phi KNL 7250 (68 cores @ 1.4 GHz) with Intel
  Omni-Path (100 Gb/s, psm2).  Many slow cores; communication software
  overhead dominates at high thread counts.
* **Stampede1** — Intel Sandy Bridge E5-2680 (16 cores @ 2.7 GHz) with
  Mellanox Infiniband FDR (56 Gb/s, ibverbs).  Fewer, faster cores and a
  slower memory subsystem relative to its NIC.

The models here assign *simulated-time* costs to the primitive operations
the communication layers execute: network injection/reception overheads,
wire latency, serialization bandwidth, atomic operations, lock
acquisitions, memory copies, allocator calls, and per-edge/per-node graph
computation.  Absolute values are calibrated to the order of magnitude of
published measurements for these machines (see ``repro.bench.calibration``);
the reproduction's claims concern *relative* behaviour, which emerges from
the mechanisms, not from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["CpuModel", "NicModel", "MachineModel", "stampede2", "stampede1", "PRESETS"]

#: Convenience unit constants (seconds / bytes).
US = 1e-6
NS = 1e-9
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class CpuModel:
    """Per-core software cost model.

    All times are seconds of simulated time charged to the executing
    simulated thread.
    """

    name: str
    #: Number of physical cores per host (the paper runs 1 thread/core).
    cores: int
    #: Cost of an uncontended atomic RMW (fetch-and-add / CAS).
    atomic_op: float
    #: Cost of acquiring an uncontended mutex (lock+unlock round trip).
    lock_uncontended: float
    #: Extra penalty paid when a lock acquisition finds the lock held
    #: (cache-line bouncing); queueing delay is simulated on top.
    lock_contended_penalty: float
    #: Single-core memory-copy bandwidth, bytes/second.
    memcpy_bw: float
    #: Cost of one allocator call (malloc/free pair amortized).
    alloc_cost: float
    #: Fixed overhead of any library call into the communication stack.
    call_overhead: float
    #: Graph-kernel cost per edge processed (apply operator along an edge).
    per_edge_cost: float
    #: Graph-kernel cost per active node visited.
    per_node_cost: float
    #: Cost charged per element when serializing/deserializing label data
    #: in gather/scatter (index lookup + pack), on top of memcpy.
    per_item_pack_cost: float
    #: Multiplier on deserialization cost when reading *cache-cold*
    #: receive buffers (RMA's huge preallocated windows, written by NIC
    #: DMA and never warm).  LCI's small recycled pool stays warm — the
    #: paper: "LCI can quickly recycle buffers ... improving locality".
    #: Large on Stampede1, whose memory subsystem the paper blames for
    #: MPI-RMA being slowest there.
    cold_read_factor: float = 1.0

    def memcpy_time(self, nbytes: float) -> float:
        """Time for one core to copy ``nbytes``."""
        return nbytes / self.memcpy_bw


@dataclass(frozen=True)
class NicModel:
    """LogGP-style NIC/fabric cost model."""

    name: str
    #: One-way wire+switch latency (the L of LogGP), seconds.
    latency: float
    #: Link bandwidth in bytes/second (the 1/G of LogGP).
    bandwidth: float
    #: Sender-side CPU overhead to hand a descriptor to the NIC (o_s).
    send_overhead: float
    #: Receiver-side CPU overhead to harvest a completed packet (o_r).
    recv_overhead: float
    #: Maximum messages/second the NIC can inject (message-rate cap).
    injection_rate: float
    #: Number of outstanding injected-but-not-yet-on-the-wire descriptors
    #: the NIC queues before injection attempts fail (HW TX queue depth).
    tx_queue_depth: int
    #: True if the NIC supports RDMA write (lc_put maps to hardware).
    rdma: bool
    #: Extra latency charged to an RDMA put over a plain send (rkey checks
    #: and address translation on the target NIC).
    rdma_extra_latency: float

    def serialization_time(self, nbytes: float) -> float:
        return nbytes / self.bandwidth

    @property
    def injection_gap(self) -> float:
        """Minimum spacing between message injections (the g of LogGP)."""
        return 1.0 / self.injection_rate


@dataclass(frozen=True)
class MachineModel:
    """A cluster node type: CPU model + NIC model."""

    name: str
    cpu: CpuModel
    nic: NicModel
    description: str = ""

    def with_cores(self, cores: int) -> "MachineModel":
        """Same machine with a different core count (for thread sweeps)."""
        return replace(self, cpu=replace(self.cpu, cores=cores))


def stampede2() -> MachineModel:
    """Stampede2: KNL 7250 + Omni-Path.

    KNL cores are slow (in-order-ish, 1.4 GHz): software overheads such as
    match-queue traversal, locks, and allocator calls are expensive relative
    to the very fast fabric, which is exactly the regime where the paper's
    LCI advantages are largest.
    """
    cpu = CpuModel(
        name="knl-7250",
        cores=68,
        atomic_op=55 * NS,
        lock_uncontended=120 * NS,
        lock_contended_penalty=350 * NS,
        memcpy_bw=4.5 * GB,
        alloc_cost=220 * NS,
        call_overhead=90 * NS,
        per_edge_cost=26 * NS,
        per_node_cost=70 * NS,
        per_item_pack_cost=14 * NS,
        cold_read_factor=1.25,  # MCDRAM absorbs most of the cold-read cost
    )
    nic = NicModel(
        name="omni-path-100",
        latency=0.95 * US,
        bandwidth=12.3 * GB,
        send_overhead=0.45 * US,
        recv_overhead=0.40 * US,
        injection_rate=75e6,
        tx_queue_depth=4096,
        rdma=True,
        rdma_extra_latency=0.15 * US,
    )
    return MachineModel(
        name="stampede2",
        cpu=cpu,
        nic=nic,
        description="TACC Stampede2: Intel KNL 7250 (68 cores) + Omni-Path",
    )


def stampede1() -> MachineModel:
    """Stampede1: Sandy Bridge E5-2680 + Infiniband FDR.

    Fewer, much faster cores; FDR Infiniband has lower bandwidth and a
    slightly higher latency than Omni-Path.  The paper notes memory-system
    locality is the bottleneck here and that MPI-RMA is *slowest* on this
    machine (worst-case preallocated windows thrash the smaller caches);
    the high ``cold_read_factor`` charges scatters out of DMA-written
    window memory accordingly.
    """
    cpu = CpuModel(
        name="snb-e5-2680",
        cores=16,
        atomic_op=22 * NS,
        lock_uncontended=45 * NS,
        lock_contended_penalty=130 * NS,
        memcpy_bw=7.0 * GB,
        alloc_cost=90 * NS,
        call_overhead=35 * NS,
        per_edge_cost=9 * NS,
        per_node_cost=28 * NS,
        per_item_pack_cost=5 * NS,
        cold_read_factor=3.0,  # small caches, slow memory (Section IV-B3)
    )
    nic = NicModel(
        name="ib-fdr-56",
        latency=1.1 * US,
        bandwidth=6.8 * GB,
        send_overhead=0.30 * US,
        recv_overhead=0.28 * US,
        injection_rate=35e6,
        tx_queue_depth=2048,
        rdma=True,
        rdma_extra_latency=0.20 * US,
    )
    return MachineModel(
        name="stampede1",
        cpu=cpu,
        nic=nic,
        description="TACC Stampede1: Sandy Bridge E5-2680 (16 cores) + IB FDR",
    )


PRESETS: Dict[str, "MachineModel"] = {}


def _register_presets() -> None:
    for factory in (stampede2, stampede1):
        m = factory()
        PRESETS[m.name] = m


_register_presets()
