"""Seeded random-stream management.

Every stochastic choice in the reproduction (graph generation, workload
jitter, tie-breaking) draws from a named stream spawned off a single root
seed, so the whole experiment suite is reproducible from one integer and
adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Spawns independent, deterministic :class:`numpy.random.Generator`\\ s.

    Streams are keyed by name; the same (root seed, name) pair always yields
    the same stream regardless of creation order, because each stream is
    derived by hashing the name into entropy rather than by sequential
    spawning.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: Dict[str, np.random.Generator] = {}
        self._registered: Dict[str, str] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        Repeated calls intentionally share the stream — this is the
        accessor for a stream whose draws one component owns.  A
        component that requires *exclusive* ownership of its stream uses
        :meth:`register` instead, which rejects duplicates.
        """
        gen = self._cache.get(name)
        if gen is None:
            # Stable derivation: name bytes -> ints mixed into SeedSequence.
            digest = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence([self.root_seed, len(digest)] + digest)
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def register(self, name: str, owner: str = "") -> np.random.Generator:
        """Claim exclusive ownership of stream ``name`` and return it.

        Two components silently sharing one stream is a determinism
        hazard the lint cannot see (each consumer's draw sequence then
        depends on the other's call interleaving), so duplicate
        registration is a hard error naming both claimants.
        """
        if name in self._registered:
            prev = self._registered[name] or "an earlier component"
            raise ValueError(
                f"rng stream {name!r} is already registered by {prev}: "
                f"two components sharing one stream makes each one's "
                f"draw sequence depend on the other's call order. "
                f"Register a distinct stream name"
                + (f" for {owner}" if owner else "")
                + "."
            )
        self._registered[name] = owner
        return self.stream(name)

    def fork(self, name: str) -> "RngFactory":
        """A child factory whose streams are disjoint from the parent's."""
        child_seed = int(self.stream(f"__fork__.{name}").integers(0, 2**63 - 1))
        return RngFactory(child_seed)

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self.root_seed})"
