"""Seeded random-stream management.

Every stochastic choice in the reproduction (graph generation, workload
jitter, tie-breaking) draws from a named stream spawned off a single root
seed, so the whole experiment suite is reproducible from one integer and
adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Spawns independent, deterministic :class:`numpy.random.Generator`\\ s.

    Streams are keyed by name; the same (root seed, name) pair always yields
    the same stream regardless of creation order, because each stream is
    derived by hashing the name into entropy rather than by sequential
    spawning.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        gen = self._cache.get(name)
        if gen is None:
            # Stable derivation: name bytes -> ints mixed into SeedSequence.
            digest = [b for b in name.encode("utf-8")]
            seq = np.random.SeedSequence([self.root_seed, len(digest)] + digest)
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fork(self, name: str) -> "RngFactory":
        """A child factory whose streams are disjoint from the parent's."""
        child_seed = int(self.stream(f"__fork__.{name}").integers(0, 2**63 - 1))
        return RngFactory(child_seed)

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self.root_seed})"
