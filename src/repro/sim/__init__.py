"""Discrete-event simulation substrate for the LCI reproduction.

This package provides the "cluster" that the paper ran on: a deterministic
discrete-event simulation kernel (:mod:`repro.sim.engine`), synchronization
resources (:mod:`repro.sim.resources`), measurement utilities
(:mod:`repro.sim.monitor`), machine/NIC cost models
(:mod:`repro.sim.machine`), the network fabric (:mod:`repro.sim.network`),
and seeded random-stream management (:mod:`repro.sim.rng`).

The kernel is a small SimPy-style coroutine scheduler.  Simulated actors
(host threads, communication servers, NIC engines) are generator functions
driven by :class:`~repro.sim.engine.Process`; they ``yield`` events to wait
on and the environment advances virtual time between events.  All timing
numbers reported by the benchmark harness are *simulated seconds* produced
by this kernel, with costs charged according to the machine models.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Lock, Resource, Store
from repro.sim.monitor import Counter, PeakTracker, TimeSeries, StatRegistry
from repro.sim.rng import RngFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Lock",
    "Resource",
    "Store",
    "Counter",
    "PeakTracker",
    "TimeSeries",
    "StatRegistry",
    "RngFactory",
]
