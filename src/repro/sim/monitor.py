"""Measurement utilities: counters, peak trackers, and time series.

The paper's evaluation reports execution times (Figs 3, 4, 6; Tables II,
IV), communication-buffer memory footprints (Fig 5), and latency/rate
microbenchmarks (Fig 1).  The classes here are the instrumentation the
simulated runtimes write into; the benchmark harness reads them back out.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = [
    "Counter",
    "PeakTracker",
    "TimeSeries",
    "StatRegistry",
    "geometric_mean",
]


def geometric_mean(values) -> float:
    """Geometric mean; the paper's headline speedups are geomeans."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class Counter:
    """A monotonically adjustable named count (messages, bytes, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class PeakTracker:
    """Tracks a level that rises and falls, remembering its maximum.

    Used for the working set of communication buffers (Fig 5): allocations
    call :meth:`add`, frees call :meth:`sub`, and ``peak`` is the footprint.
    """

    __slots__ = ("name", "current", "peak", "total_added")

    def __init__(self, name: str = ""):
        self.name = name
        self.current = 0
        self.peak = 0
        self.total_added = 0

    def add(self, amount: int) -> None:
        if amount < 0:
            raise ValueError("use sub() to decrease")
        self.current += amount
        self.total_added += amount
        if self.current > self.peak:
            self.peak = self.current

    def sub(self, amount: int) -> None:
        if amount < 0:
            raise ValueError("sub() takes a non-negative amount")
        self.current -= amount
        if self.current < 0:
            raise ValueError(
                f"PeakTracker {self.name!r} went negative ({self.current})"
            )

    def reset(self) -> None:
        self.current = 0
        self.peak = 0
        self.total_added = 0

    def __repr__(self) -> str:
        return f"PeakTracker({self.name!r}, cur={self.current}, peak={self.peak})"


class TimeSeries:
    """(time, value) samples, e.g. per-iteration compute/comm breakdowns."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"TimeSeries {self.name!r} is empty")
        return self.total / len(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def items(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))


class StatRegistry:
    """A namespaced bag of monitors owned by one simulated component.

    Components create their instruments lazily by name, so tests can assert
    on exactly the stats a code path touched::

        stats = StatRegistry("host0.lci")
        stats.counter("egr_sends").add()
        stats.peak("pool_bytes").add(8192)
    """

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._peaks: Dict[str, PeakTracker] = {}
        self._series: Dict[str, TimeSeries] = {}

    def _qual(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self._qual(name))
        return c

    def peak(self, name: str) -> PeakTracker:
        p = self._peaks.get(name)
        if p is None:
            p = self._peaks[name] = PeakTracker(self._qual(name))
        return p

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = TimeSeries(self._qual(name))
        return s

    def counter_value(self, name: str, default: int = 0) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def counter_values(self) -> Dict[str, int]:
        """All counters as ``{unqualified name: value}``."""
        return {name: c.value for name, c in self._counters.items()}

    def peak_value(self, name: str, default: int = 0) -> int:
        p = self._peaks.get(name)
        return p.peak if p is not None else default

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument into a dict for reports."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[self._qual(name)] = c.value
        for name, p in self._peaks.items():
            out[self._qual(name) + ".peak"] = p.peak
            out[self._qual(name) + ".current"] = p.current
        for name, s in self._series.items():
            out[self._qual(name) + ".total"] = s.total
            out[self._qual(name) + ".n"] = len(s)
        return out

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for p in self._peaks.values():
            p.reset()
        self._series.clear()
