"""Deterministic discrete-event simulation kernel.

A minimal, fast coroutine scheduler in the style of SimPy.  The design goals
are:

* **Determinism** — events scheduled for the same timestamp fire in
  scheduling order (a monotonically increasing sequence number breaks ties),
  so a run is a pure function of its inputs and seeds.
* **Low overhead** — the event heap stores plain tuples and callbacks; the
  hot path (``step``) does no allocation beyond the generator resume.
* **Small surface** — only the primitives the communication runtimes need:
  one-shot events, timeouts, processes, and all-of/any-of conditions.

Typical usage::

    env = Environment()

    def pinger(env, out):
        yield env.timeout(1.5)
        out.append(env.now)

    acc = []
    env.process(pinger(env, acc))
    env.run()
    assert acc == [1.5]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
]

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-triggering)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, at which point it is placed on the event
    queue and its callbacks run when the simulation reaches it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful when triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exc`` thrown into them unless they
        defuse the event first.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = exc
        self._ok = False
        self.env._schedule_event(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- internals ------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future."""

    __slots__ = ("delay", "_timeout_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._timeout_value = value
        env._schedule_event(self, delay)

    def _run_callbacks(self) -> None:
        # The value materializes only when the timer fires, so a pending
        # timeout is not "triggered" (matters for AnyOf/AllOf collection).
        self._value = self._timeout_value
        self._ok = True
        super()._run_callbacks()


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator may ``yield`` any :class:`Event` (including other
    processes).  When the yielded event triggers, the process resumes with
    the event's value (or has the failure exception thrown into it).  When
    the generator returns, the process event succeeds with the return value.
    """

    __slots__ = ("_gen", "_target", "name")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(gen, "send"):
            raise TypeError(f"process requires a generator, got {type(gen).__name__}")
        self._gen = gen
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Bootstrap: resume the generator at the current time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        if self._gen is self.env._active_gen:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever it is waiting on, then resume with the error.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        kick = Event(self.env)
        kick.callbacks.append(self._resume)
        kick.fail(Interrupt(cause))
        kick.defuse()

    # -- internals ------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        env = self.env
        env._active_gen = self._gen
        self._target = None
        event: Optional[Event] = trigger
        while event is not None:
            try:
                if event._ok:
                    nxt = self._gen.send(event._value)
                else:
                    event._defused = True
                    nxt = self._gen.throw(event._value)
            except StopIteration as stop:
                env._active_gen = None
                super().succeed(stop.value)
                return
            except BaseException as exc:
                env._active_gen = None
                super().fail(exc)
                return
            if not isinstance(nxt, Event):
                env._active_gen = None
                msg = f"process {self.name!r} yielded non-event {nxt!r}"
                super().fail(SimulationError(msg))
                return
            if nxt.callbacks is None:
                # Already processed: resume immediately with its value.
                event = nxt
                continue
            nxt.callbacks.append(self._resume)
            self._target = nxt
            event = None
        env._active_gen = None


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev.triggered and ev._ok
        }

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._seq = 0
        self._active_gen: Optional[Generator] = None
        #: Optional :class:`repro.faults.FaultInjector`.  When installed,
        #: :meth:`charged_timeout` dilates CPU-work delays through its
        #: straggler model; ``None`` keeps the hook a no-op.
        self.faults = None
        #: Optional :class:`repro.obs.profile.ProfileContext`.  When
        #: installed, :meth:`run` brackets the dispatch loop in a
        #: ``sim.engine.run`` region and folds event/heap work counts
        #: into the counter registry on exit.  The hot path (``step`` /
        #: ``_schedule_event``) is untouched either way: schedules are
        #: already counted by ``_seq`` and fires by the run loop, so
        #: profiling adds zero per-event cost.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def charged_timeout(self, delay: float, actor: Optional[int] = None) -> Timeout:
        """A timeout representing ``delay`` seconds of CPU *work* by host
        ``actor``.  Plain :meth:`timeout` models elapsed time; this hook
        lets an installed fault injector stretch the work when the actor
        is inside a straggler window.  Without an injector it is exactly
        ``timeout(delay)``.
        """
        if self.faults is not None:
            delay = self.faults.dilate(actor, delay, self._now)
        return Timeout(self, delay)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def schedule_callback(
        self, delay: float, fn: Callable[[], None]
    ) -> Event:
        """Run ``fn`` after ``delay``; returns the underlying event."""
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Process the next event; raises IndexError when queue is empty."""
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or event cap.

        ``max_events`` is a safety valve against accidental livelock in
        polling loops; exceeding it raises :class:`SimulationError`.
        """
        prof = self.profiler
        if prof is not None:
            seq0 = self._seq
            prof.enter("sim.engine.run")
        count = 0
        heap = self._heap
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return
                self.step()
                count += 1
                if max_events is not None and count > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now:.9f}"
                    )
            if until is not None:
                self._now = until
        finally:
            if prof is not None:
                prof.exit()
                scheduled = self._seq - seq0
                ctr = prof.counters
                ctr.inc("sim.events_scheduled", scheduled)
                ctr.inc("sim.events_fired", count)
                # Every schedule pushes; every fire pops.
                ctr.inc("sim.heap_ops", scheduled + count)

    def run_process(self, proc: Process, until: Optional[float] = None) -> Any:
        """Run until ``proc`` completes and return its value."""
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self._now}"
            )
        if not proc.ok:
            raise proc._value
        return proc.value
