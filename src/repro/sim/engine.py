"""Deterministic discrete-event simulation kernel.

A minimal, fast coroutine scheduler in the style of SimPy.  The design goals
are:

* **Determinism** — events scheduled for the same timestamp fire in
  scheduling order (a monotonically increasing sequence number breaks ties),
  so a run is a pure function of its inputs and seeds.
* **Low overhead** — the scheduler is a *calendar queue* (bucketed by
  timestamp, heap fallback for far-future events) and the dominant
  ``timeout(d)``-then-resume pattern has a zero-allocation fast path: a
  process may ``yield`` a plain number instead of a :class:`Timeout` and
  the kernel schedules a raw tuple-entry bound to the process, no Event
  object at all.
* **Small surface** — only the primitives the communication runtimes need:
  one-shot events, timeouts, processes, and all-of/any-of conditions.

Scheduler structure (see docs/MODEL.md §13 for the full design):

* the **current bucket** is a real heap (``heappush``/``heappop``), so the
  next event is O(1) to find;
* **future buckets** inside the calendar window are plain append-only
  lists — scheduling into them is one list append; a bucket is heapified
  once, when the clock reaches it;
* events beyond the window go to an **overflow heap**; when the window
  drains the calendar *rebases* onto the overflow minimum and migrates
  everything that now fits.  Workloads whose delays dwarf the bucket
  width degrade gracefully: a streak of near-empty rebases grows the
  bucket width geometrically (the calendar resize), and with
  ``bucket_width=float("inf")`` the calendar degenerates to the classic
  single-heap scheduler (used by the determinism property tests).

Every entry is ``(when, seq, ...)`` and pops are strictly lexicographic
on ``(when, seq)``, so the event order — and therefore every simulated
run — is bit-identical to the single-heap scheduler's.

Typical usage::

    env = Environment()

    def pinger(env, out):
        yield env.timeout(1.5)
        out.append(env.now)

    acc = []
    env.process(pinger(env, acc))
    env.run()
    assert acc == [1.5]
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
]

_PENDING = object()

_INF = float("inf")

#: Default calendar geometry.  The simulated runtimes operate at
#: sub-microsecond granularity (atomic ops ~5e-8 s, NIC latency ~1e-6 s,
#: aggregate flush timeouts 1e-4 s), so a 1 µs bucket over a ~1 ms window
#: keeps every delay the communication stack produces inside the calendar;
#: only pathological far-future events touch the overflow heap.
_DEFAULT_BUCKET_WIDTH = 1e-6
_DEFAULT_NUM_BUCKETS = 1024

#: A rebase that migrates at most this many entries is "near empty".
_SPARSE_REBASE = 2
#: After this many consecutive near-empty rebases the bucket width grows.
_RESIZE_STREAK = 4
#: Geometric growth factor of the calendar resize.
_RESIZE_FACTOR = 16.0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-triggering)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, at which point it is placed on the event
    queue and its callbacks run when the simulation reaches it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful when triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exc`` thrown into them unless they
        defuse the event first.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = exc
        self._ok = False
        self.env._schedule_event(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- internals ------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future."""

    __slots__ = ("delay", "_timeout_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + schedule: a Timeout is born scheduled,
        # so the generic succeed() path (extra call, triggered check) is
        # skipped entirely.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._scheduled = True
        self._defused = False
        self.delay = delay
        self._timeout_value = value
        seq = env._seq + 1
        env._seq = seq
        when = env._now + delay
        env._push(when, (when, seq, self))

    def _run_callbacks(self) -> None:
        # The value materializes only when the timer fires, so a pending
        # timeout is not "triggered" (matters for AnyOf/AllOf collection).
        self._value = self._timeout_value
        self._ok = True
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)


class _FastTrigger:
    """Stand-in trigger for the zero-allocation timeout resume path.

    Behaves like an already-succeeded Event with value ``None`` for the
    two attributes :meth:`Process._resume` reads; shared singleton, never
    mutated.
    """

    __slots__ = ()
    _ok = True
    _value = None


_FAST_TRIGGER = _FastTrigger()


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator may ``yield`` any :class:`Event` (including other
    processes) — or, on the fast path, a plain non-negative number,
    meaning "resume me after that many simulated seconds" with no Event
    allocated at all (exactly equivalent to yielding ``env.timeout(d)``,
    same sequence-number consumption, same firing order).  When the
    yielded event triggers, the process resumes with the event's value
    (or has the failure exception thrown into it).  When the generator
    returns, the process event succeeds with the return value.
    """

    __slots__ = ("_gen", "_target", "name", "_resume_cb", "_fast_cb",
                 "_fast_token")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(gen, "send"):
            raise TypeError(f"process requires a generator, got {type(gen).__name__}")
        self._gen = gen
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Pre-bound callbacks: one bound-method allocation per process
        # lifetime instead of one per wait.
        self._resume_cb = self._resume
        self._fast_cb = self._fast_fire
        #: Generation token of the pending fast-timeout entry, if any.
        #: Bumped on every fast wait *and* on interrupt, so a stale entry
        #: popped later compares unequal and becomes a no-op (this is how
        #: the fast path supports Interrupt without queue surgery).
        self._fast_token = 0
        # Bootstrap: resume the generator at the current time.
        init = Event(env)
        init.callbacks.append(self._resume_cb)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        if self._gen is self.env._active_gen:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever it is waiting on, then resume with the error.
        # A pending fast-timeout entry cannot be removed from the calendar
        # cheaply; invalidating its token makes it fizzle instead.
        self._fast_token += 1
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        kick = Event(self.env)
        kick.callbacks.append(self._resume_cb)
        kick.fail(Interrupt(cause))
        kick.defuse()

    # -- internals ------------------------------------------------------
    def _fast_fire(self, token: int) -> None:
        """A fast-timeout calendar entry reached its timestamp."""
        if token != self._fast_token:
            return  # cancelled by interrupt(): stale generation
        self._fast_token = token + 1
        self._resume(_FAST_TRIGGER)

    def _resume(self, trigger) -> None:
        env = self.env
        gen = self._gen
        env._active_gen = gen
        self._target = None
        send = gen.send
        event = trigger
        while True:
            try:
                if event._ok:
                    nxt = send(event._value)
                else:
                    event._defused = True
                    nxt = gen.throw(event._value)
            except StopIteration as stop:
                env._active_gen = None
                Event.succeed(self, stop.value)
                return
            except BaseException as exc:
                env._active_gen = None
                Event.fail(self, exc)
                return
            cls = nxt.__class__
            if cls is float or cls is int:
                # Zero-allocation timeout: schedule a raw calendar entry
                # bound to this process, no Timeout object.
                if nxt < 0:
                    env._active_gen = None
                    Event.fail(
                        self, SimulationError(f"negative timeout delay: {nxt}")
                    )
                    return
                env._schedule_fast(self, nxt)
                break
            if not isinstance(nxt, Event):
                env._active_gen = None
                msg = f"process {self.name!r} yielded non-event {nxt!r}"
                Event.fail(self, SimulationError(msg))
                return
            if nxt.callbacks is None:
                # Already processed: resume immediately with its value.
                event = nxt
                continue
            nxt.callbacks.append(self._resume_cb)
            self._target = nxt
            break
        env._active_gen = None


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        check = self._check
        for ev in self._events:
            if ev.callbacks is None:
                check(ev)
            else:
                ev.callbacks.append(check)

    def _collect(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self._events)
            if ev.triggered and ev._ok
        }

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class Environment:
    """The simulation clock and calendar-queue event scheduler.

    ``bucket_width``/``num_buckets`` pin the calendar geometry (mostly
    for tests): ``bucket_width=float("inf")`` collapses the calendar to
    the classic single-heap scheduler, tiny widths force every schedule
    through the overflow-heap fallback.  The default geometry covers the
    communication stack's whole delay spectrum, and the width grows
    automatically when a workload's timescale dwarfs it.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        bucket_width: Optional[float] = None,
        num_buckets: int = _DEFAULT_NUM_BUCKETS,
    ):
        if num_buckets < 1:
            raise SimulationError("calendar needs at least one bucket")
        width = _DEFAULT_BUCKET_WIDTH if bucket_width is None else bucket_width
        if width <= 0:
            raise SimulationError(f"bucket width must be positive: {width}")
        self._now = float(initial_time)
        self._seq = 0
        self._active_gen: Optional[Generator] = None
        # -- calendar state --
        self._width = float(width)
        self._nb = int(num_buckets)
        self._base = self._now            # absolute time of bucket 0
        self._cur: List[tuple] = []       # heap: entries with when < _cur_end
        self._cur_idx = 0                 # bucket index mapped into _cur
        self._cur_end = self._base + self._width
        self._buckets: List[List[tuple]] = [[] for _ in range(self._nb)]
        self._far: List[tuple] = []       # overflow heap beyond the window
        self._far_ops = 0                 # heap-fallback pushes + migrations
        self._rebase_streak = 0
        #: Optional :class:`repro.faults.FaultInjector`.  When installed,
        #: :meth:`charged_timeout` dilates CPU-work delays through its
        #: straggler model; ``None`` keeps the hook a no-op.
        self.faults = None
        #: Optional :class:`repro.obs.profile.ProfileContext`.  When
        #: installed, :meth:`run` brackets the dispatch loop in a
        #: ``sim.engine.run`` region and folds event/scheduler work counts
        #: into the counter registry on exit.  The hot path (dispatch /
        #: ``_push``) is untouched either way: schedules are already
        #: counted by ``_seq``, fires by the run loop, and fallback ops by
        #: a plain attribute touched only on the (rare) overflow path —
        #: profiling adds zero per-event cost.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def charged_timeout(self, delay: float, actor: Optional[int] = None) -> float:
        """Delay representing ``delay`` seconds of CPU *work* by host
        ``actor``, for a process to ``yield`` directly (the fast path).
        Plain :meth:`timeout` models elapsed time; this hook lets an
        installed fault injector stretch the work when the actor is
        inside a straggler window.  Without an injector the returned
        delay is exactly ``delay``.
        """
        if self.faults is not None:
            delay = self.faults.dilate(actor, delay, self._now)
        return delay

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _push(self, when: float, entry: tuple) -> None:
        """File ``entry`` (keyed ``(when, seq, ...)``) into the calendar."""
        if when < self._cur_end:
            heappush(self._cur, entry)
            return
        i = int((when - self._base) / self._width)
        if i < self._nb:
            # Floating point can floor a boundary value back into the
            # already-drained span; the next bucket is where it belongs.
            if i <= self._cur_idx:
                i = self._cur_idx + 1
                if i >= self._nb:
                    self._far_ops += 1
                    heappush(self._far, entry)
                    return
            self._buckets[i].append(entry)
        else:
            self._far_ops += 1
            heappush(self._far, entry)

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        event._scheduled = True
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay
        self._push(when, (when, seq, event))

    def _schedule_fast(self, proc: Process, delay: float) -> None:
        """Raw calendar entry resuming ``proc`` — the zero-allocation
        equivalent of ``Timeout`` + resume callback (consumes exactly one
        sequence number, fires in exactly the same order)."""
        seq = self._seq + 1
        self._seq = seq
        token = proc._fast_token + 1
        proc._fast_token = token
        when = self._now + delay
        self._push(when, (when, seq, proc._fast_cb, token))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` — a raw calendar entry with no
        Event allocated.  The fire-and-forget sibling of
        :meth:`schedule_callback` for callers that discard the event."""
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay
        self._push(when, (when, seq, fn))

    def schedule_callback(
        self, delay: float, fn: Callable[[], None]
    ) -> Event:
        """Run ``fn`` after ``delay``; returns the underlying event."""
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- calendar maintenance -------------------------------------------
    def _advance(self) -> bool:
        """Move the current-bucket heap to the next nonempty span.

        Returns False when the whole calendar (buckets and overflow heap)
        is empty.  Idempotent: re-entering while ``_cur`` holds entries is
        a no-op, so nested uses (``peek()`` from inside a dispatched
        callback, then the run loop) cannot promote past a live bucket.
        """
        if self._cur:
            return True
        buckets = self._buckets
        nb = self._nb
        i = self._cur_idx + 1
        while True:
            while i < nb:
                b = buckets[i]
                if b:
                    buckets[i] = []
                    heapify(b)
                    self._cur = b
                    self._cur_idx = i
                    self._cur_end = self._base + (i + 1) * self._width
                    return True
                i += 1
            # Window exhausted: rebase onto the overflow heap.
            far = self._far
            if not far:
                return False
            width = self._width
            self._base = base = far[0][0]
            horizon = base + nb * width
            migrated = 0
            while far and far[0][0] < horizon:
                e = heappop(far)
                j = int((e[0] - base) / width)
                if j >= nb:
                    j = nb - 1
                buckets[j].append(e)
                migrated += 1
            self._far_ops += migrated
            # Calendar resize: a streak of near-empty rebases means the
            # workload's timescale dwarfs the bucket width (the calendar
            # is degenerating into one heap op per event).  Growing the
            # width geometrically restores O(1) scheduling; order is
            # untouched because entries carry their own (when, seq) keys.
            if migrated <= _SPARSE_REBASE:
                self._rebase_streak += 1
                if self._rebase_streak >= _RESIZE_STREAK and width < _INF:
                    self._rebase_streak = 0
                    self._resize(width * _RESIZE_FACTOR)
                    # _resize rebuilt _cur/_buckets/_far (and set
                    # _cur_idx/_cur_end) under the new geometry; the
                    # locals drained above and the rebase below refer
                    # to the *old* calendar.  Restart the scan on the
                    # fresh state instead of falling through.
                    if self._cur:
                        return True
                    buckets = self._buckets
                    i = self._cur_idx + 1
                    continue
            else:
                self._rebase_streak = 0
            self._cur_idx = -1
            self._cur_end = base
            i = 0

    def _resize(self, new_width: float) -> None:
        """Redistribute every pending entry under a new bucket width.

        Safe at any point between event dispatches: entries carry their
        own ``(when, seq)`` keys, so pop order — and therefore the run —
        is unaffected.  Exposed for tests via :meth:`resize`.
        """
        if new_width <= 0:
            raise SimulationError(f"bucket width must be positive: {new_width}")
        pending: List[tuple] = list(self._cur)
        for b in self._buckets:
            if b:
                pending.extend(b)
                # Empty the drained list in place so any stale alias
                # (e.g. a scan loop holding the old bucket table) sees
                # an empty bucket rather than re-delivering entries.
                del b[:]
        pending.extend(self._far)
        self._width = float(new_width)
        self._base = self._now
        self._cur = []
        self._cur_idx = 0
        self._cur_end = self._base + self._width
        self._buckets = [[] for _ in range(self._nb)]
        self._far = []
        for e in pending:
            self._push(e[0], e)

    def resize(self, bucket_width: float) -> None:
        """Change the calendar bucket width mid-run (order-preserving)."""
        self._resize(bucket_width)

    # -- execution ------------------------------------------------------
    def _dispatch(self, entry: tuple) -> None:
        if len(entry) == 4:
            entry[2](entry[3])        # fast-timeout resume
            return
        obj = entry[2]
        if isinstance(obj, Event):
            obj._run_callbacks()
        else:
            obj()                     # call_later raw callback

    def step(self) -> None:
        """Process the next event; raises IndexError when queue is empty."""
        if not self._cur and not self._advance():
            raise IndexError("pop from an empty event queue")
        entry = heappop(self._cur)
        self._now = entry[0]
        self._dispatch(entry)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none."""
        if not self._cur and not self._advance():
            return _INF
        return self._cur[0][0]

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or event cap.

        ``max_events`` is a safety valve against accidental livelock in
        polling loops; exceeding it raises :class:`SimulationError`.
        """
        prof = self.profiler
        if prof is not None:
            seq0 = self._seq
            far0 = self._far_ops
            prof.enter("sim.engine.run")
        count = 0
        limit = max_events if max_events is not None else _INF
        pop = heappop
        try:
            while True:
                # Re-read each iteration: callbacks may promote a bucket
                # (via peek/step) or resize the calendar, replacing _cur.
                cur = self._cur
                if not cur:
                    if not self._advance():
                        break
                    cur = self._cur
                if until is not None and cur[0][0] > until:
                    self._now = until
                    return
                entry = pop(cur)
                self._now = entry[0]
                count += 1
                # Inlined _dispatch: this branch pair is the hottest code
                # in the simulator.
                if len(entry) == 4:
                    entry[2](entry[3])
                else:
                    obj = entry[2]
                    if isinstance(obj, Event):
                        obj._run_callbacks()
                    else:
                        obj()
                if count > limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now:.9f}"
                    )
            if until is not None:
                self._now = until
        finally:
            if prof is not None:
                prof.exit()
                scheduled = self._seq - seq0
                ctr = prof.counters
                ctr.inc("sim.events_scheduled", scheduled)
                ctr.inc("sim.events_fired", count)
                # Total scheduler ops: every schedule files an entry,
                # every fire pops one (the counter's meaning since the
                # single-heap scheduler; kept for trajectory continuity).
                ctr.inc("sim.heap_ops", scheduled + count)
                # Fallback breakdown, only when the overflow heap actually
                # engaged: the canonical workloads fit entirely inside the
                # calendar window, and emitting always-zero keys would
                # change their counter fingerprints for no information.
                far = self._far_ops - far0
                if far:
                    ctr.inc("sim.heap_fallback_ops", far)
                    ctr.inc("sim.bucket_ops", scheduled + count - far)

    def run_process(self, proc: Process, until: Optional[float] = None) -> Any:
        """Run until ``proc`` completes and return its value."""
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self._now}"
            )
        if not proc.ok:
            raise proc._value
        return proc.value
