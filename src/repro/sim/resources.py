"""Synchronization resources for simulated actors.

These mirror the primitives the communication runtimes are built from:

* :class:`Store` — an unbounded (or bounded) FIFO channel; the simulated
  analogue of a producer/consumer queue whose *synchronization cost* is
  charged separately by the caller (the data-structure itself is exact).
* :class:`Resource` — a counting semaphore (e.g. NIC injection credits).
* :class:`Lock` — a mutex with optional per-acquisition cost, used to model
  the global lock of ``MPI_THREAD_MULTIPLE`` implementations.

All wait queues are FIFO, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Store", "Resource", "Lock"]


class Store:
    """FIFO channel of Python objects with blocking ``get``/``put`` events.

    ``capacity`` bounds the number of buffered items; ``put`` on a full
    store blocks until space frees.  ``items`` exposes the current buffer
    for inspection (tests, monitors) — do not mutate it directly.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the returned event fires once it is stored."""
        ev = Event(self.env)
        if self._getters:
            # Hand off directly to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Remove and return the oldest item (event value)."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return item
        return None

    def _admit_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed(None)


class Resource:
    """Counting semaphore with FIFO admission."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        """Acquire one unit; event fires on grant."""
        ev = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def try_request(self) -> bool:
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self.in_use -= 1


class Lock:
    """A mutex whose acquisition charges a modeled cost.

    ``acquire_cost`` models the uncontended lock overhead (e.g. an atomic
    CAS plus a memory fence); queueing under contention adds real simulated
    waiting on top.  Use :meth:`held` generator form::

        yield from lock.held(actor_gen())

    or explicit ``yield lock.acquire()`` / ``lock.release()``.
    """

    def __init__(self, env: Environment, acquire_cost: float = 0.0):
        self.env = env
        self.acquire_cost = acquire_cost
        self._sem = Resource(env, capacity=1)
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._sem.in_use > 0

    def acquire(self):
        """Generator: wait for the lock, then charge the acquire cost."""
        if not self._sem.try_request():
            self.contended_acquisitions += 1
            yield self._sem.request()
        self.acquisitions += 1
        if self.acquire_cost > 0:
            yield self.env.timeout(self.acquire_cost)

    def release(self) -> None:
        self._sem.release()

    def held(self, body):
        """Run generator ``body`` while holding the lock."""
        yield from self.acquire()
        try:
            result = yield from body
        finally:
            self.release()
        return result
