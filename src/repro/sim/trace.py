"""Execution tracing: record spans of simulated activity per host.

A :class:`Tracer` collects named, categorized spans ("host 3 spent
[t0, t1] in compute", "... in reduce-scatter") and exports them in the
Chrome trace-event format (``chrome://tracing`` / Perfetto), with one
process row per simulated host and one thread row per actor.  The BSP
engine emits spans when given a tracer (``EngineConfig.tracer``), which
makes the gather-communicate-scatter pipeline of Fig. 2 directly
visible on a timeline.

The tracer is pure instrumentation: it never advances simulated time.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "atomic_write_json"]


def atomic_write_json(path: str, obj) -> str:
    """Write ``obj`` as JSON via temp-file + ``os.replace``.

    An interrupted run can never leave a truncated/corrupt file at
    ``path``: either the old contents survive or the new ones land
    whole.  The temp file lives in the destination directory so the
    replace stays on one filesystem (rename atomicity).
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(obj, f)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


@dataclass
class Span:
    """One closed interval of simulated activity."""

    host: int
    actor: str
    category: str
    name: str
    start: float
    end: float
    args: Dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _OpenSpan:
    __slots__ = ("tracer", "host", "actor", "category", "name", "start", "args")

    def __init__(self, tracer, host, actor, category, name, start, args):
        self.tracer = tracer
        self.host = host
        self.actor = actor
        self.category = category
        self.name = name
        self.start = start
        self.args = args

    def close(self, end: float, **extra) -> Span:
        args = dict(self.args)
        args.update(extra)
        span = Span(
            self.host, self.actor, self.category, self.name,
            self.start, end, args,
        )
        self.tracer._spans.append(span)
        return span


class Tracer:
    """Collects spans and instant events from simulated components."""

    def __init__(self, env=None, enabled: bool = True):
        self.env = env
        self.enabled = enabled
        self._spans: List[Span] = []
        self._instants: List[Dict] = []

    # ------------------------------------------------------------------
    def begin(
        self, host: int, category: str, name: str,
        actor: str = "main", **args,
    ) -> Optional[_OpenSpan]:
        """Open a span at the current simulated time (needs ``env``)."""
        if not self.enabled:
            return None
        if self.env is None:
            raise ValueError("Tracer.begin requires an Environment")
        return _OpenSpan(self, host, actor, category, name, self.env.now, args)

    def end(self, open_span: Optional[_OpenSpan], **extra) -> Optional[Span]:
        if open_span is None:
            return None
        return open_span.close(self.env.now, **extra)

    def record(
        self, host: int, category: str, name: str,
        start: float, end: float, actor: str = "main", **args,
    ) -> None:
        """Record an already-timed span."""
        if not self.enabled:
            return
        self._spans.append(Span(host, actor, category, name, start, end, args))

    def instant(
        self, host: int, name: str, time: float,
        category: str = "events", **args,
    ) -> None:
        """A zero-duration marker (e.g. 'round 7 barrier', 'drop EGR->3').

        ``category`` groups instants into their own thread row per host in
        the Chrome export (fault injections use ``"fault"``).
        """
        if not self.enabled:
            return
        self._instants.append(
            {"host": host, "name": name, "time": time,
             "category": category, "args": args}
        )

    @property
    def instants(self) -> List[Dict]:
        return list(self._instants)

    def instants_for(self, category: Optional[str] = None) -> List[Dict]:
        if category is None:
            return list(self._instants)
        return [i for i in self._instants if i["category"] == category]

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def spans_for(self, host: Optional[int] = None,
                  category: Optional[str] = None) -> List[Span]:
        out = self._spans
        if host is not None:
            out = [s for s in out if s.host == host]
        if category is not None:
            out = [s for s in out if s.category == category]
        return list(out)

    def total_time(self, host: int, category: str) -> float:
        return sum(s.duration for s in self.spans_for(host, category))

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON (times in microseconds)."""
        events = []
        for s in self._spans:
            events.append({
                "ph": "X",
                "pid": s.host,
                "tid": s.actor,
                "cat": s.category,
                "name": s.name,
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "args": s.args,
            })
        for i in self._instants:
            events.append({
                "ph": "i",
                "pid": i["host"],
                "tid": i.get("category", "events"),
                "cat": i.get("category", "events"),
                "name": i["name"],
                "ts": i["time"] * 1e6,
                "s": "p",
                "args": i["args"],
            })
        # Name and order the process rows after the hosts.  Metadata is
        # emitted in sorted (pid, name) order so the export is stable
        # for golden-file comparisons.
        hosts = sorted({s.host for s in self._spans}
                       | {i["host"] for i in self._instants})
        for h in hosts:
            events.append({
                "ph": "M",
                "pid": h,
                "name": "process_name",
                "args": {"name": f"host {h}"},
            })
            events.append({
                "ph": "M",
                "pid": h,
                "name": "process_sort_index",
                "args": {"sort_index": h},
            })
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def save(self, path: str) -> str:
        """Write the Chrome trace atomically (temp file + replace)."""
        return atomic_write_json(path, self.to_chrome_trace())

    def __len__(self) -> int:
        return len(self._spans)
