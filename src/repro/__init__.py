"""Reproduction of "A Lightweight Communication Runtime for Distributed
Graph Analytics" (Dang, Brooks, Dryden, Snir, Dathathri, Gill, Lenharth,
Hoang, Pingali — IPDPS 2018) on a simulated cluster substrate.

Package map (see README.md and DESIGN.md):

* :mod:`repro.sim`    — discrete-event kernel, machine models, tracing
* :mod:`repro.netapi` — the simulated NIC (lc_send / lc_put / lc_progress)
* :mod:`repro.mpi`    — simulated MPI (matching, probe, RMA, presets)
* :mod:`repro.lci`    — the paper's contribution: the LCI runtime
* :mod:`repro.graph`  — CSR graphs, generators, partitioners
* :mod:`repro.comm`   — the Abelian communication runtime, three layers
* :mod:`repro.engine` — BSP vertex-program engines (Abelian / Gemini)
* :mod:`repro.apps`   — bfs, cc, sssp, pagerank (+ kcore extension)
* :mod:`repro.bench`  — microbenchmarks, scenario runner, calibration
* :mod:`repro.cli`    — ``python -m repro`` command-line interface

Quick start::

    from repro.apps import Bfs
    from repro.engine import abelian_engine
    from repro.graph.generators import rmat

    engine = abelian_engine(rmat(12), Bfs(source=0), num_hosts=8,
                            layer="lci")
    metrics = engine.run()
"""

__version__ = "1.0.0"
