"""Compressed-sparse-row directed graphs over NumPy arrays.

The whole reproduction computes on real graphs; CSR keeps that fast in
Python by making every per-round kernel a vectorized operation over
``indptr`` / ``indices`` arrays (see the hpc-parallel guide: vectorize the
hot loops, prefer views over copies).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["CsrGraph"]


class CsrGraph:
    """An immutable directed graph in CSR form, with optional edge data.

    ``indptr`` has length ``num_nodes + 1``; the out-neighbours of node
    ``u`` are ``indices[indptr[u]:indptr[u+1]]``.  ``edge_data`` (if
    present) is aligned with ``indices`` (e.g. sssp weights).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        num_nodes: Optional[int] = None,
        edge_data: Optional[np.ndarray] = None,
        name: str = "",
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_nodes = (
            int(num_nodes) if num_nodes is not None else len(self.indptr) - 1
        )
        if len(self.indptr) != self.num_nodes + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} != num_nodes+1 "
                f"({self.num_nodes + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_nodes
        ):
            raise ValueError("edge target out of range")
        self.edge_data = edge_data
        if edge_data is not None and len(edge_data) != len(self.indices):
            raise ValueError("edge_data must align with indices")
        self.name = name
        self._transpose: Optional["CsrGraph"] = None
        self._frozen = False

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def out_degree(self, u: Optional[int] = None):
        """Degree of ``u``, or the full out-degree array."""
        if u is None:
            return np.diff(self.indptr)
        return int(self.indptr[u + 1] - self.indptr[u])

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.indices, minlength=self.num_nodes)

    def neighbors(self, u: int) -> np.ndarray:
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    def edge_sources(self) -> np.ndarray:
        """Source node of every edge, aligned with ``indices``."""
        return np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        edge_data: Optional[np.ndarray] = None,
        dedup: bool = False,
        name: str = "",
    ) -> "CsrGraph":
        """Build CSR from parallel (src, dst) arrays.

        ``dedup=True`` removes duplicate (src, dst) pairs and self loops,
        as the synthetic generators produce multi-edges.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError("src/dst length mismatch")
        if dedup:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if edge_data is not None:
                edge_data = np.asarray(edge_data)[keep]
            key = src * num_nodes + dst
            _, unique_idx = np.unique(key, return_index=True)
            unique_idx.sort()
            src, dst = src[unique_idx], dst[unique_idx]
            if edge_data is not None:
                edge_data = edge_data[unique_idx]
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        if edge_data is not None:
            edge_data = np.asarray(edge_data)[order]
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(indptr, dst, num_nodes, edge_data=edge_data, name=name)

    def freeze(self) -> "CsrGraph":
        """Make the underlying arrays read-only and return ``self``.

        Frozen graphs can be shared safely (the scenario cache hands the
        same instance to every run): any attempted in-place write raises
        ``ValueError: assignment destination is read-only`` at the
        offending site instead of silently corrupting later runs.
        """
        if self._frozen:
            return self
        self._frozen = True
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        if self.edge_data is not None:
            self.edge_data = np.asarray(self.edge_data)
            self.edge_data.setflags(write=False)
        if self._transpose is not None:
            self._transpose.freeze()
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def transpose(self) -> "CsrGraph":
        """The reverse graph (cached); in-edges become out-edges."""
        if self._transpose is None:
            srcs = self.edge_sources()
            self._transpose = CsrGraph.from_edges(
                self.indices,
                srcs,
                self.num_nodes,
                edge_data=self.edge_data,
                name=self.name + ".T",
            )
            self._transpose._transpose = self
            if self._frozen:
                self._transpose.freeze()
        return self._transpose

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays for all edges."""
        return self.edge_sources(), self.indices.copy()

    def __repr__(self) -> str:
        return (
            f"CsrGraph({self.name or 'unnamed'}: |V|={self.num_nodes}, "
            f"|E|={self.num_edges})"
        )
