"""Graph persistence: binary (.npz) and text edge-list formats."""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.graph.csr import CsrGraph

__all__ = ["save_npz", "load_npz", "save_edgelist", "load_edgelist"]


def save_npz(g: CsrGraph, path: str) -> None:
    """Save a graph (CSR arrays + metadata) to a compressed .npz file."""
    payload = {
        "indptr": g.indptr,
        "indices": g.indices,
        "num_nodes": np.int64(g.num_nodes),
        "name": np.bytes_(g.name.encode("utf-8")),
    }
    if g.edge_data is not None:
        payload["edge_data"] = g.edge_data
    np.savez_compressed(path, **payload)


def load_npz(path: str) -> CsrGraph:
    with np.load(path) as data:
        edge_data = data["edge_data"] if "edge_data" in data.files else None
        return CsrGraph(
            data["indptr"],
            data["indices"],
            int(data["num_nodes"]),
            edge_data=edge_data,
            name=bytes(data["name"]).decode("utf-8"),
        )


def save_edgelist(g: CsrGraph, path: str, header: bool = True) -> None:
    """Write a whitespace-separated src dst [weight] text file."""
    src, dst = g.edges()
    with open(path, "w") as f:
        if header:
            f.write(f"# {g.name} |V|={g.num_nodes} |E|={g.num_edges}\n")
        if g.edge_data is not None:
            for s, d, w in zip(src, dst, g.edge_data):
                f.write(f"{s} {d} {w}\n")
        else:
            for s, d in zip(src, dst):
                f.write(f"{s} {d}\n")


def load_edgelist(
    path: str, num_nodes: Optional[int] = None, name: str = ""
) -> CsrGraph:
    """Read a text edge list (lines: ``src dst [weight]``; # comments)."""
    srcs, dsts, weights = [], [], []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) > 2:
                weights.append(int(parts[2]))
    src = np.array(srcs, dtype=np.int64)
    dst = np.array(dsts, dtype=np.int64)
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    edge_data = np.array(weights, dtype=np.int64) if weights else None
    if edge_data is not None and len(edge_data) != len(src):
        raise ValueError("some edges have weights and some do not")
    return CsrGraph.from_edges(
        src, dst, num_nodes, edge_data=edge_data,
        name=name or os.path.basename(path),
    )
