"""Partitioned-graph construction: local graphs, masters/mirrors, and the
precomputed communication metadata the sync phases run on.

A partition policy supplies two arrays — ``owner`` (node -> master host)
and ``edge_owner`` (edge -> host) — and :func:`build_partition` does the
rest: per-host local CSR graphs with masters stored contiguously before
mirrors (the paper's in-memory layout), plus, for every (host, peer)
pair, index arrays for the two synchronization patterns:

* ``reduce``  — mirrors *written* by local edges (edge destinations)
  send to their masters;
* ``broadcast`` — masters send to mirrors *read* by remote edges (edge
  sources).

The index arrays on the two sides of a pattern are aligned element-for-
element, which is the memoized-address-translation trick that lets the
runtime ship bare value arrays with a bitset instead of (id, value)
pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CsrGraph

__all__ = ["LocalGraph", "Partition", "build_partition"]


class LocalGraph:
    """One host's share of the partitioned graph.

    Local node ids: masters occupy ``[0, num_masters)``, mirrors follow —
    both in ascending global-id order.  The CSR arrays are over local ids.
    """

    def __init__(
        self,
        host: int,
        global_ids: np.ndarray,
        num_masters: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_data: Optional[np.ndarray] = None,
    ):
        self.host = host
        self.global_ids = global_ids
        self.num_masters = num_masters
        self.indptr = indptr
        self.indices = indices
        self.edge_data = edge_data
        #: Masks over local ids: does the node appear as an edge source /
        #: destination here?  (drives partition-aware sync selection)
        self.is_edge_src = np.zeros(len(global_ids), dtype=bool)
        self.is_edge_dst = np.zeros(len(global_ids), dtype=bool)
        srcs = np.repeat(
            np.arange(len(global_ids), dtype=np.int64), np.diff(indptr)
        )
        self.is_edge_src[srcs] = True
        self.is_edge_dst[indices] = True
        self._src_cache = srcs

    @property
    def num_local(self) -> int:
        return len(self.global_ids)

    @property
    def num_mirrors(self) -> int:
        return self.num_local - self.num_masters

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def edge_sources(self) -> np.ndarray:
        return self._src_cache

    def is_master(self, local_id) -> bool:
        return local_id < self.num_masters

    def __repr__(self) -> str:
        return (
            f"LocalGraph(host={self.host}, masters={self.num_masters}, "
            f"mirrors={self.num_mirrors}, edges={self.num_edges})"
        )


@dataclass
class SyncPair:
    """Aligned index arrays for one (mirror-host, master-host) pattern.

    ``mirror_ids[i]`` on the mirror host corresponds to ``master_ids[i]``
    on the master host — same global node, ascending global order.
    """

    mirror_host: int
    master_host: int
    mirror_ids: np.ndarray  # local ids at mirror_host
    master_ids: np.ndarray  # local ids at master_host

    def __len__(self) -> int:
        return len(self.mirror_ids)


class Partition:
    """The partitioned graph plus its communication metadata."""

    def __init__(
        self,
        graph: CsrGraph,
        num_hosts: int,
        owner: np.ndarray,
        locals_: List[LocalGraph],
        policy: str,
    ):
        self.graph = graph
        self.num_hosts = num_hosts
        self.owner = owner
        self.locals = locals_
        self.policy = policy
        #: (mirror_host, master_host) -> SyncPair for the reduce pattern
        #: (mirrors that local edges *write*, i.e. edge destinations).
        self.reduce_pairs: Dict[Tuple[int, int], SyncPair] = {}
        #: (mirror_host, master_host) -> SyncPair for the broadcast
        #: pattern (mirrors that local edges *read*, i.e. edge sources).
        self.bcast_pairs: Dict[Tuple[int, int], SyncPair] = {}

    # -- convenience views ---------------------------------------------
    def local(self, host: int) -> LocalGraph:
        return self.locals[host]

    def reduce_out(self, host: int) -> List[SyncPair]:
        """Pairs where ``host`` sends mirror values to masters."""
        return [
            sp for (mh, _ph), sp in self.reduce_pairs.items() if mh == host
        ]

    def reduce_in(self, host: int) -> List[SyncPair]:
        """Pairs where ``host`` receives mirror values onto its masters."""
        return [
            sp for (_mh, ph), sp in self.reduce_pairs.items() if ph == host
        ]

    def bcast_out(self, host: int) -> List[SyncPair]:
        """Pairs where ``host`` sends master values to mirrors."""
        return [
            sp for (_mh, ph), sp in self.bcast_pairs.items() if ph == host
        ]

    def bcast_in(self, host: int) -> List[SyncPair]:
        """Pairs where ``host`` receives master values onto its mirrors."""
        return [
            sp for (mh, _ph), sp in self.bcast_pairs.items() if mh == host
        ]

    def comm_partners(self, host: int) -> set:
        """All hosts this host exchanges messages with in a full sync."""
        partners = set()
        for (mh, ph) in list(self.reduce_pairs) + list(self.bcast_pairs):
            if mh == host:
                partners.add(ph)
            elif ph == host:
                partners.add(mh)
        return partners

    def replication_factor(self) -> float:
        """Average number of proxies per graph node (partition quality)."""
        total = sum(lg.num_local for lg in self.locals)
        return total / max(self.graph.num_nodes, 1)

    def __repr__(self) -> str:
        return (
            f"Partition({self.policy}, hosts={self.num_hosts}, "
            f"graph={self.graph.name}, rf={self.replication_factor():.2f})"
        )


def build_partition(
    graph: CsrGraph,
    num_hosts: int,
    owner: np.ndarray,
    edge_owner: np.ndarray,
    policy: str,
) -> Partition:
    """Materialize local graphs and sync metadata from assignments.

    ``owner``: length |V|, master host of each node.
    ``edge_owner``: length |E| aligned with the CSR edge order.
    """
    owner = np.asarray(owner, dtype=np.int64)
    edge_owner = np.asarray(edge_owner, dtype=np.int64)
    if len(owner) != graph.num_nodes:
        raise ValueError("owner array must cover every node")
    if len(edge_owner) != graph.num_edges:
        raise ValueError("edge_owner array must cover every edge")
    if len(owner) and (owner.min() < 0 or owner.max() >= num_hosts):
        raise ValueError("owner out of host range")

    all_src = graph.edge_sources()
    all_dst = graph.indices
    locals_: List[LocalGraph] = []
    # Per host: (sorted global ids, matching local ids) for vectorized
    # global->local translation via searchsorted.
    g2l_tables: List[Tuple[np.ndarray, np.ndarray]] = []

    for h in range(num_hosts):
        mask = edge_owner == h
        esrc = all_src[mask]
        edst = all_dst[mask]
        edata = graph.edge_data[mask] if graph.edge_data is not None else None

        owned = np.where(owner == h)[0]
        endpoints = np.union1d(esrc, edst)
        mirrors = np.setdiff1d(endpoints, owned, assume_unique=False)
        masters = owned  # every owned node is materialized as a master
        global_ids = np.concatenate([masters, mirrors])
        num_masters = len(masters)

        sort_perm = np.argsort(global_ids, kind="stable")
        sorted_gids = global_ids[sort_perm]
        g2l_tables.append((sorted_gids, sort_perm))

        lsrc = sort_perm[np.searchsorted(sorted_gids, esrc)]
        ldst = sort_perm[np.searchsorted(sorted_gids, edst)]
        order = np.argsort(lsrc, kind="stable")
        lsrc, ldst = lsrc[order], ldst[order]
        if edata is not None:
            edata = edata[order]
        counts = np.bincount(lsrc, minlength=len(global_ids))
        indptr = np.concatenate(([0], np.cumsum(counts)))
        locals_.append(
            LocalGraph(h, global_ids, num_masters, indptr, ldst, edata)
        )

    part = Partition(graph, num_hosts, owner, locals_, policy)

    # ---- sync metadata -------------------------------------------------
    for h, lg in enumerate(locals_):
        if lg.num_mirrors == 0:
            continue
        mirror_slice = slice(lg.num_masters, lg.num_local)
        mirror_globals = lg.global_ids[mirror_slice]
        mirror_locals = np.arange(lg.num_masters, lg.num_local, dtype=np.int64)
        mirror_owners = owner[mirror_globals]
        for kind, mask in (
            ("reduce", lg.is_edge_dst[mirror_slice]),
            ("bcast", lg.is_edge_src[mirror_slice]),
        ):
            if not mask.any():
                continue
            sel_globals = mirror_globals[mask]
            sel_locals = mirror_locals[mask]
            sel_owners = mirror_owners[mask]
            for p in np.unique(sel_owners):
                p = int(p)
                pick = sel_owners == p
                gids = sel_globals[pick]
                lids = sel_locals[pick]
                # ascending-global order on both sides for alignment
                srt = np.argsort(gids)
                gids, lids = gids[srt], lids[srt]
                sorted_gids, sort_perm = g2l_tables[p]
                master_lids = sort_perm[np.searchsorted(sorted_gids, gids)]
                sp = SyncPair(h, p, lids, master_lids)
                if kind == "reduce":
                    part.reduce_pairs[(h, p)] = sp
                else:
                    part.bcast_pairs[(h, p)] = sp
    return part
