"""Gemini's blocked edge-cut partitioning.

Nodes are assigned to hosts in contiguous blocks chosen so that each
block carries roughly the same number of out-edges (Gemini balances
"assigned edges across hosts" — the paper's Section IV description).
Each host receives the out-edges of its own nodes, so every edge source
is a local master; only edge destinations produce mirrors, and a full
synchronization needs only the *reduce* pattern for push-style operators.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import Partition, build_partition

__all__ = ["blocked_edge_cut", "balanced_node_blocks"]


def balanced_node_blocks(graph: CsrGraph, num_blocks: int, alpha: float = 8.0) -> np.ndarray:
    """Contiguous node blocks balancing ``degree + alpha`` per node.

    Gemini's locality-aware chunking balances a hybrid of edges and
    nodes; ``alpha`` is the per-node weight (its paper uses 8 * (p - 1),
    we default to a fixed 8 which behaves identically at small scale).
    Returns ``owner``: node -> block id.
    """
    if num_blocks < 1:
        raise ValueError("need at least one block")
    weights = graph.out_degree().astype(np.float64) + alpha
    cum = np.cumsum(weights)
    total = cum[-1] if len(cum) else 0.0
    bounds = total * (np.arange(1, num_blocks) / num_blocks)
    splits = np.searchsorted(cum, bounds, side="left")
    owner = np.zeros(graph.num_nodes, dtype=np.int64)
    prev = 0
    for b, s in enumerate(splits):
        owner[prev:s + 1] = b
        prev = s + 1
    owner[prev:] = num_blocks - 1
    return owner


def blocked_edge_cut(graph: CsrGraph, num_hosts: int) -> Partition:
    """Partition with Gemini's policy: edge lives with its source's owner."""
    owner = balanced_node_blocks(graph, num_hosts)
    edge_owner = np.repeat(owner, np.diff(graph.indptr))
    return build_partition(graph, num_hosts, owner, edge_owner, "edge-cut")
