"""Graph partitioning for distributed execution (Section II of the paper).

Edges are assigned to hosts; a host materializes proxies for every node
incident to its edges.  The proxy on the node's *owner* host is the
**master** (holds the canonical value); all others are **mirrors**.
Synchronization composes two patterns: **reduce** (mirrors -> master) and
**broadcast** (master -> mirrors).

Two policies are provided, matching the two systems evaluated:

* :func:`~repro.graph.partition.edge_cut.blocked_edge_cut` — Gemini's
  policy: contiguous node blocks balanced by edge count; each host gets
  the out-edges of its own nodes, so sources are always local masters and
  only *reduce* is needed for push-style operators.
* :func:`~repro.graph.partition.vertex_cut.cartesian_vertex_cut` — the
  advanced 2-D policy Abelian uses (the paper's reference [27]): hosts
  form an r x c grid; the edge (u, v) goes to the host at (row of u's
  owner, column of v's owner).  Reduce then happens only within grid
  columns and broadcast only within grid rows, shrinking each host's
  communication partner set from p-1 to about 2*sqrt(p).
"""

from repro.graph.partition.proxies import LocalGraph, Partition, build_partition
from repro.graph.partition.edge_cut import blocked_edge_cut
from repro.graph.partition.vertex_cut import cartesian_vertex_cut, grid_shape

__all__ = [
    "LocalGraph",
    "Partition",
    "build_partition",
    "blocked_edge_cut",
    "cartesian_vertex_cut",
    "grid_shape",
    "make_partition",
]


def make_partition(graph, num_hosts, policy="cvc"):
    """Partition ``graph`` with the named policy ("edge-cut" or "cvc")."""
    if policy in ("edge-cut", "edge_cut", "ec"):
        return blocked_edge_cut(graph, num_hosts)
    if policy in ("cvc", "vertex-cut", "vertex_cut"):
        return cartesian_vertex_cut(graph, num_hosts)
    raise ValueError(f"unknown partition policy {policy!r}")
