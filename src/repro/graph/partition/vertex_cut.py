"""Cartesian vertex cut (CVC) — Abelian's advanced partitioning policy.

Hosts are arranged in an ``r x c`` grid (``r * c == p``).  Nodes are
blocked into ``p`` contiguous ranges (balanced by degree, like the
edge-cut); the edge ``(u, v)`` is assigned to the host sitting at
(row of u's owner, column of v's owner).  Consequences:

* a host's edge *sources* are owned by hosts in its grid **row**, and its
  edge *destinations* by hosts in its grid **column**;
* the reduce pattern only crosses columns (≈ r partners) and broadcast
  only crosses rows (≈ c partners) — each host talks to ~2 sqrt(p) peers
  instead of p-1, which is why Abelian's communication stays structured
  at 128+ hosts (the paper's reference [27]).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.partition.edge_cut import balanced_node_blocks
from repro.graph.partition.proxies import Partition, build_partition

__all__ = ["grid_shape", "cartesian_vertex_cut"]


def grid_shape(num_hosts: int) -> Tuple[int, int]:
    """The most-square (rows, cols) factorization of ``num_hosts``."""
    if num_hosts < 1:
        raise ValueError("num_hosts must be >= 1")
    r = int(math.isqrt(num_hosts))
    while num_hosts % r != 0:
        r -= 1
    return r, num_hosts // r


def cartesian_vertex_cut(graph: CsrGraph, num_hosts: int) -> Partition:
    """Partition with the CVC policy."""
    rows, cols = grid_shape(num_hosts)
    owner = balanced_node_blocks(graph, num_hosts)
    src_owner = np.repeat(owner, np.diff(graph.indptr))
    dst_owner = owner[graph.indices]
    # host id of grid cell (i, j) is i * cols + j
    edge_owner = (src_owner // cols) * cols + (dst_owner % cols)
    part = build_partition(graph, num_hosts, owner, edge_owner, "cvc")
    part.grid = (rows, cols)  # type: ignore[attr-defined]
    return part
