"""Graph substrate: representation, generators, properties, partitioning.

The paper's inputs (Table I) are clueweb12 (a 978M-node web crawl), kron30
and rmat28 (synthetic scale-free graphs).  We provide the same three
*families* at harness-selectable scale: :func:`~repro.graph.generators.rmat`,
:func:`~repro.graph.generators.kron`, and
:func:`~repro.graph.generators.webcrawl` (a clueweb-like bowtie power-law
digraph), plus the partitioning policies the two systems use —
Gemini's blocked edge-cut and Abelian's cartesian vertex cut
(:mod:`repro.graph.partition`).
"""

from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat, kron, webcrawl, GRAPH_FAMILIES, make_graph
from repro.graph.properties import GraphProperties, graph_properties

__all__ = [
    "CsrGraph",
    "rmat",
    "kron",
    "webcrawl",
    "GRAPH_FAMILIES",
    "make_graph",
    "GraphProperties",
    "graph_properties",
]
