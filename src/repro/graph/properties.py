"""Graph property reports — the columns of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CsrGraph

__all__ = ["GraphProperties", "graph_properties"]


@dataclass(frozen=True)
class GraphProperties:
    """|V|, |E|, average degree, and degree extremes."""

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    max_in_degree: int

    def as_row(self) -> dict:
        return {
            "graph": self.name,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "|E|/|V|": round(self.avg_degree, 1),
            "max D_out": self.max_out_degree,
            "max D_in": self.max_in_degree,
        }


def graph_properties(g: CsrGraph) -> GraphProperties:
    out_deg = g.out_degree()
    in_deg = g.in_degrees()
    return GraphProperties(
        name=g.name,
        num_nodes=g.num_nodes,
        num_edges=g.num_edges,
        avg_degree=g.num_edges / max(g.num_nodes, 1),
        max_out_degree=int(out_deg.max()) if len(out_deg) else 0,
        max_in_degree=int(in_deg.max()) if len(in_deg) else 0,
    )
