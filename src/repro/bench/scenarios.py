"""End-to-end benchmark scenarios (Figs 3-6, Tables II & IV).

A :class:`Scenario` names everything one experiment needs — system,
application, input family and scale, host count, communication layer,
machine, MPI implementation — and :func:`run_scenario` executes it on a
fresh simulated cluster and returns the engine's
:class:`~repro.engine.metrics.RunMetrics`.

Scale note: the paper's inputs have 10^8..10^9 nodes; the harness runs
the same generator families at reduced scale (default 2^12..2^14 nodes)
because execution is simulated — host counts stay faithful, absolute
times shrink, and the compute/communication *ratio* can be restored with
``work_scale`` (used by the Fig. 6 breakdown, where the paper's per-host
work is ~10^4x ours).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from repro.apps import make_app
from repro.engine import BspEngine, EngineConfig
from repro.engine.metrics import RunMetrics
from repro.graph.generators import make_graph
from repro.lci.config import LciConfig
from repro.mpi.presets import MPI_PRESETS
from repro.sim.machine import PRESETS as MACHINE_PRESETS

__all__ = ["Scenario", "run_scenario", "build_engine", "cached_graph"]


@lru_cache(maxsize=32)
def cached_graph(family: str, scale: int, seed: int, weights: bool):
    """Generated inputs are shared across scenario runs — frozen, so no
    run (or app bug) can mutate the arrays another run will read."""
    return make_graph(family, scale, seed=seed, weights=weights).freeze()


@dataclass(frozen=True)
class Scenario:
    """One cell of one of the paper's tables/figures."""

    app: str                     # bfs | cc | sssp | pagerank
    graph: str                   # rmat | kron | webcrawl (or paper aliases)
    scale: int                   # log2 number of nodes
    hosts: int
    layer: str                   # lci | mpi-probe | mpi-rma
    system: str = "abelian"      # abelian | gemini
    machine: str = "stampede2"   # stampede2 | stampede1
    mpi_impl: str = "intelmpi"   # intelmpi | mvapich2 | openmpi
    seed: int = 1
    pagerank_rounds: int = 20    # the paper caps at 100; scaled default
    kcore_k: int = 3             # only used by the kcore extension app
    work_scale: float = 1.0
    #: Override the LCI pool geometry (Fig. 5 scale adjustment).
    lci_pool_packets_per_host: Optional[int] = None
    lci_packet_bytes: Optional[int] = None
    lci_pool_packets_min: Optional[int] = None
    #: Named fault plan (``repro.faults.NAMED_PLANS``) to run under;
    #: ``None`` keeps the cluster fault-free.
    fault_plan: Optional[str] = None
    #: Seed of the fault plan's draw streams (defaults to the plan's own).
    fault_seed: Optional[int] = None
    #: Protocol sanitizers: "warn" | "raise" | "off" | None (consult
    #: the ``REPRO_SANITIZE`` environment variable at engine build).
    sanitize: Optional[str] = None

    def label(self) -> str:
        base = (
            f"{self.system}/{self.app}/{self.graph}{self.scale}"
            f"@{self.hosts}h/{self.layer}"
        )
        if self.fault_plan and self.fault_plan != "none":
            base += f"+{self.fault_plan}"
        return base


def run_scenario(sc: Scenario) -> RunMetrics:
    """Execute one scenario on a fresh simulated cluster."""
    return build_engine(sc).run()


def build_engine(
    sc: Scenario, tracer=None, fault_plan=None, obs=None, *,
    app=None, graph=None, partition=None, profile=None, commstats=None,
) -> BspEngine:
    """Construct the (unrun) engine for a scenario.

    ``tracer`` attaches a :class:`repro.sim.trace.Tracer`; ``fault_plan``
    (a plan object or name) overrides the scenario's own ``fault_plan``
    field; ``obs`` attaches a :class:`repro.obs.ObsContext` for
    message-lifecycle tracing; ``profile`` attaches a
    :class:`repro.obs.profile.ProfileContext` for host-side region
    profiling and work counters; ``commstats`` attaches a
    :class:`repro.obs.commstats.CommStatsContext` collecting traffic
    matrices.  Callers that need the engine
    afterwards — for ``assemble_global`` or injector statistics — use
    this instead of :func:`run_scenario`.

    The keyword-only overrides serve long-lived callers
    (:class:`repro.serve.ServeEngine`): ``app`` substitutes an
    already-constructed :class:`~repro.engine.VertexProgram` (the
    scenario's ``app`` field is then only a label), ``graph`` substitutes
    a resident graph for the generated one, and ``partition`` passes a
    resident partition through to :class:`BspEngine` so repeated
    executions skip repartitioning.
    """
    if sc.system not in ("abelian", "gemini"):
        raise ValueError(f"unknown system {sc.system!r}")
    machine = MACHINE_PRESETS[sc.machine]
    if graph is None:
        weights = sc.app == "sssp"
        graph = cached_graph(sc.graph, sc.scale, sc.seed, weights)

    if app is None:
        app_kwargs = {}
        if sc.app == "pagerank":
            app_kwargs["max_rounds"] = sc.pagerank_rounds
            app_kwargs["tol"] = 1e-12
        elif sc.app == "kcore":
            app_kwargs["k"] = sc.kcore_k
        app = make_app(sc.app, **app_kwargs)

    mpi_config = MPI_PRESETS[sc.mpi_impl]
    if sc.machine == "stampede1":
        # Software costs are calibrated for KNL; SNB runs them ~2.5x faster.
        mpi_config = mpi_config.scaled(0.4)

    layer_kwargs: Dict = {}
    if sc.layer in ("mpi-probe", "mpi-rma"):
        layer_kwargs["mpi_config"] = mpi_config
    if sc.layer == "lci":
        lci_kwargs = {}
        if sc.lci_pool_packets_per_host is not None:
            lci_kwargs["pool_packets_per_host"] = sc.lci_pool_packets_per_host
        if sc.lci_packet_bytes is not None:
            lci_kwargs["packet_data_bytes"] = sc.lci_packet_bytes
        if sc.lci_pool_packets_min is not None:
            lci_kwargs["pool_packets_min"] = sc.lci_pool_packets_min
        if lci_kwargs:
            layer_kwargs["lci_config"] = LciConfig(**lci_kwargs)
    if sc.system == "gemini":
        if sc.layer == "mpi-rma":
            raise ValueError("the paper does not evaluate Gemini with MPI-RMA")
        if sc.layer == "mpi-probe":
            layer_kwargs["inline_sends"] = True

    if fault_plan is None and sc.fault_plan is not None:
        from repro.faults import get_plan

        fault_plan = get_plan(sc.fault_plan, sc.fault_seed)

    policy = "cvc" if sc.system == "abelian" else "edge-cut"
    cfg = EngineConfig(
        num_hosts=sc.hosts,
        machine=machine,
        policy=policy,
        layer=sc.layer,
        layer_kwargs=layer_kwargs,
        work_scale=sc.work_scale,
        tracer=tracer,
        fault_plan=fault_plan,
        sanitize=sc.sanitize,
        obs=obs,
        profile=profile,
        commstats=commstats,
    )
    return BspEngine(graph, app, cfg, partition=partition)
