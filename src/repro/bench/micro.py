"""Fig. 1 microbenchmarks: latency and message rate for three interfaces.

The paper's Figure 1 compares, between two hosts:

* **no-probe** — MPI_SEND / MPI_RECV with receives pre-posted at known
  size (the classic osu_latency shape);
* **probe**   — the receiver learns sizes via MPI_IPROBE before posting
  each receive (what irregular graph runtimes must do);
* **queue**   — LCI's SEND-ENQ / RECV-DEQ.

and reports that *queue* reduces communication overhead by up to 3.5x
versus *probe*.  :func:`pingpong_latency` measures half-round-trip time
as a function of message size; :func:`message_rate` measures aggregate
messages/second when many threads per host communicate concurrently —
the regime where MPI_THREAD_MULTIPLE's lock makes MPI rates taper while
LCI keeps scaling.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lci.config import LciConfig
from repro.lci.server import LciRuntime
from repro.mpi.config import MpiConfig, ThreadMode
from repro.mpi.presets import default_mpi
from repro.mpi.world import MpiWorld
from repro.netapi.nic import Fabric
from repro.sim.engine import Environment
from repro.sim.machine import MachineModel, stampede2

__all__ = ["MICRO_INTERFACES", "pingpong_latency", "message_rate"]

MICRO_INTERFACES = ("no-probe", "probe", "queue")


def _mpi_pair(machine: MachineModel, config: Optional[MpiConfig],
              mode: ThreadMode):
    env = Environment()
    fabric = Fabric(env, 2, machine)
    world = MpiWorld(env, fabric, config or default_mpi(), mode)
    return env, world


def _lci_pair(machine: MachineModel, config: Optional[LciConfig]):
    env = Environment()
    fabric = Fabric(env, 2, machine)
    world = LciRuntime.create_world(env, fabric, config=config)
    return env, world


def pingpong_latency(
    interface: str,
    msg_size: int,
    machine: Optional[MachineModel] = None,
    iters: int = 50,
    warmup: int = 5,
    mpi_config: Optional[MpiConfig] = None,
    lci_config: Optional[LciConfig] = None,
) -> float:
    """Half round-trip latency in seconds for one interface.

    Rank 0 sends ``msg_size`` bytes to rank 1, which echoes them back;
    the reported number is mean round-trip / 2 over ``iters`` exchanges
    after ``warmup``.
    """
    if interface not in MICRO_INTERFACES:
        raise ValueError(f"unknown interface {interface!r}")
    machine = machine or stampede2()
    total = iters + warmup
    marks: List[float] = []

    if interface == "queue":
        env, world = _lci_pair(machine, lci_config)

        def rank0(env):
            rt = world[0]
            for i in range(total):
                marks.append(env.now)
                yield from rt.send_blocking(1, tag=0, size=msg_size,
                                            payload=i)
                yield from rt.recv_blocking()
                marks.append(env.now)
            for rt_ in world:
                rt_.stop_server()

        def rank1(env):
            rt = world[1]
            for i in range(total):
                yield from rt.recv_blocking()
                yield from rt.send_blocking(0, tag=0, size=msg_size,
                                            payload=i)

        env.process(rank0(env))
        env.process(rank1(env))
        env.run(max_events=5_000_000)
    else:
        env, world = _mpi_pair(machine, mpi_config, ThreadMode.FUNNELED)
        probing = interface == "probe"

        def rank0(env):
            ep = world.endpoint(0)
            for i in range(total):
                marks.append(env.now)
                yield from ep.send(1, tag=0, size=msg_size, payload=i)
                if probing:
                    status = None
                    while status is None:
                        status = yield from ep.iprobe()
                    yield from ep.recv(status.source, status.tag)
                else:
                    yield from ep.recv(source=1, tag=0)
                marks.append(env.now)

        def rank1(env):
            ep = world.endpoint(1)
            for i in range(total):
                if probing:
                    status = None
                    while status is None:
                        status = yield from ep.iprobe()
                    yield from ep.recv(status.source, status.tag)
                else:
                    yield from ep.recv(source=0, tag=0)
                yield from ep.send(0, tag=0, size=msg_size, payload=i)

        env.process(rank0(env))
        env.process(rank1(env))
        env.run(max_events=5_000_000)

    rtts = [
        marks[2 * i + 1] - marks[2 * i] for i in range(warmup, total)
    ]
    return sum(rtts) / len(rtts) / 2.0


def message_rate(
    interface: str,
    num_threads: int,
    msg_size: int = 64,
    window: int = 32,
    machine: Optional[MachineModel] = None,
    mpi_config: Optional[MpiConfig] = None,
    lci_config: Optional[LciConfig] = None,
) -> float:
    """Aggregate messages/second with ``num_threads`` thread pairs.

    Each sender thread on host 0 pushes ``window`` messages to its
    partner thread on host 1 (tag = thread id for MPI).  MPI interfaces
    run with THREAD_MULTIPLE — every call from every thread serializes
    through the library lock, so rates taper (or decline) as threads
    grow, the behaviour the paper cites from [16]/[18].  LCI threads use
    SEND-ENQ / RECV-DEQ whose only shared state is the lock-free pool
    and queue.
    """
    if interface not in MICRO_INTERFACES:
        raise ValueError(f"unknown interface {interface!r}")
    machine = machine or stampede2()
    total_msgs = num_threads * window
    t_done = {}

    if interface == "queue":
        cfg = lci_config or LciConfig(pool_packets_min=max(256, 4 * total_msgs))
        env, world = _lci_pair(machine, cfg)

        def sender(env, t):
            rt = world[0]
            thread = f"t{t}"
            reqs = []
            for i in range(window):
                req = None
                while req is None:
                    req = yield from rt.send_enq(
                        1, tag=t, size=msg_size, payload=i, thread=thread
                    )
                    if req is None:
                        yield rt.pool.wait_available()
                reqs.append(req)
            # Completion check is a free flag scan.
            for req in reqs:
                while not req.done:
                    ev = env.event()
                    req.on_complete(
                        lambda _r: None if ev.triggered else ev.succeed(None)
                    )
                    yield ev

        remaining = [total_msgs]

        def receiver(env, t):
            rt = world[1]
            thread = f"rx{t}"
            while remaining[0] > 0:
                req = yield from rt.recv_deq(thread=thread)
                if req is None:
                    if remaining[0] <= 0:
                        break
                    yield rt.queue.wait_nonempty()
                    continue
                remaining[0] -= 1
            if "t" not in t_done:
                t_done["t"] = env.now
                for rt_ in world:
                    rt_.stop_server()

        for t in range(num_threads):
            env.process(sender(env, t))
            env.process(receiver(env, t))
        env.run(max_events=20_000_000)
    else:
        # Size the small-message buffer pool like real implementations do
        # for a two-rank job (thousands of credits); the *graph* workloads
        # exhaust buffers because of their all-to-all pressure, not this
        # symmetric benchmark.
        cfg = (mpi_config or default_mpi()).with_(
            eager_credits_per_peer=max(1024, 4 * total_msgs)
        )
        env, world = _mpi_pair(machine, cfg, ThreadMode.MULTIPLE)
        probing = interface == "probe"

        def sender(env, t):
            ep = world.endpoint(0)
            thread = f"t{t}"
            reqs = []
            for i in range(window):
                req = yield from ep.isend(
                    1, tag=t, size=msg_size, payload=i, thread=thread
                )
                reqs.append(req)
            for req in reqs:
                yield from ep.wait(req, thread=thread)

        done_threads = [0]

        def receiver(env, t):
            ep = world.endpoint(1)
            thread = f"rx{t}"
            for _ in range(window):
                if probing:
                    status = None
                    while status is None:
                        status = yield from ep.iprobe(tag=t, thread=thread)
                    yield from ep.recv(status.source, status.tag,
                                       thread=thread)
                else:
                    yield from ep.recv(source=0, tag=t, thread=thread)
            done_threads[0] += 1
            if done_threads[0] == num_threads:
                t_done["t"] = env.now

        for t in range(num_threads):
            env.process(sender(env, t))
            env.process(receiver(env, t))
        env.run(max_events=20_000_000)

    return total_msgs / t_done["t"]
