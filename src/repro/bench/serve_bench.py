"""The serve benchmark behind ``repro bench-serve`` and BENCH_serve.json.

One deterministic heavy-traffic tape served on a small simulated
cluster, plus a miniature Fig. 3-style layer sweep, folded into a
single JSON document committed at the repo root (``BENCH_serve.json``).
Because the whole pipeline is simulated and seeded, the document is
reproducible bit for bit: CI regenerates it and fails on drift, which
turns service throughput/latency regressions into diffable facts.

Fields the acceptance gate reads: ``serve.throughput.queries_per_sec``,
``serve.throughput.messages_per_sec``, ``serve.latency.p50_us`` /
``p95_us`` / ``p99_us``.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from repro.bench.scenarios import Scenario, run_scenario

__all__ = [
    "BENCH_FORMAT",
    "serve_benchmark",
    "bench_doc_to_json",
    "compare_bench_docs",
]

BENCH_FORMAT = "repro-bench-serve/v1"

#: The committed benchmark's shape: small enough for a CI smoke lane,
#: big enough that batching, caching, and backpressure all engage.
DEFAULT_TAPE_QUERIES = 48
DEFAULT_SCALE = 9
DEFAULT_HOSTS = 4
#: Heavy traffic: mean inter-arrival well under one batch execution.
DEFAULT_MEAN_GAP = 1e-05

#: The miniature Fig. 3 sweep bundled into the document (app, layer).
FIG3_CELLS: Tuple[Tuple[str, str], ...] = (
    ("bfs", "lci"),
    ("bfs", "mpi-probe"),
    ("bfs", "mpi-rma"),
    ("pagerank", "lci"),
    ("pagerank", "mpi-probe"),
    ("pagerank", "mpi-rma"),
)


def serve_benchmark(
    scale: int = DEFAULT_SCALE,
    hosts: int = DEFAULT_HOSTS,
    layer: str = "lci",
    num_queries: int = DEFAULT_TAPE_QUERIES,
    tape_seed: int = 7,
    fig3_scale: int = 10,
) -> dict:
    """Build the full benchmark document (deterministic)."""
    from repro.serve import ServeConfig, ServeEngine, TapeSpec

    spec = TapeSpec(
        seed=tape_seed, num_queries=num_queries, scale=scale,
        mean_gap=DEFAULT_MEAN_GAP,
    )
    engine = ServeEngine(ServeConfig(
        scale=scale, hosts=hosts, layer=layer, max_batch=8, ppr_rounds=6,
    ))
    report = engine.run_tape(spec)
    serve_doc = {
        k: v for k, v in report.as_dict().items() if k != "results"
    }

    fig3_rows: List[dict] = []
    for app, fig3_layer in FIG3_CELLS:
        m = run_scenario(Scenario(
            app=app, graph="rmat", scale=fig3_scale, hosts=hosts,
            layer=fig3_layer, pagerank_rounds=6,
        ))
        fig3_rows.append({
            "app": app,
            "layer": fig3_layer,
            "hosts": hosts,
            "time_s": round(m.total_seconds, 9),
            "comm_s": round(m.comm_seconds, 9),
            "rounds": m.rounds,
            "messages": m.blobs_sent,
        })

    return {
        "format": BENCH_FORMAT,
        "tape": spec.as_dict(),
        "serve": serve_doc,
        "fig3": fig3_rows,
    }


def bench_doc_to_json(doc: dict) -> str:
    """Canonical byte-stable serialization (committed file contents)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def compare_bench_docs(fresh: dict, committed: dict,
                       rel_tol: float = 1e-9,
                       path: str = "") -> List[str]:
    """Mismatches between a regenerated doc and the committed one.

    Exact on structure, strings, ints and bools; floats compare to
    ``rel_tol`` so a NumPy point release can't fail CI on last-bit
    noise.  Empty list = documents agree.
    """
    diffs: List[str] = []
    if isinstance(fresh, dict) and isinstance(committed, dict):
        for key in sorted(set(fresh) | set(committed)):
            here = f"{path}.{key}" if path else str(key)
            if key not in fresh:
                diffs.append(f"{here}: missing from regenerated doc")
            elif key not in committed:
                diffs.append(f"{here}: missing from committed doc")
            else:
                diffs.extend(compare_bench_docs(
                    fresh[key], committed[key], rel_tol, here
                ))
        return diffs
    if isinstance(fresh, list) and isinstance(committed, list):
        if len(fresh) != len(committed):
            return [f"{path}: length {len(fresh)} != {len(committed)}"]
        for i, (a, b) in enumerate(zip(fresh, committed)):
            diffs.extend(compare_bench_docs(a, b, rel_tol, f"{path}[{i}]"))
        return diffs
    if isinstance(fresh, float) or isinstance(committed, float):
        a, b = float(fresh), float(committed)
        scale = max(abs(a), abs(b), 1e-30)
        if abs(a - b) / scale > rel_tol:
            return [f"{path}: {a!r} != {b!r}"]
        return []
    if fresh != committed:
        return [f"{path}: {fresh!r} != {committed!r}"]
    return []


def check_against_file(doc: dict, path: str) -> Optional[List[str]]:
    """Compare ``doc`` with the JSON at ``path``; None if unreadable."""
    try:
        with open(path) as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return None
    return compare_bench_docs(doc, committed)
