"""Calibration: tie the model constants to published magnitudes.

The reproduction's claims are relative (who wins, by what factor), but
the absolute simulated numbers should still land in the right decade for
the machines modeled.  This module derives the headline observables from
the models and states the expected ranges, collected from public
sources:

* osu_latency on Stampede2 (KNL + Omni-Path): small-message MPI latency
  ~2-4 us; on Stampede1 (SNB + FDR): ~1.5-3 us.
* psm2 native latency: ~1-2 us; LCI's published microbenchmarks put its
  small-message latency under MPI's on the same fabric.
* Omni-Path line rate 100 Gb/s (12.5 GB/s), FDR 56 Gb/s (7 GB/s).
* KNL single-thread memcpy: a few GB/s; graph kernels on KNL process
  edges at tens of ns/edge.

``calibration_report`` computes each observable from the simulation and
returns (value, low, high) triples; tests assert every one is in range.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.micro import message_rate, pingpong_latency
from repro.sim.machine import stampede1, stampede2

__all__ = ["calibration_report", "CHECKS"]

US = 1e-6

#: observable -> (low, high) acceptance range.
CHECKS: Dict[str, Tuple[float, float]] = {
    # Small-message (8 B) one-way latencies, seconds.
    "s2.mpi_latency": (1.5 * US, 6.0 * US),
    "s2.lci_latency": (0.8 * US, 4.0 * US),
    "s2.probe_latency": (2.0 * US, 9.0 * US),
    "s1.mpi_latency": (1.0 * US, 5.0 * US),
    # LCI is faster than MPI on the same fabric (ratio > 1).
    "s2.mpi_over_lci": (1.2, 4.0),
    # Probe costs more than plain recv (ratio > 1).
    "s2.probe_over_noprobe": (1.05, 3.0),
    # Large-message (64 KiB) latency approaches the bandwidth bound:
    # 64 KiB / 12.3 GB/s ~ 5.3 us plus overheads.
    "s2.mpi_latency_64k": (6.0 * US, 30.0 * US),
    # Single-pair small-message rates, msgs/second.
    "s2.lci_rate": (0.5e6, 20e6),
    "s2.mpi_rate": (0.1e6, 5e6),
}


def calibration_report() -> Dict[str, Tuple[float, float, float]]:
    """Compute every observable; returns name -> (value, low, high)."""
    s2 = stampede2()
    s1 = stampede1()
    obs: Dict[str, float] = {}
    obs["s2.mpi_latency"] = pingpong_latency("no-probe", 8, machine=s2, iters=20)
    obs["s2.lci_latency"] = pingpong_latency("queue", 8, machine=s2, iters=20)
    obs["s2.probe_latency"] = pingpong_latency("probe", 8, machine=s2, iters=20)
    obs["s1.mpi_latency"] = pingpong_latency("no-probe", 8, machine=s1, iters=20)
    obs["s2.mpi_over_lci"] = obs["s2.mpi_latency"] / obs["s2.lci_latency"]
    obs["s2.probe_over_noprobe"] = (
        obs["s2.probe_latency"] / obs["s2.mpi_latency"]
    )
    obs["s2.mpi_latency_64k"] = pingpong_latency(
        "no-probe", 64 * 1024, machine=s2, iters=10
    )
    obs["s2.lci_rate"] = message_rate("queue", 4, machine=s2, window=16)
    obs["s2.mpi_rate"] = message_rate("no-probe", 4, machine=s2, window=16)
    return {
        name: (value, CHECKS[name][0], CHECKS[name][1])
        for name, value in obs.items()
    }
