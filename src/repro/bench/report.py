"""Table rendering and the paper's summary statistics."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.monitor import geometric_mean

__all__ = ["format_table", "geomean_speedup", "format_seconds"]


def format_seconds(s: float) -> str:
    """Human scale: the simulated runs span microseconds to seconds."""
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.2f}us"


def format_table(rows: Sequence[Mapping], columns: Sequence[str] = None) -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    table = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(columns[i]), max(len(row[i]) for row in table))
        for i in range(len(columns))
    ]
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(columns), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in table)
    return "\n".join(lines)


def geomean_speedup(
    baseline: Mapping[str, float], improved: Mapping[str, float]
) -> float:
    """Geometric-mean speedup of ``improved`` over ``baseline``.

    Keys are experiment labels; both mappings must cover the same keys.
    This is the statistic behind the paper's headline numbers (e.g. LCI's
    1.34x geomean over MPI-Probe at 128 hosts).
    """
    keys = sorted(baseline)
    if sorted(improved) != keys:
        raise ValueError("speedup requires matching experiment sets")
    ratios = [baseline[k] / improved[k] for k in keys]
    return geometric_mean(ratios)
