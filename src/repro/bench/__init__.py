"""Benchmark harness: microbenchmarks, scenario runner, and reports.

* :mod:`repro.bench.micro` — the Fig. 1 latency / message-rate
  microbenchmarks over the three interfaces (no-probe, probe, queue).
* :mod:`repro.bench.scenarios` — end-to-end application runs for
  Figs 3-6 and Tables II/IV.
* :mod:`repro.bench.report` — table rendering and geomean speedups.
* :mod:`repro.bench.calibration` — sanity checks tying model constants
  to published magnitudes.
"""

from repro.bench.micro import (
    MICRO_INTERFACES,
    message_rate,
    pingpong_latency,
)
from repro.bench.scenarios import Scenario, run_scenario
from repro.bench.report import format_table, geomean_speedup

__all__ = [
    "MICRO_INTERFACES",
    "message_rate",
    "pingpong_latency",
    "Scenario",
    "run_scenario",
    "format_table",
    "geomean_speedup",
]
