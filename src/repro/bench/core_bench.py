"""The simulator-core benchmark behind ``repro bench-core`` / BENCH_core.json.

A curated set of canonical scenarios run under the host-side profiler
(:mod:`repro.obs.profile`), folded into one JSON document committed at
the repo root.  Each scenario contributes two blocks:

* ``sim`` — **deterministic**: simulated seconds, rounds, message and
  update volumes, event counts, the full work-counter dictionary, and
  its fingerprint.  Pure functions of the scenario, so CI regenerates
  them and fails on drift (exactly the ``BENCH_serve.json`` contract).
  Any perf refactor that changes these changed *behaviour*, not just
  speed.
* ``wall`` — **informational**: host wall-clock for the engine run
  (min over repeats), events/sec, simulated messages/sec.  Machine-
  dependent, so :func:`check_against_file` ignores it; the committed
  values are the *trajectory* later perf PRs show their delta against.

:func:`measure_overhead` times profiler-off vs profiler-on back to back
(min-of-N, interleaved so machine drift cancels); CI bounds the
overhead below 5%.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from repro.bench.scenarios import Scenario, build_engine
from repro.bench.serve_bench import compare_bench_docs
from repro.obs.profile import ProfileContext, wall_now

__all__ = [
    "BENCH_CORE_FORMAT",
    "CANONICAL_SCENARIOS",
    "core_benchmark",
    "bench_core_to_json",
    "strip_wall",
    "check_core_against_file",
    "OVERHEAD_SCENARIO",
    "measure_overhead",
]

BENCH_CORE_FORMAT = "repro-bench-core/v1"

#: The perf trajectory's canonical scenarios: every comm layer, both
#: engines (Abelian cvc + Gemini edge-cut), traversal and fixed-round
#: apps — small enough for a CI lane, hot enough to exercise the event
#: loop, matching walks, pool, and serialization paths.
CANONICAL_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="lci"),
    Scenario(app="pagerank", graph="kron", scale=10, hosts=8,
             layer="mpi-probe", pagerank_rounds=6),
    Scenario(app="sssp", graph="rmat", scale=9, hosts=4, layer="mpi-rma"),
    Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="mpi-probe",
             system="gemini"),
)


def core_benchmark(
    scenarios: Optional[Sequence[Scenario]] = None, repeats: int = 2
) -> dict:
    """Build the benchmark document.

    Every repeat runs under a fresh :class:`ProfileContext`; the
    deterministic block comes from the first run and the remaining
    repeats must reproduce its counter fingerprint exactly (a failed
    reproduction is a determinism bug, reported loudly).  Wall numbers
    take the min over repeats — the least-noise estimator for a
    single-machine trajectory.
    """
    if scenarios is None:
        scenarios = CANONICAL_SCENARIOS
    rows: List[dict] = []
    for sc in scenarios:
        build_engine(sc)  # warm the graph/partition caches untimed
        walls: List[float] = []
        first_ctx = None
        first_metrics = None
        for _ in range(max(1, repeats)):
            ctx = ProfileContext()
            engine = build_engine(sc, profile=ctx)
            t0 = wall_now()
            metrics = engine.run()
            walls.append(wall_now() - t0)
            ctx.flush()  # fold the deferred per-component sources in
            if first_ctx is None:
                first_ctx, first_metrics = ctx, metrics
            elif ctx.counters.fingerprint() != first_ctx.counters.fingerprint():
                raise AssertionError(
                    f"{sc.label()}: counter fingerprint not reproducible "
                    f"({ctx.counters.fingerprint()} != "
                    f"{first_ctx.counters.fingerprint()})"
                )
        counters = first_ctx.counters
        wall = min(walls)
        events = counters.get("sim.events_fired")
        messages = first_metrics.blobs_sent
        rows.append({
            "label": sc.label(),
            "sim": {
                "sim_seconds": round(first_metrics.total_seconds, 9),
                "rounds": first_metrics.rounds,
                "messages": messages,
                "payload_bytes": first_metrics.payload_bytes_sent,
                "updates": first_metrics.updates_shipped,
                "events_fired": events,
                "events_scheduled": counters.get("sim.events_scheduled"),
                "counters": counters.as_dict(),
                "fingerprint": counters.fingerprint(),
            },
            "wall": {
                "wall_seconds": round(wall, 6),
                "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
                "sim_msgs_per_sec": (
                    round(messages / wall, 1) if wall > 0 else 0.0
                ),
            },
        })
    return {"format": BENCH_CORE_FORMAT, "scenarios": rows}


def bench_core_to_json(doc: dict) -> str:
    """Canonical byte-stable serialization (committed file contents)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def strip_wall(doc):
    """A copy of ``doc`` with every ``"wall"`` subtree removed.

    Wall-clock is machine noise; the drift check compares only what a
    correct simulator must reproduce anywhere.
    """
    if isinstance(doc, dict):
        return {k: strip_wall(v) for k, v in sorted(doc.items()) if k != "wall"}
    if isinstance(doc, list):
        return [strip_wall(v) for v in doc]
    return doc


def check_core_against_file(doc: dict, path: str) -> Optional[List[str]]:
    """Drift between ``doc`` and the committed file, wall fields ignored.

    Returns ``None`` when the committed file is unreadable, else the
    (possibly empty) list of mismatches.
    """
    try:
        with open(path) as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return None
    return compare_bench_docs(strip_wall(doc), strip_wall(committed))


#: Default scenario for :func:`measure_overhead`.  Deliberately larger
#: than the trajectory scenarios: region pairs scale with *messages*
#: while wall-clock scales with total simulated work, so a realistic
#: working-set size is the regime the <5% overhead claim is about —
#: tiny graphs overstate the relative cost of the hooks.
OVERHEAD_SCENARIO = Scenario(
    app="pagerank", graph="kron", scale=14, hosts=8, layer="mpi-probe",
    pagerank_rounds=20,
)


def measure_overhead(
    sc: Optional[Scenario] = None, repeats: int = 7
) -> dict:
    """Profiler-on vs profiler-off wall-clock, interleaved min-of-N.

    Returns ``{"scenario", "wall_off", "wall_on", "overhead_pct"}``.
    Off/on runs are interleaved and the order alternates every
    repetition, so slow machine drift (thermal, noisy CI neighbours)
    and any systematic first-vs-second position bias hit both sides
    equally; min-of-N then discards the stragglers.
    """
    if sc is None:
        sc = OVERHEAD_SCENARIO
    build_engine(sc).run()  # warm graph cache, allocator, code paths
    offs: List[float] = []
    ons: List[float] = []
    for i in range(max(1, repeats)):
        order = [(offs, False), (ons, True)]
        if i % 2:
            order.reverse()
        for bucket, profiled in order:
            engine = build_engine(
                sc, profile=ProfileContext() if profiled else None
            )
            t0 = wall_now()
            engine.run()
            bucket.append(wall_now() - t0)
    wall_off, wall_on = min(offs), min(ons)
    return {
        "scenario": sc.label(),
        "wall_off": round(wall_off, 6),
        "wall_on": round(wall_on, 6),
        "overhead_pct": round(100.0 * (wall_on / wall_off - 1.0), 2),
    }
