"""The simulator-core benchmark behind ``repro bench-core`` / BENCH_core.json.

A curated set of canonical scenarios run under the host-side profiler
(:mod:`repro.obs.profile`), folded into one JSON document committed at
the repo root.  Each scenario contributes two blocks:

* ``sim`` — **deterministic**: simulated seconds, rounds, message and
  update volumes, event counts, the full work-counter dictionary, its
  fingerprint, and the communication-observatory totals (wire/blob
  volume + comm fingerprint, from an extra untimed run that also pins
  the observatory's bit-identity contract).  Pure functions of the
  scenario, so CI regenerates them and fails on drift (exactly the
  ``BENCH_serve.json`` contract).  Any perf refactor that changes
  these changed *behaviour*, not just speed.
* ``wall`` — **informational**: host wall-clock for the engine run
  (min over repeats), events/sec, simulated messages/sec.  Machine-
  dependent, so :func:`check_against_file` ignores it; the committed
  values are the *trajectory* later perf PRs show their delta against.

:func:`measure_overhead` times profiler-off vs profiler-on back to back
(min-of-N, interleaved so machine drift cancels); CI bounds the
overhead below 5%.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from repro.bench.scenarios import Scenario, build_engine
from repro.bench.serve_bench import compare_bench_docs
from repro.obs.commstats import CommStatsContext
from repro.obs.profile import ProfileContext, cpu_now, wall_now

__all__ = [
    "BENCH_CORE_FORMAT",
    "CANONICAL_SCENARIOS",
    "core_benchmark",
    "bench_core_to_json",
    "strip_wall",
    "trajectory_point",
    "with_trajectory",
    "compare_core_perf",
    "check_core_against_file",
    "OVERHEAD_SCENARIO",
    "measure_overhead",
]

BENCH_CORE_FORMAT = "repro-bench-core/v1"

#: The perf trajectory's canonical scenarios: every comm layer, both
#: engines (Abelian cvc + Gemini edge-cut), traversal and fixed-round
#: apps — small enough for a CI lane, hot enough to exercise the event
#: loop, matching walks, pool, and serialization paths.
CANONICAL_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="lci"),
    Scenario(app="pagerank", graph="kron", scale=10, hosts=8,
             layer="mpi-probe", pagerank_rounds=6),
    Scenario(app="sssp", graph="rmat", scale=9, hosts=4, layer="mpi-rma"),
    Scenario(app="bfs", graph="rmat", scale=10, hosts=8, layer="mpi-probe",
             system="gemini"),
    # The scale the ROADMAP's sweeps need: a million-node graph across
    # 128 hosts, feasible as a canonical scenario only since the
    # calendar-queue/slotted-record core (PR 9) — single-digit seconds
    # per engine run (graph generation is cached and untimed).
    Scenario(app="bfs", graph="rmat", scale=20, hosts=128, layer="lci"),
)


def core_benchmark(
    scenarios: Optional[Sequence[Scenario]] = None, repeats: int = 2
) -> dict:
    """Build the benchmark document.

    Every repeat runs under a fresh :class:`ProfileContext`; the
    deterministic block comes from the first run and the remaining
    repeats must reproduce its counter fingerprint exactly (a failed
    reproduction is a determinism bug, reported loudly).  Wall numbers
    take the min over repeats — the least-noise estimator for a
    single-machine trajectory.
    """
    if scenarios is None:
        scenarios = CANONICAL_SCENARIOS
    rows: List[dict] = []
    for sc in scenarios:
        build_engine(sc)  # warm the graph/partition caches untimed
        walls: List[float] = []
        first_ctx = None
        first_metrics = None
        for _ in range(max(1, repeats)):
            ctx = ProfileContext()
            engine = build_engine(sc, profile=ctx)
            t0 = wall_now()
            metrics = engine.run()
            walls.append(wall_now() - t0)
            ctx.flush()  # fold the deferred per-component sources in
            if first_ctx is None:
                first_ctx, first_metrics = ctx, metrics
            elif ctx.counters.fingerprint() != first_ctx.counters.fingerprint():
                raise AssertionError(
                    f"{sc.label()}: counter fingerprint not reproducible "
                    f"({ctx.counters.fingerprint()} != "
                    f"{first_ctx.counters.fingerprint()})"
                )
        counters = first_ctx.counters
        # One extra *untimed* run under the comm observatory: keeps the
        # committed wall trajectory comparable (the timed repeats stay
        # hook-free) while pinning both the traffic fingerprint and the
        # bit-identity contract — a commstats run must reproduce the
        # plain run's RunMetrics exactly.
        comm_ctx = CommStatsContext()
        comm_metrics = build_engine(sc, commstats=comm_ctx).run()
        if comm_metrics.row() != first_metrics.row():
            raise AssertionError(
                f"{sc.label()}: RunMetrics changed under commstats — "
                "the observatory must be a pure observer"
            )
        comm_doc = comm_ctx.comm_doc()
        comm_totals = comm_doc["totals"]
        wall = min(walls)
        events = counters.get("sim.events_fired")
        messages = first_metrics.blobs_sent
        rows.append({
            "label": sc.label(),
            "sim": {
                "sim_seconds": round(first_metrics.total_seconds, 9),
                "rounds": first_metrics.rounds,
                "messages": messages,
                "payload_bytes": first_metrics.payload_bytes_sent,
                "updates": first_metrics.updates_shipped,
                "events_fired": events,
                "events_scheduled": counters.get("sim.events_scheduled"),
                "counters": counters.as_dict(),
                "fingerprint": counters.fingerprint(),
                "comm": {
                    "wire_msgs": comm_totals["wire_msgs"],
                    "wire_bytes": comm_totals["wire_bytes"],
                    "blob_msgs": comm_totals["blob_msgs"],
                    "blob_bytes": comm_totals["blob_bytes"],
                    "fingerprint": comm_doc["fingerprint"],
                },
            },
            "wall": {
                "wall_seconds": round(wall, 6),
                "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
                "sim_msgs_per_sec": (
                    round(messages / wall, 1) if wall > 0 else 0.0
                ),
            },
        })
    return {"format": BENCH_CORE_FORMAT, "scenarios": rows}


def bench_core_to_json(doc: dict) -> str:
    """Canonical byte-stable serialization (committed file contents)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def strip_wall(doc):
    """A copy of ``doc`` with every ``"wall"`` subtree removed.

    Wall-clock is machine noise; the drift check compares only what a
    correct simulator must reproduce anywhere.  The ``trajectory`` list
    (historical wall points, see :func:`with_trajectory`) is wall data
    too and is stripped for the same reason.
    """
    if isinstance(doc, dict):
        return {
            k: strip_wall(v)
            for k, v in sorted(doc.items())
            if k not in ("wall", "trajectory")
        }
    if isinstance(doc, list):
        return [strip_wall(v) for v in doc]
    return doc


def trajectory_point(doc: dict, note: str = "") -> dict:
    """One perf-trajectory entry: this doc's wall numbers, by scenario."""
    return {
        "note": note,
        "events_per_sec": {
            row["label"]: row["wall"]["events_per_sec"]
            for row in doc["scenarios"]
        },
    }


def with_trajectory(doc: dict, old: Optional[dict], note: str) -> dict:
    """``doc`` plus a perf-trajectory list carried forward from ``old``.

    The trajectory is an append-only history of wall numbers: each
    regeneration of the committed file keeps the previous file's points
    and adds one for the fresh measurement.  An ``old`` file that
    predates the trajectory format contributes its own walls as the
    first point, so the before/after of the first perf PR both survive.
    """
    points: List[dict] = []
    if old is not None:
        points.extend(old.get("trajectory", ()))
        if not points and "scenarios" in old:
            points.append(trajectory_point(old, note="(previous)"))
    points.append(trajectory_point(doc, note=note))
    out = dict(doc)
    out["trajectory"] = points
    return out


def compare_core_perf(
    fresh: dict, old: dict
) -> Tuple[List[str], List[str], dict]:
    """Per-scenario perf deltas of ``fresh`` vs an older benchmark doc.

    Returns ``(lines, errors, deltas)``: human-readable events/sec and
    sim-msgs/sec delta lines for every scenario present in both docs,
    hard errors for any sim-fingerprint mismatch (a perf comparison
    between behaviourally different runs is meaningless) or scenario
    missing from the fresh doc, and a ``{label: events/sec % change}``
    map for regression gating.
    """
    lines: List[str] = []
    errors: List[str] = []
    deltas: dict = {}
    fresh_rows = {row["label"]: row for row in fresh["scenarios"]}
    old_rows = {row["label"]: row for row in old["scenarios"]}
    for label, old_row in old_rows.items():
        row = fresh_rows.get(label)
        if row is None:
            errors.append(f"{label}: missing from fresh benchmark")
            continue
        if row["sim"]["fingerprint"] != old_row["sim"]["fingerprint"]:
            errors.append(
                f"{label}: sim fingerprint {row['sim']['fingerprint']} != "
                f"{old_row['sim']['fingerprint']} — behaviour changed, "
                "perf delta not comparable"
            )
            continue
        for metric, name in (
            ("events_per_sec", "events/s"),
            ("sim_msgs_per_sec", "sim-msgs/s"),
        ):
            was = old_row["wall"][metric]
            now = row["wall"][metric]
            pct = 100.0 * (now / was - 1.0) if was else float("inf")
            lines.append(
                f"{label}: {name} {was:,.1f} -> {now:,.1f} ({pct:+.1f}%)"
            )
            if metric == "events_per_sec":
                deltas[label] = pct
    for label in fresh_rows:
        if label not in old_rows:
            lines.append(f"{label}: new scenario (no old measurement)")
    return lines, errors, deltas


def check_core_against_file(doc: dict, path: str) -> Optional[List[str]]:
    """Drift between ``doc`` and the committed file, wall fields ignored.

    Returns ``None`` when the committed file is unreadable, else the
    (possibly empty) list of mismatches.
    """
    try:
        with open(path) as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return None
    return compare_bench_docs(strip_wall(doc), strip_wall(committed))


#: Default scenario for :func:`measure_overhead`.  Deliberately larger
#: than the trajectory scenarios: region pairs scale with *messages*
#: while wall-clock scales with total simulated work, so a realistic
#: working-set size is the regime the <5% overhead claim is about —
#: tiny graphs overstate the relative cost of the hooks.  The round
#: count is doubled past convergence-ish territory to stretch each
#: measured run well past the clock/scheduler noise floor of small
#: VMs; per-round hook density is unchanged by the extra rounds.
OVERHEAD_SCENARIO = Scenario(
    app="pagerank", graph="kron", scale=15, hosts=8, layer="mpi-probe",
    pagerank_rounds=40,
)


def measure_overhead(
    sc: Optional[Scenario] = None, repeats: int = 20
) -> dict:
    """Profiler-on vs profiler-off cost: median of blocked CPU ratios.

    Returns ``{"scenario", "wall_off", "wall_on", "overhead_pct"}``
    (the ``wall_*`` fields are best-of-N *CPU* seconds; the key names
    are part of the CLI/CI surface and predate the clock change).

    Measuring a low-single-digit overhead on a small shared VM is a
    statistics problem: a naive wall-clock A/B swings by double digits
    for identical code.  Three layers make the estimate stable:

    * **CPU time, not wall-clock.**  The simulator is single-threaded,
      so the profiler's overhead is exactly the extra CPU its hooks
      burn.  ``process_time`` is immune to hypervisor steal, the
      largest wall-clock noise source.  It still sees frequency
      scaling — the host drifts through multi-second "speed eras"
      where the same work costs visibly different CPU seconds.
    * **Tight interleaving, ratio of block sums.**  ``repeats``
      off/on pairs run back-to-back with the order alternating every
      pair.  Because one run is far shorter than a speed era, any era
      overlaps both sides nearly equally, and the ratio of summed
      times inside a block of consecutive pairs cancels it; the
      even-length blocks also balance the two orderings, cancelling
      position bias.
    * **Median across blocks.**  The pairs are split into five
      contiguous blocks and the reported overhead is the median of
      the per-block ratios, so a burst of interference corrupting one
      stretch of the sequence cannot move the estimate.

    The garbage collector is parked during each timed run (with a
    collect beforehand so both sides start from the same heap state):
    a cycle collection landing in one side of a pair is the single
    biggest per-run disturbance on an otherwise idle machine.
    """
    import gc

    if sc is None:
        sc = OVERHEAD_SCENARIO
    build_engine(sc).run()  # warm graph cache, allocator, code paths
    repeats = max(1, repeats)
    offs: List[float] = []
    ons: List[float] = []
    for i in range(repeats):
        pair = {}
        order = [False, True]
        if i % 2:
            order.reverse()
        for profiled in order:
            engine = build_engine(
                sc, profile=ProfileContext() if profiled else None
            )
            gc.collect()
            gc.disable()
            try:
                t0 = cpu_now()
                engine.run()
                pair[profiled] = cpu_now() - t0
            finally:
                gc.enable()
        offs.append(pair[False])
        ons.append(pair[True])
    nblocks = min(5, repeats)
    ratios: List[float] = []
    for b in range(nblocks):
        lo = b * repeats // nblocks
        hi = (b + 1) * repeats // nblocks
        ratios.append(sum(ons[lo:hi]) / sum(offs[lo:hi]))
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        median = ratios[mid]
    else:
        median = 0.5 * (ratios[mid - 1] + ratios[mid])
    return {
        "scenario": sc.label(),
        "wall_off": round(min(offs), 6),
        "wall_on": round(min(ons), 6),
        "overhead_pct": round(100.0 * (median - 1.0), 2),
    }
