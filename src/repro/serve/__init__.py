"""The graph-analytics query service (``repro serve``).

A production-shaped layer over the reproduction's BSP engine: one
resident partitioned graph, a stream of BFS / SSSP / personalized
PageRank / k-core queries, a scheduler that fuses concurrent same-kind
queries into multi-source batched executions, a per-graph-version
result cache, admission control driven by fabric saturation, and
seeded replayable traffic tapes.  See docs/SERVE.md.
"""

from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.engine import (
    ServeConfig,
    ServeEngine,
    ServeReport,
    format_serve_report,
)
from repro.serve.programs import (
    MultiSourceBfs,
    MultiSourcePageRank,
    MultiSourceSssp,
    make_batched_program,
)
from repro.serve.query import QUERY_KINDS, Query, QueryResult
from repro.serve.tape import (
    TapeSpec,
    generate_tape,
    tape_from_json,
    tape_to_json,
)

__all__ = [
    "QUERY_KINDS",
    "Query",
    "QueryResult",
    "MultiSourceBfs",
    "MultiSourceSssp",
    "MultiSourcePageRank",
    "make_batched_program",
    "ResultCache",
    "AdmissionConfig",
    "AdmissionController",
    "TapeSpec",
    "generate_tape",
    "tape_to_json",
    "tape_from_json",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "format_serve_report",
]
