"""Batched multi-source vertex programs (frontier merging).

The serve scheduler coalesces concurrent same-kind queries into **one**
BSP execution: a batch of K sources runs as a single vertex program
whose label is a ``(num_local, K)`` matrix — one column per query — and
whose active frontier is the *union* of the per-column frontiers.  A
batch therefore shares one edge traversal per round, one round/barrier
structure, and one set of sync messages (K values ride per updated
node), which is where the service's throughput comes from.

Equivalence contract (asserted in ``tests/test_serve.py``): each
column's final answer is **bit-identical** to running that query alone.

* For the min programs (:class:`MultiSourceBfs`,
  :class:`MultiSourceSssp`) this holds structurally: integer labels,
  min is idempotent/commutative, and the engine runs to quiescence, so
  every column reaches the same unique fixed point regardless of which
  other columns share the frontier.
* For :class:`MultiSourcePageRank` (personalized PageRank) the labels
  are floats, so the program (a) runs a **fixed** number of rounds —
  every column does exactly the same update sequence whether batched or
  alone — and (b) sets ``ordered_scatter`` so the engine applies
  incoming add-reduce blobs in source-host order instead of arrival
  order (float addition is not associative; arrival order differs
  between batchings because message sizes differ).

k-core has no multi-source variant: one :class:`repro.apps.KCore` run
answers membership for *every* vertex, so the scheduler batches
same-``k`` queries onto a single execution of the existing program.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.apps.bfs import INF, Bfs
from repro.apps.sssp import Sssp
from repro.engine.vertex_program import (
    ComputeResult,
    VertexProgram,
    min_relax_multi,
)
from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = [
    "MultiSourceBfs",
    "MultiSourceSssp",
    "MultiSourcePageRank",
    "make_batched_program",
]


class _MultiSourceMin(VertexProgram):
    """Shared shell of the multi-source min programs (bfs/sssp)."""

    reduce_op = "min"

    def __init__(self, sources: Sequence[int]):
        if len(sources) == 0:
            raise ValueError("a batch needs at least one source")
        self.sources = tuple(int(s) for s in sources)
        self.num_sources = len(self.sources)

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        label = np.full((lg.num_local, self.num_sources), INF, dtype=np.int64)
        for col, src in enumerate(self.sources):
            label[lg.global_ids == src, col] = 0
        return {
            "label": label,
            "last": np.full_like(label, INF),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        return np.any(state["label"] < state["last"], axis=1)

    # -- sync hooks (min over int64 rows, any-column change masks) -------
    def reduce_values(self, state, ids):
        return state["label"][ids]

    def apply_reduce(self, state, ids, values):
        label = state["label"]
        before = label[ids]
        np.minimum.at(label, ids, values)
        return np.any(label[ids] < before, axis=1)

    bcast_values = reduce_values
    apply_bcast = apply_reduce

    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        return np.any(state["label"] < state["last"], axis=1)

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["label"][: lg.num_masters]


class MultiSourceBfs(_MultiSourceMin):
    """K concurrent BFS traversals over one merged frontier."""

    name = "bfs-multi"

    #: Wire bytes per communicated row: one 8-byte label per column.
    @property
    def field_bytes(self) -> int:
        return 8 * self.num_sources

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        label = state["label"]
        state["last"][active] = label[active]

        def cand_fn(src_ids, _edge_sel):
            return label[src_ids] + 1

        return min_relax_multi(lg, label, active, cand_fn)

    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        cols = [Bfs(source=s).reference(graph) for s in self.sources]
        return np.stack(cols, axis=1)


class MultiSourceSssp(_MultiSourceMin):
    """K concurrent shortest-path relaxations over one merged frontier."""

    name = "sssp-multi"
    needs_weights = True

    @property
    def field_bytes(self) -> int:
        return 8 * self.num_sources

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        label = state["label"]
        state["last"][active] = label[active]
        weights = lg.edge_data

        def cand_fn(src_ids, edge_sel):
            return label[src_ids] + weights[edge_sel][:, None]

        return min_relax_multi(lg, label, active, cand_fn)

    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        cols = [Sssp(source=s).reference(graph) for s in self.sources]
        return np.stack(cols, axis=1)


class MultiSourcePageRank(VertexProgram):
    """K personalized-PageRank columns sharing one edge traversal.

    Personalized PageRank teleports to the *query's* source instead of
    uniformly: ``ppr = (1-d)·e_s + d·Pᵀ·ppr``.  The service runs a
    fixed number of power-iteration rounds (production PPR is typically
    fixed-budget), which — together with ``ordered_scatter`` — makes
    each column's result bit-reproducible across batch compositions.
    """

    name = "ppr-multi"
    reduce_op = "add"
    label_is_broadcast_field = False
    ordered_scatter = True

    def __init__(self, sources: Sequence[int], rounds: int = 10,
                 damping: float = 0.85):
        if len(sources) == 0:
            raise ValueError("a batch needs at least one source")
        if rounds < 1:
            raise ValueError("ppr needs at least one round")
        self.sources = tuple(int(s) for s in sources)
        self.num_sources = len(self.sources)
        self.damping = damping
        self.max_rounds = int(rounds)

    @property
    def field_bytes(self) -> int:
        return 8 * self.num_sources

    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        K = self.num_sources
        outdeg = np.diff(graph.indptr)[lg.global_ids].astype(np.float64)
        safe = np.maximum(outdeg, 1.0)
        rank = np.zeros((lg.num_local, K), dtype=np.float64)
        teleport = np.zeros((lg.num_local, K), dtype=np.float64)
        for col, src in enumerate(self.sources):
            sel = lg.global_ids == src
            rank[sel, col] = 1.0
            teleport[sel, col] = 1.0 - self.damping
        contrib = np.where(outdeg[:, None] > 0, rank / safe[:, None], 0.0)
        return {
            "rank": rank,
            "teleport": teleport,
            "outdeg": outdeg,
            "contrib": contrib,
            "partial": np.zeros((lg.num_local, K), dtype=np.float64),
        }

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        return np.ones(lg.num_local, dtype=bool)

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        contrib = state["contrib"]
        partial = state["partial"]
        src = lg.edge_sources()
        dst = lg.indices
        if len(dst) == 0:
            return ComputeResult(np.empty(0, dtype=np.int64), 0, lg.num_local)
        np.add.at(partial, dst, contrib[src])
        updated = np.unique(dst)
        return ComputeResult(
            updated, int(len(dst)) * self.num_sources, int(lg.num_local)
        )

    # -- reduce (add) -----------------------------------------------------
    def reduce_values(self, state, ids):
        return state["partial"][ids]

    def apply_reduce(self, state, ids, values):
        np.add.at(state["partial"], ids, values)
        return np.ones(len(ids), dtype=bool)

    def reset_after_reduce_send(self, state, ids) -> None:
        state["partial"][ids] = 0.0

    def post_reduce(self, lg: LocalGraph, state) -> np.ndarray:
        masters = slice(0, lg.num_masters)
        rank = state["rank"]
        partial = state["partial"]
        new_rank = (
            state["teleport"][masters] + self.damping * partial[masters]
        )
        changed = np.any(new_rank != rank[masters], axis=1)
        rank[masters] = new_rank
        outdeg = state["outdeg"][masters]
        safe = np.maximum(outdeg, 1.0)
        state["contrib"][masters] = np.where(
            outdeg[:, None] > 0, new_rank / safe[:, None], 0.0
        )
        partial[masters] = 0.0
        return np.where(changed)[0].astype(np.int64)

    # -- broadcast --------------------------------------------------------
    def bcast_values(self, state, ids):
        return state["contrib"][ids]

    def apply_bcast(self, state, ids, values):
        before = state["contrib"][ids]
        state["contrib"][ids] = values
        return np.any(values != before, axis=1)

    # -- termination: run the full fixed budget ---------------------------
    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        return np.ones(lg.num_local, dtype=bool)

    def local_quiescent_metric(self, lg, state, active) -> float:
        # Never quiesces on its own: the engine stops at max_rounds, so
        # every column runs the identical fixed iteration budget.
        return 1.0

    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        return state["rank"][: lg.num_masters]

    # -- reference --------------------------------------------------------
    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        """Fixed-round power iteration per column (allclose comparator:
        global edge order differs from the distributed sum order, so the
        reference matches to float tolerance, not bitwise)."""
        n = graph.num_nodes
        outdeg = np.diff(graph.indptr).astype(np.float64)
        safe = np.maximum(outdeg, 1.0)
        src = graph.edge_sources()
        dst = graph.indices
        rank = np.zeros((n, self.num_sources), dtype=np.float64)
        teleport = np.zeros_like(rank)
        for col, s in enumerate(self.sources):
            rank[s, col] = 1.0
            teleport[s, col] = 1.0 - self.damping
        for _ in range(self.max_rounds):
            contrib = np.where(outdeg[:, None] > 0, rank / safe[:, None], 0.0)
            partial = np.zeros_like(rank)
            np.add.at(partial, dst, contrib[src])
            rank = teleport + self.damping * partial
        return rank


def make_batched_program(kind: str, sources: Sequence[int], *,
                         ppr_rounds: int = 10, ppr_damping: float = 0.85,
                         k: int = 3) -> VertexProgram:
    """Program for one batch: ``kind`` plus the deduplicated sources."""
    if kind == "bfs":
        return MultiSourceBfs(sources)
    if kind == "sssp":
        return MultiSourceSssp(sources)
    if kind == "ppr":
        return MultiSourcePageRank(
            sources, rounds=ppr_rounds, damping=ppr_damping
        )
    if kind == "kcore":
        from repro.apps.kcore import KCore

        return KCore(k=k)
    raise ValueError(f"no batched program for query kind {kind!r}")
