"""Admission control and backpressure for the query service.

A long-lived service has to shed load *before* the backlog melts the
latency tail.  The controller applies two gates at a query's arrival
instant:

* **queue-depth gate** — a hard bound on pending (admitted but not yet
  completed) queries; beyond it every arrival is rejected outright.
* **saturation gate** — an EWMA of the simulated fabric's *communication
  fraction* (non-overlapped comm seconds / total seconds, per executed
  batch, straight from :class:`~repro.engine.metrics.RunMetrics`).  When
  the fabric spends most of its time on the wire, extra concurrency only
  deepens queues, so arrivals are rejected once the EWMA crosses the
  threshold — but only while a minimum backlog exists, so an idle
  service never rejects the first queries after a congested burst.

Both gates are pure functions of the deterministic simulation, so the
same tape always produces the same reject set — asserted by the tape
replay tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the two admission gates."""

    #: Hard bound on admitted-but-incomplete queries.
    max_pending: int = 64
    #: Reject when the comm-fraction EWMA exceeds this...
    saturation_threshold: float = 0.92
    #: ...but only while at least this many queries are pending.
    saturation_min_pending: int = 8
    #: EWMA smoothing factor for the saturation estimate.
    ewma_alpha: float = 0.3

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ValueError("saturation_threshold must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


class AdmissionController:
    """Stateful gatekeeper; one per :class:`~repro.serve.ServeEngine`."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig()):
        self.config = config
        #: Comm-fraction EWMA; starts optimistic (no congestion observed).
        self.saturation = 0.0
        #: EWMA of batch execution seconds (drives the failure-penalty
        #: clock advance when a faulted batch never reports metrics).
        self.batch_seconds = 0.0
        self._batches_seen = 0
        self.rejected_depth = 0
        self.rejected_saturation = 0

    # ------------------------------------------------------------------
    def admit(self, pending_depth: int) -> Tuple[bool, str]:
        """Gate one arrival given the current backlog depth.

        Returns ``(admitted, reason)`` — reason is "" when admitted.
        """
        cfg = self.config
        if pending_depth >= cfg.max_pending:
            self.rejected_depth += 1
            return False, (
                f"queue full ({pending_depth}/{cfg.max_pending} pending)"
            )
        if (
            pending_depth >= cfg.saturation_min_pending
            and self.saturation > cfg.saturation_threshold
        ):
            self.rejected_saturation += 1
            return False, (
                f"fabric saturated (comm fraction "
                f"{self.saturation:.3f} > {cfg.saturation_threshold})"
            )
        return True, ""

    def observe_batch(self, total_seconds: float, comm_seconds: float) -> None:
        """Fold one executed batch into the saturation/duration EWMAs."""
        frac = comm_seconds / total_seconds if total_seconds > 0 else 0.0
        a = self.config.ewma_alpha
        if self._batches_seen == 0:
            self.saturation = frac
            self.batch_seconds = total_seconds
        else:
            self.saturation = a * frac + (1.0 - a) * self.saturation
            self.batch_seconds = (
                a * total_seconds + (1.0 - a) * self.batch_seconds
            )
        self._batches_seen += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "saturation_ewma": round(self.saturation, 6),
            "batch_seconds_ewma": round(self.batch_seconds, 9),
            "batches_observed": self._batches_seen,
            "rejected_depth": self.rejected_depth,
            "rejected_saturation": self.rejected_saturation,
        }
