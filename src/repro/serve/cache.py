"""Per-graph-version result cache.

Answers are cached under ``(graph_version, cache_key)`` where the cache
key is the query's :meth:`~repro.serve.query.Query.cache_key` — so two
BFS queries from the same source share an answer, and every ``kcore``
query with the same ``k`` shares one membership vector.  Bumping the
graph version (a simulated ingest/update) invalidates *everything*
computed against older versions: old entries can never be served again
(lookups always use the current version) and are dropped eagerly so the
capacity is not wasted on unreachable answers.

Eviction is LRU over an :class:`~collections.OrderedDict` — deterministic,
like everything else in the service path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

__all__ = ["ResultCache"]


class ResultCache:
    """LRU cache of per-node answer vectors, keyed by graph version."""

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, version: int, key: Tuple) -> Optional[np.ndarray]:
        """The cached answer for ``key`` at graph ``version``, or None."""
        full = (int(version),) + tuple(key)
        answer = self._entries.get(full)
        if answer is None:
            self.misses += 1
            return None
        self._entries.move_to_end(full)
        self.hits += 1
        return answer

    def put(self, version: int, key: Tuple, answer: np.ndarray) -> None:
        if self.capacity == 0:
            return
        full = (int(version),) + tuple(key)
        self._entries[full] = answer
        self._entries.move_to_end(full)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_before(self, version: int) -> int:
        """Drop every entry computed against a version < ``version``.

        Called on graph-version bumps.  Returns how many entries died.
        """
        stale = [k for k in self._entries if k[0] < version]
        for k in stale:
            del self._entries[k]
        self.invalidated += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }
