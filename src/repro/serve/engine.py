"""The long-lived query service over the simulated cluster.

:class:`ServeEngine` is the tentpole of the serve layer: it keeps one
partitioned graph **resident** (partitioned once, reused by every
execution) and consumes a stream of analytics queries, each answered by
one of four strategies, in priority order:

1. **result cache** — same (graph version, cache key) answered earlier;
2. **batched execution** — concurrent same-kind queries fused into one
   multi-source BSP run (:mod:`repro.serve.programs`), sharing edge
   traversals, rounds, and sync messages;
3. **rejection** — admission control sheds arrivals when the backlog or
   the fabric-saturation EWMA crosses its bound
   (:mod:`repro.serve.admission`);
4. **failure** — a fault plan (:mod:`repro.faults`) that hangs a layer
   fails only the affected batch; the service degrades gracefully and
   keeps serving.

Time is the **service clock**: a query arrives at its tape timestamp,
waits while earlier batches execute, and completes when its batch's
simulated execution (measured by the engine's
:class:`~repro.engine.metrics.RunMetrics`) finishes.  Latency is
completion minus arrival, in simulated seconds — the whole pipeline is
deterministic, so a tape replay reproduces every latency bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.scenarios import Scenario, build_engine, cached_graph
from repro.engine.bsp import symmetrize
from repro.faults import LostCompletionError, get_plan
from repro.graph.partition import make_partition
from repro.obs.latency import LatencySummary
from repro.obs.profile import wall_now
from repro.sanitize.runtime import SanitizerError
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.programs import make_batched_program
from repro.serve.query import QUERY_KINDS, Query, QueryResult
from repro.serve.tape import TapeSpec, generate_tape

__all__ = ["ServeConfig", "ServeEngine", "ServeReport", "format_serve_report"]


@dataclass(frozen=True)
class ServeConfig:
    """The service's static configuration (graph, cluster, policies)."""

    graph: str = "rmat"
    scale: int = 10
    hosts: int = 4
    layer: str = "lci"
    system: str = "abelian"
    machine: str = "stampede2"
    seed: int = 1
    #: Max queries fused into one batched execution.
    max_batch: int = 8
    #: Result-cache capacity (answer vectors).
    cache_capacity: int = 128
    #: Fixed iteration budget of personalized PageRank queries.
    ppr_rounds: int = 10
    ppr_damping: float = 0.85
    work_scale: float = 1.0
    #: Named fault plan to serve under (``None``/"none" = fault-free).
    fault_plan: Optional[str] = None
    fault_seed: Optional[int] = None
    #: Sanitizer mode forwarded to every batch engine.
    sanitize: Optional[str] = None
    #: Admission-control knobs.
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Clock charge for a batch killed by a fault, used until the
    #: controller has a batch-duration EWMA to charge instead.
    failure_penalty_seconds: float = 0.05


class ServeEngine:
    """One resident graph + scheduler + cache + admission controller."""

    def __init__(self, config: ServeConfig, obs_config=None, profile=None,
                 commstats: bool = False):
        self.config = config
        #: When True, every executed batch gets a fresh
        #: :class:`repro.obs.commstats.CommStatsContext`; the batch log
        #: carries the per-batch traffic summary and the report gains a
        #: ``comm`` block.  Off by default (zero hot-path cost).
        self.commstats_enabled = bool(commstats)
        #: Comm-doc of the most recent executed batch (export target).
        self.last_comm = None
        #: Optional :class:`repro.obs.profile.ProfileContext` shared by
        #: every batch engine — regions and work counters accumulate
        #: across batches into one service-level profile.
        self.profile = profile
        #: Resident input: generated once, frozen, partitioned once.
        self.graph = cached_graph(config.graph, config.scale, config.seed, True)
        policy = "cvc" if config.system == "abelian" else "edge-cut"
        self._policy = policy
        self.partition = make_partition(self.graph, config.hosts, policy)
        #: Lazy second residency for symmetric-semantics programs (kcore).
        self._sym: Optional[Tuple] = None
        self.cache = ResultCache(config.cache_capacity)
        self.admission = AdmissionController(config.admission)
        self.graph_version = 0
        #: The service clock, in simulated seconds.
        self.clock = 0.0
        self.batch_log: List[dict] = []
        self._plan = None
        if config.fault_plan is not None and config.fault_plan != "none":
            self._plan = get_plan(config.fault_plan, config.fault_seed)
            if self._plan.empty:
                self._plan = None
        self._obs_config = obs_config
        #: ObsContext of the most recent executed batch (export target).
        self.last_obs = None
        self._messages = 0
        self._message_bytes = 0
        self._exec_seconds = 0.0
        #: Warn-mode sanitizer violations accumulated across batches.
        self.sanitizer_violations: List[dict] = []
        self._inbox: List[Query] = []
        self._scenario = Scenario(
            app="serve", graph=config.graph, scale=config.scale,
            hosts=config.hosts, layer=config.layer, system=config.system,
            machine=config.machine, seed=config.seed,
            work_scale=config.work_scale, sanitize=config.sanitize,
        )

    # -- submission API ------------------------------------------------
    def submit(self, query: Query) -> None:
        """Enqueue one query (processed by the next :meth:`drain`)."""
        self._inbox.append(query)

    def submit_many(self, queries: Sequence[Query]) -> None:
        self._inbox.extend(queries)

    def bump_graph_version(self) -> int:
        """Simulated graph update: invalidates all cached answers."""
        self.graph_version += 1
        self.cache.invalidate_before(self.graph_version)
        return self.graph_version

    # -- the scheduler loop ---------------------------------------------
    def drain(self, queries: Optional[Sequence[Query]] = None) -> "ServeReport":
        """Serve every enqueued query to completion; returns the report.

        Arrivals are processed in (arrival, qid) order.  While a batch
        executes, later arrivals queue up (and are admission-gated
        against the backlog they observe); each scheduling point first
        serves cache hits, then fuses the oldest pending query's kind
        into the next batch.
        """
        if queries is not None:
            self.submit_many(queries)
        wall_start = wall_now()
        stream = sorted(self._inbox, key=lambda q: (q.arrival, q.qid))
        self._inbox = []
        i = 0
        pending: List[Query] = []
        results: List[QueryResult] = []
        while i < len(stream) or pending:
            if not pending and stream[i].arrival > self.clock:
                # Idle service: jump to the next arrival.
                self.clock = stream[i].arrival
            while i < len(stream) and stream[i].arrival <= self.clock:
                q = stream[i]
                i += 1
                admitted, reason = self.admission.admit(len(pending))
                if admitted:
                    pending.append(q)
                else:
                    results.append(QueryResult(
                        q, "rejected", completed_at=q.arrival,
                        latency=0.0, reason=reason,
                    ))
            if not pending:
                continue
            still: List[Query] = []
            for q in pending:
                answer = self.cache.get(self.graph_version, q.cache_key())
                if answer is not None:
                    results.append(QueryResult(
                        q, "ok", completed_at=self.clock,
                        latency=self.clock - q.arrival, cache_hit=True,
                        graph_version=self.graph_version, answer=answer,
                    ))
                else:
                    still.append(q)
            pending = still
            if not pending:
                continue
            key = pending[0].batch_key()
            batch = [q for q in pending if q.batch_key() == key]
            batch = batch[: self.config.max_batch]
            taken = {q.qid for q in batch}
            pending = [q for q in pending if q.qid not in taken]
            results.extend(self._execute_batch(batch))
        results.sort(key=lambda r: r.query.qid)
        return ServeReport(
            config=self.config,
            results=results,
            batches=list(self.batch_log),
            cache_stats=self.cache.stats(),
            admission_stats=self.admission.stats(),
            clock=self.clock,
            exec_seconds=self._exec_seconds,
            messages=self._messages,
            message_bytes=self._message_bytes,
            sanitizer_violations=list(self.sanitizer_violations),
            wall_seconds=wall_now() - wall_start,
        )

    def run_tape(self, spec: TapeSpec) -> "ServeReport":
        """Generate + serve a seeded traffic tape in one call."""
        return self.drain(generate_tape(spec))

    # -- batch execution -------------------------------------------------
    def _resident_for(self, app):
        """(graph, partition) residency matching the program's needs."""
        if not app.needs_symmetric:
            return self.graph, self.partition
        if self._sym is None:
            sym = symmetrize(self.graph).freeze()
            self._sym = (sym, make_partition(
                sym, self.config.hosts, self._policy
            ))
        return self._sym

    def _execute_batch(self, batch: List[Query]) -> List[QueryResult]:
        bid = len(self.batch_log)
        kind = batch[0].kind
        if kind == "kcore":
            sources: List[int] = []
            app = make_batched_program("kcore", (), k=batch[0].k)
        else:
            sources = sorted({q.source for q in batch})
            app = make_batched_program(
                kind, sources, ppr_rounds=self.config.ppr_rounds,
                ppr_damping=self.config.ppr_damping,
            )
        graph, part = self._resident_for(app)
        obs_ctx = None
        if self._obs_config is not None:
            from repro.obs import ObsConfig, ObsContext

            cfg = self._obs_config if isinstance(self._obs_config, ObsConfig) \
                else ObsConfig()
            obs_ctx = ObsContext(cfg)
        comm_ctx = None
        if self.commstats_enabled:
            from repro.obs.commstats import CommStatsContext

            comm_ctx = CommStatsContext()
        eng = build_engine(
            self._scenario, fault_plan=self._plan, obs=obs_ctx,
            app=app, graph=graph, partition=part, profile=self.profile,
            commstats=comm_ctx,
        )
        try:
            metrics = eng.run()
        except SanitizerError:
            # A protocol violation is a finding, never "degradation".
            raise
        except (LostCompletionError, RuntimeError) as exc:
            if self._plan is None:
                raise
            penalty = self.admission.batch_seconds \
                or self.config.failure_penalty_seconds
            self.clock += penalty
            self.batch_log.append({
                "batch": bid, "kind": kind, "size": len(batch),
                "sources": len(sources), "status": "failed",
                "error": type(exc).__name__,
                "sim_seconds": round(penalty, 9),
            })
            return [
                QueryResult(
                    q, "failed", completed_at=self.clock,
                    latency=self.clock - q.arrival, batch_id=bid,
                    reason=type(exc).__name__,
                )
                for q in batch
            ]
        if obs_ctx is not None:
            self.last_obs = obs_ctx
        if metrics.sanitizer_violations:
            self.sanitizer_violations.extend(metrics.sanitizer_violations)
        self.clock += metrics.total_seconds
        self._exec_seconds += metrics.total_seconds
        self._messages += metrics.blobs_sent
        self._message_bytes += metrics.payload_bytes_sent
        self.admission.observe_batch(
            metrics.total_seconds, metrics.comm_seconds
        )
        answers = eng.assemble_global()
        per_source: Dict[int, np.ndarray] = {}
        if kind == "kcore":
            self.cache.put(self.graph_version, batch[0].cache_key(), answers)
        else:
            for col, s in enumerate(sources):
                vec = np.ascontiguousarray(answers[:, col])
                per_source[s] = vec
                self.cache.put(self.graph_version, (kind, s), vec)
        entry = {
            "batch": bid, "kind": kind, "size": len(batch),
            "sources": len(sources) if kind != "kcore" else 1,
            "status": "ok", "rounds": metrics.rounds,
            "sim_seconds": round(metrics.total_seconds, 9),
            "messages": metrics.blobs_sent,
        }
        if comm_ctx is not None:
            doc = comm_ctx.comm_doc(meta={"batch": bid})
            self.last_comm = doc
            totals = doc["totals"]
            entry["comm"] = {
                "wire_msgs": totals["wire_msgs"],
                "wire_bytes": totals["wire_bytes"],
                "blob_msgs": totals["blob_msgs"],
                "blob_bytes": totals["blob_bytes"],
                "dropped_msgs": totals["dropped_msgs"],
                "dropped_bytes": totals["dropped_bytes"],
                "fingerprint": doc["fingerprint"],
            }
        self.batch_log.append(entry)
        return [
            QueryResult(
                q, "ok", completed_at=self.clock,
                latency=self.clock - q.arrival, batch_id=bid,
                graph_version=self.graph_version,
                answer=answers if kind == "kcore" else per_source[q.source],
            )
            for q in batch
        ]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
@dataclass
class ServeReport:
    """Everything one drain measured, deterministically serializable."""

    config: ServeConfig
    results: List[QueryResult]
    batches: List[dict]
    cache_stats: dict
    admission_stats: dict
    #: Service clock at drain end (simulated seconds).
    clock: float
    #: Simulated seconds the fabric actually executed batches.
    exec_seconds: float
    messages: int
    message_bytes: int
    #: Warn-mode sanitizer violations from every executed batch.
    sanitizer_violations: List[dict] = field(default_factory=list)
    #: Host wall-clock seconds the drain took (machine-dependent, so
    #: kept OUT of the deterministic document unless asked for).
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    def _status(self, status: str) -> List[QueryResult]:
        return [r for r in self.results if r.status == status]

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.from_values(
            [r.latency for r in self._status("ok")]
        )

    def as_dict(self, include_wall: bool = False) -> dict:
        """Deterministic report document (byte-stable under json.dumps
        with sorted keys for identical drains).

        ``include_wall`` adds a machine-dependent ``wall`` block (host
        seconds, queries per wall second) — useful in operator-facing
        reports, excluded by default so identical drains still produce
        identical documents.
        """
        ok = self._status("ok")
        by_kind = {}
        for kind in QUERY_KINDS:
            lat = [r.latency for r in ok if r.query.kind == kind]
            if lat:
                by_kind[kind] = LatencySummary.from_values(lat).as_dict()
        executed = [b for b in self.batches if b["status"] == "ok"]
        qps = len(ok) / self.clock if self.clock > 0 else 0.0
        mps = self.messages / self.exec_seconds if self.exec_seconds > 0 \
            else 0.0
        doc = {
            "config": {
                "graph": f"{self.config.graph}{self.config.scale}",
                "hosts": self.config.hosts,
                "layer": self.config.layer,
                "system": self.config.system,
                "max_batch": self.config.max_batch,
                "fault_plan": self.config.fault_plan or "none",
            },
            "queries": {
                "submitted": len(self.results),
                "ok": len(ok),
                "cache_hits": sum(1 for r in ok if r.cache_hit),
                "rejected": len(self._status("rejected")),
                "failed": len(self._status("failed")),
            },
            "batches": {
                "count": len(self.batches),
                "executed": len(executed),
                "batched_queries": sum(b["size"] for b in self.batches),
                "mean_size": round(
                    sum(b["size"] for b in self.batches)
                    / len(self.batches), 3
                ) if self.batches else 0.0,
            },
            "latency": self.latency_summary().as_dict(),
            "latency_by_kind": by_kind,
            "throughput": {
                "sim_seconds": round(self.clock, 9),
                "exec_seconds": round(self.exec_seconds, 9),
                "queries_per_sec": round(qps, 3),
                "messages": self.messages,
                "messages_per_sec": round(mps, 3),
                "payload_mb": round(self.message_bytes / 2**20, 6),
            },
            "cache": dict(self.cache_stats),
            "admission": dict(self.admission_stats),
            "sanitizer_violations": len(self.sanitizer_violations),
            "results": [r.as_row() for r in self.results],
        }
        with_comm = [b for b in executed if "comm" in b]
        if with_comm:
            doc["comm"] = {
                "batches": [
                    dict(b["comm"], batch=b["batch"]) for b in with_comm
                ],
                "wire_msgs": sum(b["comm"]["wire_msgs"] for b in with_comm),
                "wire_bytes": sum(b["comm"]["wire_bytes"] for b in with_comm),
                "blob_msgs": sum(b["comm"]["blob_msgs"] for b in with_comm),
                "blob_bytes": sum(
                    b["comm"]["blob_bytes"] for b in with_comm
                ),
            }
        if include_wall:
            wall_qps = (
                len(ok) / self.wall_seconds if self.wall_seconds > 0 else 0.0
            )
            doc["wall"] = {
                "wall_seconds": round(self.wall_seconds, 6),
                "queries_per_wall_sec": round(wall_qps, 3),
            }
        return doc


def format_serve_report(report: ServeReport) -> str:
    doc = report.as_dict()
    q, t, lat = doc["queries"], doc["throughput"], doc["latency"]
    lines = [
        f"serve {doc['config']['graph']}@{doc['config']['hosts']}h"
        f"/{doc['config']['layer']} (fault plan: "
        f"{doc['config']['fault_plan']})",
        f"  queries   : {q['submitted']} submitted, {q['ok']} ok "
        f"({q['cache_hits']} cache hits), {q['rejected']} rejected, "
        f"{q['failed']} failed",
        f"  batches   : {doc['batches']['executed']} executed, "
        f"mean size {doc['batches']['mean_size']}",
        f"  latency   : p50 {lat['p50_us']}us  p95 {lat['p95_us']}us  "
        f"p99 {lat['p99_us']}us",
        f"  throughput: {t['queries_per_sec']} queries/s, "
        f"{t['messages_per_sec']} msgs/s over {t['sim_seconds']}s "
        f"simulated",
    ]
    comm = doc.get("comm")
    if comm:
        lines.append(
            f"  comm      : {comm['wire_msgs']} pkts / "
            f"{comm['wire_bytes']} B on the wire, {comm['blob_msgs']} "
            f"blobs / {comm['blob_bytes']} B payload across "
            f"{len(comm['batches'])} batches"
        )
    return "\n".join(lines)
