"""Seeded traffic tapes: deterministic, replayable query streams.

A tape is the service's workload fixture: a :class:`TapeSpec` (seed,
query count, kind mix, arrival-rate model) expands to the same list of
:class:`~repro.serve.query.Query` records every time, on every machine.
Tapes serialize to canonical JSON — keys sorted, compact separators,
rows in qid order — so two generations from the same spec are
**byte-identical** files, and a replay of a saved tape reproduces the
full service run (admissions, batches, cache hits, latency percentiles)
bit for bit.  That property is what makes heavy-traffic scenarios and
chaos runs regression-testable.

All randomness flows through one named :class:`~repro.sim.rng.RngFactory`
stream, so generating a tape can never perturb graph generation or
fault-plan draws that share the root seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.serve.query import QUERY_KINDS, Query
from repro.sim.rng import RngFactory

__all__ = ["TapeSpec", "generate_tape", "tape_to_json", "tape_from_json"]

#: Default kind mix: read-heavy point lookups with some heavier analytics,
#: shaped like a production analytics frontend (mostly traversals, some
#: ranking, occasional maintenance-style membership checks).
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("bfs", 0.40),
    ("sssp", 0.25),
    ("ppr", 0.25),
    ("kcore", 0.10),
)


@dataclass(frozen=True)
class TapeSpec:
    """Everything needed to regenerate a tape, and nothing else."""

    #: Root seed of the tape's RNG stream.
    seed: int = 7
    #: Number of queries on the tape.
    num_queries: int = 64
    #: log2 of the vertex-id range sources are drawn from (must match
    #: the resident graph's scale).
    scale: int = 10
    #: Mean inter-arrival gap in simulated seconds (exponential gaps).
    mean_gap: float = 0.002
    #: Kind mix as (kind, weight) pairs in canonical kind order.
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    #: Candidate ``k`` values for kcore queries.
    k_choices: Tuple[int, ...] = (2, 3)

    def __post_init__(self):
        if self.num_queries < 1:
            raise ValueError("a tape needs at least one query")
        for kind, weight in self.mix:
            if kind not in QUERY_KINDS:
                raise ValueError(f"unknown kind {kind!r} in tape mix")
            if weight < 0:
                raise ValueError("mix weights must be >= 0")
        if sum(w for _, w in self.mix) <= 0:
            raise ValueError("tape mix has no positive weight")

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "num_queries": self.num_queries,
            "scale": self.scale,
            "mean_gap": self.mean_gap,
            "mix": [[k, w] for k, w in self.mix],
            "k_choices": list(self.k_choices),
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "TapeSpec":
        return cls(
            seed=int(doc["seed"]),
            num_queries=int(doc["num_queries"]),
            scale=int(doc["scale"]),
            mean_gap=float(doc["mean_gap"]),
            mix=tuple((str(k), float(w)) for k, w in doc["mix"]),
            k_choices=tuple(int(k) for k in doc["k_choices"]),
        )


def generate_tape(spec: TapeSpec) -> List[Query]:
    """Expand a spec into its query stream (same spec -> same stream)."""
    rng = RngFactory(spec.seed).stream("serve.tape")
    n = 2 ** spec.scale
    kinds = [k for k, _ in spec.mix]
    weights = [w for _, w in spec.mix]
    total = sum(weights)
    probs = [w / total for w in weights]

    queries: List[Query] = []
    clock = 0.0
    for qid in range(spec.num_queries):
        clock += float(rng.exponential(spec.mean_gap))
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        source = int(rng.integers(0, n))
        k = int(spec.k_choices[int(rng.integers(0, len(spec.k_choices)))])
        queries.append(
            Query(qid=qid, kind=kind, source=source,
                  arrival=round(clock, 9), k=k)
        )
    return queries


def tape_to_json(spec: TapeSpec, queries: List[Query]) -> str:
    """Canonical byte-stable serialization of a tape."""
    doc = {
        "format": "repro-serve-tape/v1",
        "spec": spec.as_dict(),
        "queries": [q.as_row() for q in queries],
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def tape_from_json(text: str) -> Tuple[TapeSpec, List[Query]]:
    doc = json.loads(text)
    if doc.get("format") != "repro-serve-tape/v1":
        raise ValueError(
            f"not a serve tape (format={doc.get('format')!r})"
        )
    spec = TapeSpec.from_dict(doc["spec"])
    queries = [Query.from_row(row) for row in doc["queries"]]
    return spec, queries
