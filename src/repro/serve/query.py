"""The query model of the graph-analytics service.

A :class:`Query` is one user request against the resident graph:

* ``bfs``   — BFS levels from an arbitrary ``source``;
* ``sssp``  — shortest distances from an arbitrary ``source``;
* ``ppr``   — personalized PageRank with teleport to ``source``
  (fixed-iteration, so results are bit-reproducible across batchings);
* ``kcore`` — k-core membership for parameter ``k`` (``source`` is the
  vertex whose membership the user asked about; one execution answers
  every vertex, so same-``k`` queries share one run).

Queries are plain frozen records so a traffic tape is trivially
serializable and byte-stable (see :mod:`repro.serve.tape`).  Completion
produces a :class:`QueryResult` carrying the service-time latency and
how the answer was obtained (executed, cache hit, rejected, failed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["QUERY_KINDS", "Query", "QueryResult"]

#: Query kinds the service accepts, in canonical order.
QUERY_KINDS = ("bfs", "sssp", "ppr", "kcore")


@dataclass(frozen=True)
class Query:
    """One analytics request, timestamped in service (simulated) time."""

    #: Monotonic id within one tape / submission stream.
    qid: int
    #: One of :data:`QUERY_KINDS`.
    kind: str
    #: Source vertex (bfs/sssp/ppr) or the vertex whose k-core
    #: membership is asked (kcore).
    source: int
    #: Arrival instant on the service clock, in simulated seconds.
    arrival: float = 0.0
    #: Core parameter; only meaningful for ``kind == "kcore"``.
    k: int = 3

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; pick from {QUERY_KINDS}"
            )

    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """What makes two queries share an answer (graph version aside)."""
        if self.kind == "kcore":
            return ("kcore", self.k)
        return (self.kind, self.source)

    def batch_key(self) -> Tuple:
        """Queries with equal batch keys may ride one BSP execution."""
        if self.kind == "kcore":
            return ("kcore", self.k)
        return (self.kind,)

    def as_row(self) -> list:
        """Compact JSON row: [qid, kind, source, k, arrival]."""
        return [self.qid, self.kind, self.source, self.k, self.arrival]

    @classmethod
    def from_row(cls, row) -> "Query":
        qid, kind, source, k, arrival = row
        return cls(qid=int(qid), kind=str(kind), source=int(source),
                   arrival=float(arrival), k=int(k))


@dataclass
class QueryResult:
    """Terminal record of one query's trip through the service."""

    query: Query
    #: "ok" | "rejected" | "failed".
    status: str
    #: Completion instant on the service clock (= rejection instant for
    #: rejected queries).
    completed_at: float = 0.0
    #: Service-time latency in simulated seconds (completion - arrival).
    latency: float = 0.0
    #: Whether the answer came from the result cache.
    cache_hit: bool = False
    #: Index of the batch that produced the answer (-1: never executed).
    batch_id: int = -1
    #: Graph version the answer was computed against.
    graph_version: int = -1
    #: Why a query was rejected or failed ("" for ok).
    reason: str = ""
    #: The full per-node answer vector (levels / distances / ppr scores /
    #: k-core membership flags); ``None`` for rejected/failed queries.
    answer: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def value(self):
        """The scalar the *user* asked for: the answer at the queried
        vertex (k-core membership flag; a source's own level/score is
        trivial, but the full vector is the product for bfs/sssp/ppr)."""
        if self.answer is None:
            return None
        return self.answer[self.query.source]

    def as_row(self) -> dict:
        return {
            "qid": self.query.qid,
            "kind": self.query.kind,
            "status": self.status,
            "latency_us": round(self.latency * 1e6, 3),
            "cache_hit": self.cache_hit,
            "batch": self.batch_id,
            "reason": self.reason,
        }
