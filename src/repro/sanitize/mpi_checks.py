"""MUST-style MPI usage sanitizers: matching, finalize, and RMA epochs.

These mirror the misuse classes MUST (and the Caliper/Benchpark MPI
pattern analyses in PAPERS.md) flag on real MPI programs, restricted to
what the paper's three layers can actually commit:

Two-sided / matching (:class:`MpiSanitizer`):

* ``mpi.unmatched_send_at_finalize`` — a send request never completed
  when the endpoint is finalized (its receiver never posted a match);
* ``mpi.unexpected_at_finalize``     — messages still parked in the
  unexpected queue at finalize (sent but never received);
* ``mpi.pending_recv_at_finalize``   — posted receives never matched;
* ``mpi.unexpected_watermark``       — the unexpected queue crossed the
  configured high watermark (the resource-exhaustion failure mode of
  Section III-B building up);
* ``mpi.wildcard_order_hazard``      — a receive was posted whose
  signature overlaps a pending receive through a wildcard, so which
  message lands in which buffer depends on arrival interleaving (the
  classic MUST nondeterministic-matching warning).

One-sided / PSCW epochs (:class:`WindowSanitizer`):

* ``mpi.rma_put_outside_epoch`` — MPI_Put issued with no open access
  epoch to the target (also a hard :class:`~repro.mpi.exceptions.
  MPIUsageError`; the sanitizer records the structured violation first);
* ``mpi.rma_overlapping_put``   — two puts into overlapping byte ranges
  of the same target slot within one access epoch, with no intervening
  synchronization: a window data race whose outcome is whichever put
  the NIC orders last.

All checks are pure observation and charge no simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sanitize.runtime import SanitizerContext

__all__ = ["MpiSanitizer", "WindowSanitizer", "signatures_overlap"]


def signatures_overlap(
    source_a: int, tag_a: int, source_b: int, tag_b: int,
    any_source: int, any_tag: int,
) -> bool:
    """Can one arrival match both receive signatures?"""
    src_ok = (
        source_a == any_source or source_b == any_source or source_a == source_b
    )
    tag_ok = tag_a == any_tag or tag_b == any_tag or tag_a == tag_b
    return src_ok and tag_ok


class MpiSanitizer:
    """Per-endpoint two-sided usage checker."""

    #: Compact the tracked-send list once it grows past this.
    _COMPACT_AT = 256

    def __init__(self, ctx: SanitizerContext, rank: int):
        self.ctx = ctx
        self.rank = rank
        self._sends: List[object] = []      # MpiRequest, pruned lazily
        self._watermark_reported = False

    # ------------------------------------------------------------------
    def on_send(self, req) -> None:
        self._sends.append(req)
        if len(self._sends) > self._COMPACT_AT:
            self._sends = [r for r in self._sends if not r.done]

    def on_unexpected(self, queue_len: int) -> None:
        limit = self.ctx.config.unexpected_watermark
        if queue_len > limit and not self._watermark_reported:
            self._watermark_reported = True
            self.ctx.violation(
                "mpi.unexpected_watermark",
                self.rank,
                f"unexpected-message queue reached {queue_len} entries "
                f"(watermark {limit}): receives are not keeping up with "
                "arrivals — the Section III-B exhaustion failure mode",
                queue_len=queue_len,
                watermark=limit,
            )

    def on_post_recv(self, posted_items, source: int, tag: int,
                     any_source: int, any_tag: int) -> None:
        """MUST's nondeterministic-matching warning, at post time."""
        for entry in posted_items:
            if (entry.source, entry.tag) == (source, tag):
                continue  # identical signatures: FIFO keeps it deterministic
            wildcard_involved = (
                any_source in (entry.source, source)
                or any_tag in (entry.tag, tag)
            )
            if not wildcard_involved:
                continue
            if signatures_overlap(
                entry.source, entry.tag, source, tag, any_source, any_tag
            ):
                self.ctx.violation(
                    "mpi.wildcard_order_hazard",
                    self.rank,
                    f"receive ({source},{tag}) posted while pending receive "
                    f"({entry.source},{entry.tag}) overlaps it through a "
                    "wildcard: which message matches which buffer depends "
                    "on arrival interleaving",
                    new_source=source, new_tag=tag,
                    pending_source=entry.source, pending_tag=entry.tag,
                )
                return

    # ------------------------------------------------------------------
    def check_finalize(self, endpoint) -> None:
        """Audit when the layer finalizes the endpoint (MPI_Finalize)."""
        unmatched = [r for r in self._sends if not r.done]
        if unmatched:
            r = unmatched[0]
            self.ctx.violation(
                "mpi.unmatched_send_at_finalize",
                self.rank,
                f"{len(unmatched)} send(s) never completed at finalize "
                f"(first: to rank {r.peer}, tag {r.tag}, {r.size}B — the "
                "receiver never posted a matching receive)",
                count=len(unmatched), first_peer=r.peer, first_tag=r.tag,
            )
        if len(endpoint.unexpected) > 0:
            self.ctx.violation(
                "mpi.unexpected_at_finalize",
                self.rank,
                f"{len(endpoint.unexpected)} message(s) still in the "
                "unexpected queue at finalize (sent but never received)",
                count=len(endpoint.unexpected),
            )
        if len(endpoint.posted) > 0:
            self.ctx.violation(
                "mpi.pending_recv_at_finalize",
                self.rank,
                f"{len(endpoint.posted)} posted receive(s) never matched "
                "at finalize",
                count=len(endpoint.posted),
            )


class WindowSanitizer:
    """Per-window PSCW epoch-discipline and put-race checker."""

    def __init__(self, ctx: SanitizerContext, win_id: int, label: str = "win"):
        self.ctx = ctx
        self.win_id = win_id
        self.label = label
        #: (origin, target) -> [(offset, end)) ranges put this epoch.
        self._epoch_puts: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def on_epoch_start(self, rank: int) -> None:
        """Access epoch opened: forget the previous epoch's put ranges."""
        for key in [k for k in self._epoch_puts if k[0] == rank]:
            del self._epoch_puts[key]

    def on_epoch_complete(self, rank: int) -> None:
        """MPI_Win_complete is a synchronization point: races cannot span it."""
        self.on_epoch_start(rank)

    def on_put(self, rank: int, target: int, offset: int, nbytes: int) -> None:
        lo, hi = offset, offset + max(nbytes, 1)
        ranges = self._epoch_puts.setdefault((rank, target), [])
        for (plo, phi) in ranges:
            if lo < phi and plo < hi:
                self.ctx.violation(
                    "mpi.rma_overlapping_put",
                    rank,
                    f"window {self.label!r}: put of [{lo},{hi}) to target "
                    f"{target} overlaps an earlier put of [{plo},{phi}) in "
                    "the same access epoch — a window data race (the NIC "
                    "orders the writes arbitrarily)",
                    target=target, offset=lo, nbytes=nbytes,
                    earlier_offset=plo, earlier_end=phi,
                )
                break
        ranges.append((lo, hi))

    def on_put_outside_epoch(self, rank: int, target: int) -> None:
        self.ctx.violation(
            "mpi.rma_put_outside_epoch",
            rank,
            f"window {self.label!r}: put to target {target} with no open "
            "access epoch (MPI_Win_start missing or already completed)",
            target=target,
        )
