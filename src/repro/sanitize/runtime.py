"""Sanitizer runtime: violations, modes, and the per-run context.

The protocol sanitizers are MUST-style usage checkers threaded through
the three simulated communication layers.  They observe protocol state
at well-defined points (allocation, free, post, put, finalize) and never
advance simulated time, so a sanitized run is **bit-identical** to an
unsanitized one — the acceptance property every check here is built
around.

Two modes:

* ``"raise"`` — the first violation raises a structured
  :class:`SanitizerError` at the exact detection point (best stack
  trace, best for tests and debugging);
* ``"warn"`` — violations accumulate on the context's report; the run
  continues, the harness surfaces them in ``RunMetrics`` and the Chrome
  tracer, and the CLI exits with the distinct code
  :data:`SANITIZER_EXIT_CODE`.

Enablement is explicit (``EngineConfig.sanitize``, ``repro run
--sanitize``) or via the environment variable ``REPRO_SANITIZE``
(``1``/``warn`` → warn, ``raise``/``strict`` → raise) read once at
engine construction — never inside the simulation modules themselves,
which the determinism lint (rule D104) forbids from branching on the
environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SANITIZER_EXIT_CODE",
    "SanitizerConfig",
    "SanitizerContext",
    "SanitizerError",
    "Violation",
    "resolve_mode",
]

#: Process exit code for "the run finished but warn-mode sanitizers
#: found violations" — distinct from success (0), generic failure (1)
#: and CLI usage errors (2).
SANITIZER_EXIT_CODE = 3

_MODES = ("warn", "raise")


def resolve_mode(explicit: Optional[str] = None) -> Optional[str]:
    """Resolve the sanitizer mode: explicit setting, else environment.

    ``explicit`` may be ``"warn"``, ``"raise"``, ``"off"`` (force-disable
    regardless of the environment) or ``None`` (consult
    ``REPRO_SANITIZE``).  Returns ``"warn"``, ``"raise"`` or ``None``.
    """
    if explicit is not None:
        if explicit == "off":
            return None
        if explicit not in _MODES:
            raise ValueError(
                f"unknown sanitize mode {explicit!r}; pick from "
                f"{_MODES + ('off',)}"
            )
        return explicit
    raw = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return None
    if raw in ("raise", "strict", "error"):
        return "raise"
    return "warn"


@dataclass(frozen=True)
class Violation:
    """One detected protocol misuse (the structured unit of a report)."""

    #: Rule identifier, e.g. ``"lci.packet_leak"`` or
    #: ``"mpi.rma_overlapping_put"``.
    rule: str
    #: Host/rank the violation was detected on (-1 when not host-bound).
    host: int
    #: Simulated time of detection (0.0 when no environment is attached).
    time: float
    #: Human-readable description.
    message: str
    #: Rule-specific structured details (counts, offsets, peers...).
    details: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "host": self.host,
            "time": self.time,
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"[{self.rule}] host {self.host} @ {self.time:.9f}: {self.message}"


class SanitizerError(RuntimeError):
    """A protocol sanitizer violation in ``raise`` mode.

    Carries the structured :class:`Violation` so harnesses can report
    the rule/host/details without parsing the message.
    """

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation

    @property
    def rule(self) -> str:
        return self.violation.rule


@dataclass
class SanitizerConfig:
    """Tunable thresholds of the runtime checkers."""

    #: MPI unexpected-queue length above which a high-watermark breach
    #: is reported (once per endpoint, at the first breach).  The
    #: default is far above anything a healthy run produces.
    unexpected_watermark: int = 1024


class SanitizerContext:
    """The per-run hub every checker reports into.

    One context exists per engine run (installed as
    ``fabric.sanitizer``); the protocol components discover it through
    their NIC's fabric, exactly like the fault injector, so no
    constructor signature in the hot path changes when sanitizers are
    off.
    """

    def __init__(
        self,
        mode: str = "raise",
        env=None,
        tracer=None,
        config: Optional[SanitizerConfig] = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"unknown sanitize mode {mode!r}")
        self.mode = mode
        self.env = env
        self.tracer = tracer
        self.config = config or SanitizerConfig()
        self.violations: List[Violation] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def violation(self, rule: str, host: int, message: str, **details) -> Violation:
        """Record one violation; raise it immediately in ``raise`` mode."""
        v = Violation(rule, host, self.now, message, details)
        self.violations.append(v)
        if self.tracer is not None:
            self.tracer.instant(
                max(host, 0), f"san:{rule}", v.time,
                category="sanitizer", **details,
            )
        if self.mode == "raise":
            raise SanitizerError(v)
        return v

    # ------------------------------------------------------------------
    def by_rule(self, rule: str) -> List[Violation]:
        return [v for v in self.violations if v.rule == rule]

    def as_dicts(self) -> List[Dict]:
        return [v.as_dict() for v in self.violations]

    def summary(self) -> Dict[str, int]:
        """``{rule: count}`` over everything recorded."""
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.violations)

    def __repr__(self) -> str:
        return (
            f"SanitizerContext(mode={self.mode!r}, "
            f"violations={len(self.violations)})"
        )


def format_violations(violations: List[Dict]) -> str:
    """Human-readable block for CLI output (takes ``as_dict`` rows)."""
    lines = [f"sanitizer: {len(violations)} violation(s)"]
    for v in violations:
        details = v.get("details") or {}
        extra = (
            " (" + ", ".join(f"{k}={details[k]}" for k in sorted(details)) + ")"
            if details else ""
        )
        lines.append(
            f"  [{v['rule']}] host {v['host']} @ {v['time']:.9f}: "
            f"{v['message']}{extra}"
        )
    return "\n".join(lines)
