"""Shared report schema + SARIF emitter for the static analyzers.

``repro lint --json`` and ``repro analyze --json`` emit the same
top-level shape so CI tooling can consume either interchangeably::

    {
      "tool":         "repro-lint" | "repro-analyze",
      "rules":        {"D101": "...", ...},
      "findings":     [{"rule", "path", "line", "col", "message", ...}],
      "suppressions": {"count": N},
      "files_checked": N,
      "counts_by_rule": {"D103": 2, ...}
    }

:func:`to_sarif` converts any such report into a minimal SARIF 2.1.0
document (one run, one driver, one result per finding) so both lint and
analyze CI jobs can upload code-scanning artifacts from one code path.
Stdlib only, same constraint as the analyzers themselves.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Sequence

__all__ = ["make_report", "to_sarif", "save_json", "save_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def make_report(
    tool: str,
    rules: Mapping[str, str],
    findings: Sequence,
    *,
    files_checked: int = 0,
    suppressed: int = 0,
) -> Dict:
    """The shared ``--json`` payload for both analyzers.

    ``findings`` may be dataclasses with ``as_dict()`` or plain dicts;
    every entry must carry at least ``rule``/``path``/``line``/``col``/
    ``message``.
    """
    rows: List[Dict] = []
    for f in findings:
        rows.append(f.as_dict() if hasattr(f, "as_dict") else dict(f))
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row["rule"]] = counts.get(row["rule"], 0) + 1
    return {
        "tool": tool,
        "rules": dict(rules),
        "findings": rows,
        "suppressions": {"count": suppressed},
        "files_checked": files_checked,
        "counts_by_rule": counts,
    }


def to_sarif(report: Mapping) -> Dict:
    """Minimal SARIF 2.1.0 document from a :func:`make_report` payload."""
    rules = report.get("rules", {})
    driver = {
        "name": report.get("tool", "repro-analyzer"),
        "informationUri": "https://example.invalid/repro",
        "rules": [
            {
                "id": rule_id,
                "shortDescription": {"text": text},
            }
            for rule_id, text in sorted(rules.items())
        ],
    }
    results = []
    for f in report.get("findings", ()):
        region = {"startLine": max(1, int(f.get("line", 1)))}
        col = int(f.get("col", 0))
        if col >= 0:
            region["startColumn"] = col + 1  # SARIF columns are 1-based
        results.append({
            "ruleId": f["rule"],
            "level": "error",
            "message": {"text": f["message"]},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": str(f.get("path", ""))},
                    "region": region,
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }


def save_json(report: Mapping, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def save_sarif(report: Mapping, path: str) -> str:
    return save_json(to_sarif(report), path)
