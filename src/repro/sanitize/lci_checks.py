"""LCI lifecycle sanitizers: packet-pool and completion-queue checks.

The LCI paper family (and its successor, arXiv 2505.01864) identifies
packet/completion lifecycle bugs as the dominant failure mode of
lightweight runtimes: a budget freed twice silently inflates the pool, a
budget never freed shrinks it until senders livelock, and a recycled
packet touched after its free is a stale read.  The checker here shadows
the pool's budget accounting and the per-packet recycle state:

* ``lci.pool_double_free``     — a free that would push the pool's free
  count past its fixed capacity (some budget was returned twice);
* ``lci.packet_leak``          — budgets still checked out when the
  runtime shuts down (packets never freed);
* ``lci.packet_double_free``   — one specific packet retired twice;
* ``lci.packet_use_after_free``— a retired (recycled) packet handled
  again by the server or the receive path;
* ``lci.cq_unreaped``          — completion-queue entries still parked
  at shutdown (arrivals enqueued for compute threads that nobody ever
  dequeued — a lost-message bug in the consumer).

All checks are pure observation: no simulated time is charged, so
sanitized runs stay bit-identical to unsanitized ones.
"""

from __future__ import annotations

from typing import Optional

from repro.sanitize.runtime import SanitizerContext

__all__ = ["LciSanitizer"]

#: Packet.meta key carrying the sanitizer's lifecycle state.  The value
#: is a per-host dict: the simulated transport hands the *same* Packet
#: object to sender and receiver, whose budget lifecycles are
#: independent (the sender retires at local completion while the
#: receiver is still holding the arrival).
_STATE_KEY = "_san_state"
_LIVE = "live"
_RETIRED = "retired"


class LciSanitizer:
    """Per-host shadow of one packet pool + completion queue."""

    def __init__(self, ctx: SanitizerContext, host: int):
        self.ctx = ctx
        self.host = host
        #: Budgets checked out and not yet returned (shadow counter;
        #: cross-checked against the pool's own accounting at shutdown).
        self.outstanding = 0

    # ------------------------------------------------------------------
    # Pool budget lifecycle
    # ------------------------------------------------------------------
    def on_alloc(self) -> None:
        self.outstanding += 1

    def on_free(self, pool) -> None:
        """Called *before* the pool increments its free count."""
        if pool.free_packets >= pool.size:
            self.ctx.violation(
                "lci.pool_double_free",
                self.host,
                "packet budget freed twice: free count would exceed the "
                f"pool's fixed capacity ({pool.size})",
                free_packets=pool.free_packets,
                pool_size=pool.size,
            )
            return
        self.outstanding = max(0, self.outstanding - 1)

    # ------------------------------------------------------------------
    # Per-packet recycle state
    # ------------------------------------------------------------------
    def _state(self, pkt) -> dict:
        return pkt.meta.setdefault(_STATE_KEY, {})

    def on_packet_made(self, pkt) -> None:
        self._state(pkt)[self.host] = _LIVE

    def on_packet_retired(self, pkt) -> None:
        state = self._state(pkt)
        if state.get(self.host) == _RETIRED:
            self.ctx.violation(
                "lci.packet_double_free",
                self.host,
                f"packet {pkt!r} retired twice (its pool budget was "
                "already recycled)",
                packet=pkt.uid,
            )
            return
        state[self.host] = _RETIRED

    def on_packet_use(self, pkt) -> None:
        if self._state(pkt).get(self.host) == _RETIRED:
            self.ctx.violation(
                "lci.packet_use_after_free",
                self.host,
                f"packet {pkt!r} handled after its pool budget was "
                "recycled (stale read of a reused buffer)",
                packet=pkt.uid,
            )

    # ------------------------------------------------------------------
    # Shutdown audit
    # ------------------------------------------------------------------
    def check_shutdown(self, pool, queue: Optional[object] = None) -> None:
        """Audit at runtime shutdown: every budget home, queue drained."""
        if pool.in_use > 0:
            self.ctx.violation(
                "lci.packet_leak",
                self.host,
                f"{pool.in_use} packet budget(s) still checked out at "
                "shutdown (allocated but never freed)",
                leaked=pool.in_use,
                pool_size=pool.size,
            )
        if queue is not None and len(queue) > 0:
            self.ctx.violation(
                "lci.cq_unreaped",
                self.host,
                f"{len(queue)} completion-queue entr(y/ies) never reaped: "
                "arrivals were enqueued for compute threads but nobody "
                "dequeued them",
                unreaped=len(queue),
            )
