"""Self-test mutation corpus for :mod:`repro.sanitize.proto`.

Each entry is a seeded protocol bug — a realistic mutation of runtime
call-site code (drop a wait, remove a packet free, hoist a put out of
its epoch, ...) — paired with the rule that must catch it, plus a clean
counterpart that must produce **zero** findings.  The snippets live as
strings (not ``.py`` files) so ``repro lint`` / ``repro analyze`` /
ruff never scan the intentionally buggy code.

``repro analyze --selftest`` and ``tests/test_proto.py`` both run
:func:`run_selftest`; a snippet fails the suite when it is missed, when
it trips a rule other than the intended one, or when a clean snippet
reports anything at all.  This is what regression-tests the analyzer
itself: any precision/recall change must keep the whole corpus green.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sanitize.proto import analyze_source

__all__ = ["Snippet", "BAD_SNIPPETS", "CLEAN_SNIPPETS", "run_selftest"]


@dataclass(frozen=True)
class Snippet:
    name: str
    rule: Optional[str]           # expected rule; None for clean code
    source: str
    note: str = ""

    @property
    def path(self) -> str:
        """Corpus snippets pose as comm-layer sources."""
        return f"corpus/repro/comm/{self.name}.py"


BAD_SNIPPETS: Tuple[Snippet, ...] = (
    Snippet(
        "p201_drop_wait", "P201",
        '''
def fire_and_forget(ep, dst, blob):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    return None
''',
        "mutation: the wait after isend was deleted"),
    Snippet(
        "p201_interproc_drop", "P201",
        '''
def post_recv(ep, src):
    req = yield from ep.irecv(src, 0)
    return req


def drop_reply(ep, src):
    req = yield from post_recv(ep, src)
    return None
''',
        "creator summary: helper returns a live request nobody waits"),
    Snippet(
        "p202_double_wait", "P202",
        '''
def wait_twice(ep, dst, blob):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    yield from ep.wait(req)
    yield from ep.wait(req)
''',
        "mutation: a second wait was pasted in"),
    Snippet(
        "p203_early_return", "P203",
        '''
def racy_cancel(ep, dst, blob, fast_path):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    if fast_path:
        return 0
    yield from ep.wait(req)
    return 1
''',
        "one path waits, the early-return path leaks the request"),
    Snippet(
        "p204_hoisted_put", "P204",
        '''
def exchange(win, rank, peers, blob):
    yield from win.post(rank, peers)
    yield from win.put(rank, peers[0], blob.nbytes, blob)
    yield from win.start(rank, peers)
    yield from win.complete(rank)
    got = yield from win.wait(rank)
    return got
''',
        "mutation: the put was hoisted above start()"),
    Snippet(
        "p204_interproc_put", "P204",
        '''
def put_all(win, rank, peers, blob):
    for t in peers:
        yield from win.put(rank, t, blob.nbytes, blob)


def exchange(win, rank, peers, blob):
    yield from win.post(rank, peers)
    yield from put_all(win, rank, peers, blob)
    yield from win.start(rank, peers)
    yield from win.complete(rank)
    got = yield from win.wait(rank)
    return got
''',
        "requires-summary: helper puts, caller never started the epoch"),
    Snippet(
        "p205_post_no_wait", "P205",
        '''
def expose_leak(win, rank, peers, blob):
    yield from win.post(rank, peers)
    yield from win.start(rank, peers)
    yield from win.put(rank, peers[0], blob.nbytes, blob)
    yield from win.complete(rank)
    return None
''',
        "mutation: the exposure-closing wait was deleted"),
    Snippet(
        "p206_alloc_no_free", "P206",
        '''
def reserve_and_forget(pool, env):
    ok = yield from pool.alloc()
    if not ok:
        return False
    yield env.timeout(1e-6)
    return True
''',
        "mutation: the packet free was removed"),
    Snippet(
        "p206_conditional_free", "P206",
        '''
def free_sometimes(pool, env, hot):
    ok = yield from pool.alloc()
    if not ok:
        return False
    yield env.timeout(1e-6)
    if hot:
        yield from pool.free()
    return True
''',
        "one path frees, the other leaks the budget"),
    Snippet(
        "p207_double_free", "P207",
        '''
def free_twice(pool):
    ok = yield from pool.alloc()
    if not ok:
        return
    yield from pool.free()
    yield from pool.free()
''',
        "mutation: a second free was pasted in"),
    Snippet(
        "p207_free_escaped", "P207",
        '''
def free_after_publish(pool, stash):
    ok = yield from pool.alloc()
    if not ok:
        return
    pkt = pool.make_packet(0, 0, 1, 0, 64, None)
    stash.append(pkt)
    yield from pool.free()
''',
        "the packet escaped into a container; its owner frees again"),
    Snippet(
        "p208_poll_after_stop", "P208",
        '''
def drain_after_stop(rt, thread):
    rt.stop_server()
    got = yield from rt.recv_deq(thread)
    return got
''',
        "mutation: shutdown hoisted above the final drain"),
    Snippet(
        "p209_hoisted_send", "P209",
        '''
def hoisted_send(layer, phase, peers, dst, blob):
    yield from layer.send(dst, blob)
    yield from layer.phase_begin(phase, peers, peers)
    got = yield from layer.collect(phase, peers)
    yield from layer.flush(phase)
    yield from layer.phase_end(phase)
    return got
''',
        "mutation: a send was hoisted above phase_begin"),
    Snippet(
        "p210_collect_after_end", "P210",
        '''
def late_collect(layer, phase, peers):
    yield from layer.phase_begin(phase, peers, peers)
    yield from layer.flush(phase)
    yield from layer.phase_end(phase)
    got = yield from layer.collect(phase, peers)
    return got
''',
        "collect on a phase that already ended"),
    Snippet(
        "p211_forgot_flush", "P211",
        '''
def forget_flush(layer, phase, peers, blobs):
    yield from layer.phase_begin(phase, peers, peers)
    for dst, blob in blobs:
        yield from layer.send(dst, blob)
    yield from layer.phase_end(phase)
''',
        "mutation: the flush before phase_end was deleted"),
    Snippet(
        "p211_skipped_shutdown", "P211",
        '''
def teardown_race(layer, phase, peers, flaky):
    yield from layer.phase_begin(phase, peers, peers)
    yield from layer.flush(phase)
    yield from layer.phase_end(phase)
    if flaky:
        return None
    layer.shutdown()
    return None
''',
        "one teardown path shuts down, the error path forgets"),
    Snippet(
        "p212_stale_credit", "P212",
        '''
class CreditGate:
    def __init__(self, env):
        self.env = env
        self.credits = 4

    def run_sender(self):
        while True:
            credits = self.credits
            yield self.env.timeout(1e-6)
            self.credits = credits - 1

    def run_refill(self):
        while True:
            yield self.env.timeout(1e-6)
            self.credits = self.credits + 1


def install(env, gate):
    env.process(gate.run_sender())
    env.process(gate.run_refill())
''',
        "read, yield, write-back: the refill in between is lost"),
)


CLEAN_SNIPPETS: Tuple[Snippet, ...] = (
    Snippet(
        "c201_send_and_wait", None,
        '''
def fire_and_wait(ep, dst, blob):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    yield from ep.wait(req)
'''),
    Snippet(
        "c201_interproc_finish", None,
        '''
def post_recv(ep, src):
    req = yield from ep.irecv(src, 0)
    return req


def finish(ep, req):
    yield from ep.wait(req)


def recv_and_finish(ep, src):
    req = yield from post_recv(ep, src)
    yield from finish(ep, req)
'''),
    Snippet(
        "c202_wait_once", None,
        '''
def wait_once(ep, dst, blob):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    if not req.done:
        yield from ep.wait(req)
'''),
    Snippet(
        "c203_wait_before_return", None,
        '''
def careful_cancel(ep, dst, blob, fast_path):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    yield from ep.wait(req)
    if fast_path:
        return 0
    return 1
'''),
    Snippet(
        "c203_stash_pending", None,
        '''
def stash_pending(ep, dst, blob, pending):
    req = yield from ep.isend(dst, 0, blob.nbytes, payload=blob)
    if req.done:
        return 0
    pending.append(req)
    return 1
'''),
    Snippet(
        "c204_pscw_cycle", None,
        '''
def exchange(win, rank, peers, blob):
    yield from win.post(rank, peers)
    yield from win.start(rank, peers)
    yield from win.put(rank, peers[0], blob.nbytes, blob)
    yield from win.complete(rank)
    got = yield from win.wait(rank)
    return got
'''),
    Snippet(
        "c204_interproc_put", None,
        '''
def put_all(win, rank, peers, blob):
    for t in peers:
        yield from win.put(rank, t, blob.nbytes, blob)


def exchange(win, rank, peers, blob):
    yield from win.post(rank, peers)
    yield from win.start(rank, peers)
    yield from put_all(win, rank, peers, blob)
    yield from win.complete(rank)
    got = yield from win.wait(rank)
    return got
'''),
    Snippet(
        "c206_alloc_free", None,
        '''
def reserve_and_release(pool, env):
    ok = yield from pool.alloc()
    if not ok:
        return False
    yield env.timeout(1e-6)
    yield from pool.free()
    return True
'''),
    Snippet(
        "c206_handoff_callback", None,
        '''
def eager_send(pool, nic, dst, blob, thread):
    ok = yield from pool.alloc(thread)
    if not ok:
        return False
    pkt = pool.make_packet(0, 0, dst, 0, blob.nbytes, blob)
    sent = nic.try_inject(pkt, on_local_complete=lambda:
                          pool.free_nowait(thread))
    if not sent:
        pool.free_nowait(thread)
    return True
'''),
    Snippet(
        "c207_free_once", None,
        '''
def free_once(pool):
    ok = yield from pool.alloc()
    if not ok:
        return
    yield from pool.free()
'''),
    Snippet(
        "c208_drain_then_stop", None,
        '''
def drain_then_stop(rt, thread):
    got = yield from rt.recv_deq(thread)
    rt.stop_server()
    return got
'''),
    Snippet(
        "c209_phase_cycle", None,
        '''
def ordered_phase(layer, phase, peers, dst, blob):
    yield from layer.phase_begin(phase, peers, peers)
    yield from layer.send(dst, blob)
    yield from layer.flush(phase)
    got = yield from layer.collect(phase, peers)
    yield from layer.phase_end(phase)
    return got
'''),
    Snippet(
        "c211_flush_loop", None,
        '''
def flushed_sends(layer, phase, peers, blobs):
    yield from layer.phase_begin(phase, peers, peers)
    for dst, blob in blobs:
        yield from layer.send(dst, blob)
    yield from layer.flush(phase)
    yield from layer.phase_end(phase)
'''),
    Snippet(
        "c211_always_shutdown", None,
        '''
def clean_teardown(layer, phase, peers, flaky):
    yield from layer.phase_begin(phase, peers, peers)
    yield from layer.flush(phase)
    yield from layer.phase_end(phase)
    layer.shutdown()
    if flaky:
        return None
    return True
'''),
    Snippet(
        "c212_reread_after_yield", None,
        '''
class CreditGate:
    def __init__(self, env):
        self.env = env
        self.credits = 4

    def run_sender(self):
        while True:
            yield self.env.timeout(1e-6)
            self.credits = self.credits - 1

    def run_refill(self):
        while True:
            yield self.env.timeout(1e-6)
            self.credits = self.credits + 1


def install(env, gate):
    env.process(gate.run_sender())
    env.process(gate.run_refill())
'''),
    Snippet(
        "c212_single_writer", None,
        '''
class Window:
    def __init__(self, env):
        self.env = env
        self.inflight = 0

    def run_sender(self):
        while True:
            inflight = self.inflight
            yield self.env.timeout(1e-6)
            self.inflight = inflight + 1

    def run_logger(self):
        while True:
            yield self.env.timeout(1e-3)
            count = self.inflight


def install(env, win):
    env.process(win.run_sender())
    env.process(win.run_logger())
'''),
)


def run_selftest() -> Tuple[List[str], Dict[str, int]]:
    """(failures, per-rule hit counts).  Empty failures == healthy."""
    failures: List[str] = []
    hits: Dict[str, int] = {}
    for sn in BAD_SNIPPETS:
        findings = analyze_source(sn.source, sn.path)
        rules = {f.rule for f in findings}
        if not findings:
            failures.append(
                f"{sn.name}: seeded {sn.rule} bug was not caught")
        elif rules != {sn.rule}:
            failures.append(
                f"{sn.name}: expected only {sn.rule}, got "
                f"{sorted(rules)}")
        else:
            hits[sn.rule] = hits.get(sn.rule, 0) + 1
    for sn in CLEAN_SNIPPETS:
        findings = analyze_source(sn.source, sn.path)
        if findings:
            failures.append(
                f"{sn.name}: clean snippet flagged: "
                + "; ".join(str(f) for f in findings))
    return failures, hits
