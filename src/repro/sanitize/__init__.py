"""Correctness tooling: static determinism lint + runtime protocol sanitizers.

Two halves, one goal — keep the simulator bit-deterministic and the
protocol models honest so every perf/refactor PR has a safety net:

* :mod:`repro.sanitize.lint` — AST-based determinism lint
  (``repro lint``), stdlib-only;
* :mod:`repro.sanitize.proto` — interprocedural static protocol
  analyzer (``repro analyze``): MPI request, PSCW epoch, packet-pool,
  and comm-phase lifecycles checked whole-program, self-tested by the
  mutation corpus in :mod:`repro.sanitize.corpus`;
* :mod:`repro.sanitize.report` — the shared ``--json`` schema and
  SARIF emitter used by both static passes;
* :mod:`repro.sanitize.runtime` + the per-layer checkers
  (:mod:`~repro.sanitize.lci_checks`, :mod:`~repro.sanitize.mpi_checks`)
  — opt-in MUST-style runtime sanitizers (``repro run --sanitize`` or
  ``REPRO_SANITIZE=1``).
"""

from repro.sanitize.lci_checks import LciSanitizer
from repro.sanitize.mpi_checks import MpiSanitizer, WindowSanitizer, signatures_overlap
from repro.sanitize.runtime import (
    SANITIZER_EXIT_CODE,
    SanitizerConfig,
    SanitizerContext,
    SanitizerError,
    Violation,
    format_violations,
    resolve_mode,
)

__all__ = [
    "SANITIZER_EXIT_CODE",
    "LciSanitizer",
    "MpiSanitizer",
    "SanitizerConfig",
    "SanitizerContext",
    "SanitizerError",
    "Violation",
    "WindowSanitizer",
    "format_violations",
    "resolve_mode",
    "signatures_overlap",
]
