"""Static determinism lint for the simulation codebase (``repro lint``).

The whole reproduction rests on the simulator being **bit-deterministic**
— fault replay (docs/MODEL.md §7), the chaos harness's answer
comparison, and every layer-vs-layer timing claim assume that the same
(scenario, seed) pair produces the same event sequence.  This module is
an AST-based analyzer that flags the code patterns which historically
break that property:

====== ==========================================================
rule   flags
====== ==========================================================
D101   wall-clock calls (``time.time``, ``datetime.now``, ...) —
       real time leaking into simulated state
D102   the global ``random`` module / ``numpy.random`` module-level
       generators / unseeded ``default_rng()`` instead of the
       named-stream :class:`repro.sim.rng.RngFactory` API
D103   iteration over ``set``/``frozenset`` values in the
       ordering-sensitive modules (``sim/``, ``netapi/``, ``lci/``,
       ``mpi/``, ``comm/``, ``faults/``, ``serve/``) — Python set
       order depends on insertion history and hash seeds, so event
       order leaks
D104   ``os.environ``/``os.getenv`` in ordering-sensitive modules —
       simulation behavior must never branch on the environment
D105   floating-point accumulation (``sum``/``math.fsum``) over an
       unordered iterable — reduction order changes the bits of
       metrics
D106   iteration over ``.keys()``/``.values()`` of a dict populated
       from an unordered set — the dict inherits the set's
       insertion order, so the nondeterminism survives the copy
====== ==========================================================

A finding is suppressed by a ``# lint-ok: D103 <why>`` comment on the
flagged line (multiple rules comma-separated; ``# lint-ok: all``
suppresses everything on the line).  Suppressions are counted in the
JSON report so CI can watch for creep.

The lint is intentionally self-contained (stdlib ``ast`` only) because
the container image pins its dependency set.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "RULES",
    "ORDER_SENSITIVE_DIRS",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_repo",
    "repo_package_root",
    "report_dict",
    "format_findings",
]

RULES: Dict[str, str] = {
    "D101": "wall-clock call in simulation code",
    "D102": "global random source instead of the named-stream rng API",
    "D103": "iteration over an unordered set in an ordering-sensitive module",
    "D104": "environment-dependent branching in an ordering-sensitive module",
    "D105": "floating-point accumulation over an unordered iterable",
    "D106": "iteration over a dict populated from an unordered set",
}

#: Package subdirectories whose event/iteration order feeds simulated
#: time: anything nondeterministic here changes the run.  ``serve`` is
#: here because the query scheduler's decisions (batch composition,
#: admission, cache order) feed the service clock and the tape-replay
#: byte-identity guarantee.  ``obs`` is here because its exporters and
#: the comm observatory promise byte-identical artifacts (timelines,
#: comm-docs, fingerprints) for identical runs — any unordered
#: iteration there breaks the CI drift gates built on those bytes.
ORDER_SENSITIVE_DIRS = ("sim", "netapi", "lci", "mpi", "comm", "faults",
                        "serve", "obs")

_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.clock", "time.clock_gettime",
}
_DATETIME_FNS = {"now", "utcnow", "today"}
#: numpy.random attributes that are deterministic construction tools,
#: not draws from the hidden module-level global generator.
_NP_RANDOM_SAFE = {
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

_SUPPRESS_RE = re.compile(
    r"lint-ok:\s*(all|[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One lint hit, machine- and human-readable."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ----------------------------------------------------------------------
# Path sensitivity
# ----------------------------------------------------------------------
def is_order_sensitive(path: str) -> bool:
    """True when ``path`` lies in an ordering-sensitive package dir."""
    parts = Path(path).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rest = parts[idx + 1:]
        return bool(rest) and rest[0] in ORDER_SENSITIVE_DIRS
    return any(p in ORDER_SENSITIVE_DIRS for p in parts[:-1])


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def _suppressions(source: str) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        spec = m.group(1)
        if spec.lower() == "all":
            out[lineno] = {"all"}
        else:
            out[lineno] = {r.strip().upper() for r in spec.split(",")}
    return out


# ----------------------------------------------------------------------
# The visitor
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, sensitive: bool):
        self.path = path
        self.sensitive = sensitive
        self.findings: List[Finding] = []
        #: local alias -> canonical module name ("np" -> "numpy")
        self.module_aliases: Dict[str, str] = {}
        #: imported-from name -> canonical dotted origin
        #: ("time" -> "time.time" after ``from time import time``)
        self.from_imports: Dict[str, str] = {}
        #: stack of per-scope sets of names known to hold set values
        self._set_names: List[Set[str]] = [set()]
        #: stack of per-scope names of dicts built from unordered sets
        self._setfed_dicts: List[Set[str]] = [set()]
        #: nodes already reported by D105 (skip the D103 re-report)
        self._claimed: Set[int] = set()

    # -- helpers -------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, node.lineno, node.col_offset, message)
        )

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a call target, alias-expanded."""
        d = _dotted(node)
        if d is None:
            return None
        head, _, rest = d.partition(".")
        if head in self.from_imports:
            head = self.from_imports[head]
        elif head in self.module_aliases:
            head = self.module_aliases[head]
        return f"{head}.{rest}" if rest else head

    def _is_unordered(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"
            ):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_unordered(node.left) or self._is_unordered(
                node.right
            )
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            self.module_aliases[alias.asname or root] = root
            if root == "random":
                self._flag(
                    "D102", node,
                    "import of the global `random` module; draw from a "
                    "named stream of repro.sim.rng.RngFactory instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = (node.module or "").split(".")[0]
        for alias in node.names:
            self.from_imports[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}" if node.module else alias.name
            )
        if mod == "random":
            self._flag(
                "D102", node,
                "import from the global `random` module; draw from a "
                "named stream of repro.sim.rng.RngFactory instead",
            )
        self.generic_visit(node)

    # -- scopes & assignments -----------------------------------------
    def _is_set_fed_dict(self, node: ast.AST) -> bool:
        """An expression building a dict whose key order comes from an
        unordered set (``{k: v for k in s}``, ``dict.fromkeys(s)``)."""
        if isinstance(node, ast.DictComp):
            return any(self._is_unordered(gen.iter)
                       for gen in node.generators)
        if isinstance(node, ast.Call):
            target = _dotted(node.func)
            if target == "dict.fromkeys" and node.args:
                return self._is_unordered(node.args[0])
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._setfed_dicts)
        return False

    def _enter_scope(self, node) -> None:
        self._set_names.append(set())
        self._setfed_dicts.append(set())
        self.generic_visit(node)
        self._set_names.pop()
        self._setfed_dicts.pop()

    visit_FunctionDef = _enter_scope
    visit_AsyncFunctionDef = _enter_scope
    visit_ClassDef = _enter_scope
    visit_Lambda = _enter_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        unordered = self._is_unordered(node.value)
        set_fed = self._is_set_fed_dict(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if unordered:
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
                if set_fed:
                    self._setfed_dicts[-1].add(target.id)
                else:
                    self._setfed_dicts[-1].discard(target.id)
        self.generic_visit(node)

    # -- D103/D106: unordered iteration -------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if not self.sensitive or id(iter_node) in self._claimed:
            return
        if self._is_unordered(iter_node):
            self._claimed.add(id(iter_node))
            self._flag(
                "D103", iter_node,
                "iterating an unordered set in an ordering-sensitive "
                "module; wrap in sorted(...) to fix the traversal order",
            )
            return
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("keys", "values")
            and self._is_set_fed_dict(iter_node.func.value)
        ):
            self._claimed.add(id(iter_node))
            self._flag(
                "D106", iter_node,
                f"iterating .{iter_node.func.attr}() of a dict "
                "populated from an unordered set; the dict inherits "
                "the set's iteration order — build it from "
                "sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set is fine; iterating one inside the build is not.
        self._visit_comp(node)

    # -- attribute-level rules (D104) ---------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.sensitive:
            resolved = self._resolve(node)
            if resolved == "os.environ":
                self._flag(
                    "D104", node,
                    "os.environ consulted in an ordering-sensitive module; "
                    "simulation behavior must not branch on the environment",
                )
        self.generic_visit(node)

    # -- call-level rules (D101, D102, D104, D105) --------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            self._check_wall_clock(node, resolved)
            self._check_global_random(node, resolved)
            if self.sensitive and resolved == "os.getenv":
                self._flag(
                    "D104", node,
                    "os.getenv called in an ordering-sensitive module; "
                    "simulation behavior must not branch on the environment",
                )
        self._check_fp_accumulation(node, resolved)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if resolved in _WALL_CLOCK:
            self._flag(
                "D101", node,
                f"wall-clock call {resolved}(); simulated components must "
                "read time from Environment.now",
            )
            return
        parts = resolved.split(".")
        if (
            parts[0] == "datetime"
            and parts[-1] in _DATETIME_FNS
        ):
            self._flag(
                "D101", node,
                f"wall-clock call {resolved}(); simulated components must "
                "read time from Environment.now",
            )

    def _check_global_random(self, node: ast.Call, resolved: str) -> None:
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) > 1:
            self._flag(
                "D102", node,
                f"{resolved}() draws from the global random state; use a "
                "named stream of repro.sim.rng.RngFactory",
            )
            return
        if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            attr = parts[2]
            if attr not in _NP_RANDOM_SAFE:
                self._flag(
                    "D102", node,
                    f"{resolved}() uses numpy's hidden module-level "
                    "generator; use a named stream of "
                    "repro.sim.rng.RngFactory",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                self._flag(
                    "D102", node,
                    "default_rng() without a seed is nondeterministic; "
                    "seed it or use repro.sim.rng.RngFactory",
                )

    def _check_fp_accumulation(
        self, node: ast.Call, resolved: Optional[str]
    ) -> None:
        is_sum = (
            isinstance(node.func, ast.Name) and node.func.id == "sum"
        ) or resolved in ("math.fsum", "numpy.sum")
        if not is_sum or not node.args:
            return
        arg = node.args[0]
        unordered = self._is_unordered(arg)
        if not unordered and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            gen_iter = arg.generators[0].iter
            if self._is_unordered(gen_iter):
                unordered = True
                self._claimed.add(id(gen_iter))
        if unordered:
            self._claimed.add(id(arg))
            self._flag(
                "D105", node,
                "accumulation over an unordered iterable: floating-point "
                "addition is not associative, so the reduction order "
                "changes the result bits; sort the operands first",
            )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0


def lint_source(source: str, path: str = "<memory>") -> List[Finding]:
    """Findings for one source string (suppressions applied)."""
    return _lint_source_counted(source, path).findings


def _lint_source_counted(source: str, path: str) -> LintResult:
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path, is_order_sensitive(path))
    visitor.visit(tree)
    supp = _suppressions(source)
    kept: List[Finding] = []
    suppressed = 0
    for f in visitor.findings:
        rules = supp.get(f.line, ())
        if "all" in rules or f.rule in rules:
            suppressed += 1
        else:
            kept.append(f)
    return LintResult(kept, 1, suppressed)


def lint_file(path) -> List[Finding]:
    return lint_source(Path(path).read_text(), str(path))


def _iter_python_files(paths: Sequence) -> Iterable[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def lint_paths(paths: Sequence) -> LintResult:
    """Lint files/directories; aggregated result, findings in path order."""
    result = LintResult()
    for f in _iter_python_files(paths):
        one = _lint_source_counted(f.read_text(), str(f))
        result.findings.extend(one.findings)
        result.files_checked += 1
        result.suppressed += one.suppressed
    return result


def repo_package_root() -> Path:
    """The installed ``repro`` package directory (the default lint root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_repo() -> LintResult:
    return lint_paths([repo_package_root()])


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def report_dict(result: LintResult) -> Dict:
    """Machine-readable report (the ``repro lint --json`` payload).

    Shares the schema of ``repro analyze --json`` (see
    :func:`repro.sanitize.report.make_report`); the pre-schema
    ``suppressed`` count is kept as a legacy alias.
    """
    from repro.sanitize.report import make_report

    doc = make_report("repro-lint", RULES, result.findings,
                      files_checked=result.files_checked,
                      suppressed=result.suppressed)
    doc["suppressed"] = result.suppressed
    return doc


def format_findings(result: LintResult) -> str:
    lines = [str(f) for f in result.findings]
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s), {result.suppressed} suppressed"
    )
    return "\n".join(lines)


def save_report(result: LintResult, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(report_dict(result), fh, indent=2)
    return path


def _unused_tuple_guard() -> Tuple[int, int]:  # pragma: no cover
    return (0, 0)
