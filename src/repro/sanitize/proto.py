"""Whole-program static protocol analyzer (``repro analyze``).

PR 2's *runtime* sanitizers only catch protocol misuse on the paths a
given scenario happens to execute.  This module is the static half: an
interprocedural AST dataflow pass (stdlib ``ast`` only, like
:mod:`repro.sanitize.lint`) that models the runtime's protocols as
per-object state machines and checks every call site against them.

====== ==========================================================
rule   flags
====== ==========================================================
P201   nonblocking MPI request created but never waited/tested
P202   MPI request waited twice
P203   MPI request leaked across a return path without escaping
P204   RMA ``put`` reachable outside a ``start``/``complete``
       access epoch
P205   mismatched PSCW exposure epoch (``post`` without ``wait``,
       ``wait`` without ``post``, nested ``post``)
P206   LCI packet budget allocated but not freed on every path
P207   ``free`` of an escaped packet budget, or double free
P208   completion queue polled after shutdown
P209   ``CommLayer.send`` outside a ``phase_begin``/``phase_end``
       window
P210   ``collect`` on a phase never begun (or already ended)
P211   ``phase_end`` with unflushed sends, or a teardown path that
       skips ``shutdown()`` while a sibling path shuts down
P212   attribute mutated from two simulated process generators
       with a stale read across a sim-event yield
====== ==========================================================

Design notes
------------
* **Object tracking.**  Requests (``isend``/``irecv``) and packet-pool
  budgets (``alloc``/``make_packet``) become *tokens* with a
  path-sensitive status (live / released / escaped / handed-off / ...).
  Escape analysis is deliberately generous: storing a token into an
  attribute, container, or passing it to another call counts as an
  escape, so only *locally dropped* objects are flagged.
* **State machines.**  Epochs (PSCW access/exposure), comm phases, and
  CQ lifecycles are per-receiver machines keyed by the dotted receiver
  expression (``win``, ``self.pool``, ``layer``...).  Receivers are
  *gated by kind* (window-like, pool-like, layer-like, cq-like —
  inferred from names, constructors, and class defs) so e.g.
  ``self.cache.put`` never trips the RMA rules.
* **Opener implies entry-closed.**  ``start``/``post``/``phase_begin``
  raise at runtime when their epoch is already open (the runtime
  forbids nesting), so a function that *opens* an epoch can assume it
  was closed on entry — that is what makes "hoisted put" definite.
* **Interprocedural core.**  Every function gets a summary (creates /
  releases / open-close effects / open-state requirements) computed to
  a bounded fixpoint and applied at call sites resolved through a
  name-and-class call graph.  Ambiguous dispatch (several methods with
  one name) contributes nothing — precision over recall.

A finding is suppressed with ``# proto-ok: P204 <why>`` on the flagged
line; accepted findings live in ``PROTO_BASELINE.json`` keyed by
(rule, path, symbol) so line drift never invalidates the baseline.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sanitize.lint import _iter_python_files, repo_package_root

__all__ = [
    "RULES",
    "ProtoFinding",
    "AnalysisResult",
    "analyze_source",
    "analyze_paths",
    "analyze_repo",
    "report_dict",
    "format_findings",
    "normalize_path",
    "load_baseline",
    "save_baseline",
    "diff_baseline",
    "BASELINE_NAME",
]

RULES: Dict[str, str] = {
    "P201": "nonblocking MPI request created but never waited or tested",
    "P202": "MPI request waited twice",
    "P203": "MPI request leaked across a function return without escaping",
    "P204": "RMA put outside its start/complete access epoch",
    "P205": "mismatched PSCW exposure epoch (post/wait pairing)",
    "P206": "LCI packet budget allocated but not freed on every path",
    "P207": "free of an escaped packet budget, or double free",
    "P208": "completion queue polled after shutdown",
    "P209": "CommLayer send outside a phase_begin/phase_end window",
    "P210": "collect on a comm phase never begun",
    "P211": "phase ended with unflushed sends, or teardown path missing "
            "shutdown",
    "P212": "shared attribute written from concurrent process generators "
            "with a stale read across a yield",
}

BASELINE_NAME = "PROTO_BASELINE.json"

_SUPPRESS_RE = re.compile(
    r"proto-ok:\s*(all|[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)", re.IGNORECASE
)

# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProtoFinding:
    """One analyzer hit; ``symbol`` is the enclosing function qualname."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def as_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }

    def __str__(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}{sym}"
        )


@dataclass
class AnalysisResult:
    findings: List[ProtoFinding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0


# ----------------------------------------------------------------------
# Receiver kinds and op tables
# ----------------------------------------------------------------------

#: protocols and the state in which their "requires" ops are misuses
_BAD_STATE = {
    "access": "closed",
    "exposure": "closed",
    "phase": "closed",
    "cq": "shut",
}

_CREATOR_METHODS = {"isend": "request", "irecv": "request"}
_REQUEST_CLASSES = {"MpiRequest"}
_WINDOW_OPS = {
    "start", "complete", "put", "post", "wait", "test_wait",
    "finish_exposure",
}
_LAYER_OPS = {
    "phase_begin", "phase_end", "send", "collect", "collect_some",
    "flush", "shutdown",
}
#: budget releases (``retire`` returns the packet object, not the
#: budget reservation, so it is tracked separately)
_POOL_RELEASES = {"free", "free_nowait"}
_CQ_SHUT_OPS = {"stop_server", "shutdown", "stop"}
_CQ_POLL_OPS = {"recv_deq", "dequeue", "dequeue_from", "poll", "send_enq"}
#: container methods whose argument is durably stored (strong escape)
_STORE_METHODS = {
    "append", "appendleft", "add", "extend", "insert", "push",
    "setdefault", "enqueue", "register", "record",
}


def _class_kind(name: str, bases: Sequence[str]) -> Optional[str]:
    for n in [name] + list(bases):
        if "CommLayer" in n or n.endswith("Layer"):
            return "layer"
        if "Window" in n:
            return "window"
        if "Pool" in n:
            return "pool"
        if "Endpoint" in n:
            return "ep"
        if "Runtime" in n or "Queue" in n:
            return "cq"
    return None


def _hint_kind(key: str) -> Optional[str]:
    """Receiver kind guessed from the dotted expression's last name."""
    last = key.split(".")[-1].replace("[]", "").lower()
    if not last:
        return None
    if "win" in last:
        return "window"
    if "pool" in last:
        return "pool"
    if "layer" in last:
        return "layer"
    if last == "ep" or "endpoint" in last:
        return "ep"
    if (last.startswith("rt") or "runtime" in last or "server" in last
            or "queue" in last or last == "cq"):
        return "cq"
    return None


def _expr_key(node: ast.AST) -> Optional[str]:
    """Stable dotted key for a receiver expression (``a.b[..].c``)."""
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            if not parts:
                parts.append("[]")
            else:
                parts[-1] = parts[-1] + "[]"
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        else:
            return None


# ----------------------------------------------------------------------
# Program index: functions, classes, summaries
# ----------------------------------------------------------------------


@dataclass
class _FuncInfo:
    node: ast.AST                       # FunctionDef / AsyncFunctionDef
    path: str
    qualname: str
    cls: Optional[str]                  # enclosing class name
    params: List[str]                   # excluding self/cls


@dataclass
class _ClassInfo:
    name: str
    bases: List[str]
    kind: Optional[str]
    methods: Dict[str, _FuncInfo] = field(default_factory=dict)


@dataclass
class _Summary:
    creates: Optional[str] = None       # token kind returned live
    releases: Set[str] = field(default_factory=set)   # param names
    #: (root, subpath, proto, state) applied at resolved call sites
    effects: List[Tuple[str, str, str, str]] = field(default_factory=list)
    #: (root, subpath, proto, rule, opname) preconditions
    requires: List[Tuple[str, str, str, str, str]] = (
        field(default_factory=list))


class _Program:
    """Whole-program index + two-phase (summaries, findings) driver."""

    def __init__(self, modules: Sequence[Tuple[str, str]]):
        #: modules: (path, source)
        self.modules: List[Tuple[str, str, ast.Module]] = []
        self.functions: Dict[str, _FuncInfo] = {}       # "path::qual"
        self.by_name: Dict[str, List[_FuncInfo]] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        self.summaries: Dict[str, _Summary] = {}
        for path, source in modules:
            tree = ast.parse(source, filename=path)
            self.modules.append((path, source, tree))
            self._index_module(path, tree)

    # -- indexing ------------------------------------------------------
    def _index_module(self, path: str, tree: ast.Module) -> None:
        def visit(node, qual: str, cls: Optional[str]):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    bases = [b for b in map(_expr_key, child.bases) if b]
                    info = _ClassInfo(
                        child.name, bases,
                        _class_kind(child.name, bases))
                    self.classes.setdefault(child.name, info)
                    visit(child, f"{qual}{child.name}.", child.name)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    params = [a.arg for a in child.args.args]
                    if cls and params and params[0] in ("self", "cls"):
                        params = params[1:]
                    fi = _FuncInfo(child, path, f"{qual}{child.name}",
                                   cls, params)
                    self.functions[f"{path}::{fi.qualname}"] = fi
                    self.by_name.setdefault(child.name, []).append(fi)
                    if cls and cls in self.classes:
                        self.classes[cls].methods.setdefault(child.name, fi)
                    visit(child, f"{qual}{child.name}.", None)
        visit(tree, "", None)

    def key_of(self, fi: _FuncInfo) -> str:
        return f"{fi.path}::{fi.qualname}"

    # -- call resolution ----------------------------------------------
    def resolve_method(self, cls: Optional[str],
                       name: str) -> Optional[_FuncInfo]:
        seen: Set[str] = set()
        while cls and cls in self.classes and cls not in seen:
            seen.add(cls)
            info = self.classes[cls]
            if name in info.methods:
                return info.methods[name]
            cls = info.bases[0] if info.bases else None
        return None

    def resolve_unique(self, name: str,
                       module: Optional[str] = None) -> Optional[_FuncInfo]:
        cands = self.by_name.get(name, [])
        if module is not None:
            local = [c for c in cands
                     if c.path == module and c.cls is None]
            if len(local) == 1:
                return local[0]
        if len(cands) == 1:
            return cands[0]
        return None

    # -- driver --------------------------------------------------------
    def run(self) -> List[ProtoFinding]:
        infos = list(self.functions.values())
        for _ in range(3):                      # bounded fixpoint
            new: Dict[str, _Summary] = {}
            for fi in infos:
                fa = _FuncAnalyzer(self, fi, collect=False)
                fa.run()
                new[self.key_of(fi)] = fa.summary
            self.summaries = new
        findings: List[ProtoFinding] = []
        for fi in infos:
            fa = _FuncAnalyzer(self, fi, collect=True)
            fa.run()
            findings.extend(fa.findings)
        for path, _source, tree in self.modules:
            findings.extend(_race_pass(path, tree))
        dedup: Dict[Tuple, ProtoFinding] = {}
        for f in findings:
            dedup.setdefault((f.rule, f.path, f.line, f.symbol), f)
        return sorted(dedup.values(),
                      key=lambda f: (f.path, f.line, f.rule))


# ----------------------------------------------------------------------
# Path-sensitive state
# ----------------------------------------------------------------------

#: token statuses.  "handed" = released through a completion callback;
#: "weak" = passed to another call (might be stored, might not);
#: "void" = the guarded alloc failed on this path.
_SAFE = {"waited", "tested", "freed", "handed", "weak", "escaped", "void"}


def _join_status(a: str, b: str) -> str:
    if a == b:
        return a
    pair = {a, b}
    if pair == {"live", "void"}:
        # alloc-failure paths return early in practice; assume the
        # frees on the success path pair with the success alloc.
        return "live"
    if "live" in pair or "maybe" in pair:
        return "maybe"
    return "handed"


@dataclass
class _Token:
    kind: str                     # "request" | "budget" | "packet"
    node: ast.AST                 # creation site
    key: str                      # receiver key (pool for budgets)
    budget: Optional[int] = None  # packet -> its budget token id


class _State:
    """One abstract path: token statuses + per-receiver machines."""

    __slots__ = ("tokens", "vars", "guards", "machines", "unflushed")

    def __init__(self):
        self.tokens: Dict[int, str] = {}
        self.vars: Dict[str, int] = {}
        self.guards: Dict[str, int] = {}
        self.machines: Dict[str, Dict[str, str]] = {}
        self.unflushed: Dict[str, int] = {}

    def copy(self) -> "_State":
        st = _State()
        st.tokens = dict(self.tokens)
        st.vars = dict(self.vars)
        st.guards = dict(self.guards)
        st.machines = {k: dict(v) for k, v in self.machines.items()}
        st.unflushed = dict(self.unflushed)
        return st

    def get_machine(self, key: str, proto: str) -> str:
        return self.machines.get(key, {}).get(proto, "?")

    def set_machine(self, key: str, proto: str, state: str) -> None:
        self.machines.setdefault(key, {})[proto] = state


def _join_states(states: List[_State]) -> Optional[_State]:
    states = [s for s in states if s is not None]
    if not states:
        return None
    out = states[0].copy()
    for st in states[1:]:
        for tid in set(out.tokens) | set(st.tokens):
            a = out.tokens.get(tid)
            b = st.tokens.get(tid)
            if a is None or b is None:
                out.tokens[tid] = a if b is None else b
            else:
                out.tokens[tid] = _join_status(a, b)
        out.vars = {k: v for k, v in out.vars.items()
                    if st.vars.get(k) == v}
        out.guards = {k: v for k, v in out.guards.items()
                      if st.guards.get(k) == v}
        keys = set(out.machines) | set(st.machines)
        joined: Dict[str, Dict[str, str]] = {}
        for key in keys:
            ma = out.machines.get(key, {})
            mb = st.machines.get(key, {})
            row: Dict[str, str] = {}
            for proto in set(ma) | set(mb):
                sa, sb = ma.get(proto, "?"), mb.get(proto, "?")
                row[proto] = sa if sa == sb else "?"
            joined[key] = row
        out.machines = joined
        for key in set(out.unflushed) | set(st.unflushed):
            out.unflushed[key] = max(out.unflushed.get(key, 0),
                                     st.unflushed.get(key, 0))
    return out


# ----------------------------------------------------------------------
# The per-function abstract interpreter
# ----------------------------------------------------------------------


class _LoopCtx:
    __slots__ = ("breaks", "continues")

    def __init__(self):
        self.breaks: List[_State] = []
        self.continues: List[_State] = []


class _FuncAnalyzer:
    def __init__(self, program: _Program, fn: _FuncInfo, collect: bool):
        self.program = program
        self.fn = fn
        self.collect = collect
        self.findings: List[ProtoFinding] = []
        self.summary = _Summary()
        self.tokens: Dict[int, _Token] = {}
        self._next_tid = 0
        #: (node, state, kind) — kind in {"return", "end", "raise"}
        self.exits: List[Tuple[ast.AST, _State, str]] = []
        self.var_kinds: Dict[str, str] = {}
        self.var_roots: Dict[str, Tuple[str, str]] = {}
        self.var_classes: Dict[str, str] = {}
        self._loop_stack: List[_LoopCtx] = []
        self._posted: Dict[str, ast.AST] = {}
        self._completed: Set[str] = set()
        self._shut_sites: Dict[str, ast.AST] = {}
        self._released_params: Set[str] = set()
        self._return_kinds: Set[str] = set()
        self._param_set = set(fn.params)

    # -- plumbing ------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if self.collect:
            self.findings.append(ProtoFinding(
                rule, self.fn.path, getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0), message,
                self.fn.qualname))

    def _new_token(self, kind: str, node: ast.AST, key: str,
                   st: _State, budget: Optional[int] = None) -> int:
        self._next_tid += 1
        tid = self._next_tid
        self.tokens[tid] = _Token(kind, node, key, budget)
        st.tokens[tid] = "live"
        return tid

    def _kind_of(self, key: Optional[str]) -> Optional[str]:
        if key is None:
            return None
        head = key.split(".")[0].replace("[]", "")
        if head == "self":
            if "." not in key:
                cls = self.program.classes.get(self.fn.cls or "")
                return cls.kind if cls else None
        elif "." not in key:
            if head in self.var_kinds:
                return self.var_kinds[head]
            if head in self.var_classes:
                ci = self.program.classes.get(self.var_classes[head])
                if ci and ci.kind:
                    return ci.kind
        return _hint_kind(key)

    def _root_of(self, key: str) -> Optional[Tuple[str, str]]:
        """(root, subpath) when the receiver is reachable from
        ``self`` or a parameter — i.e. a caller could name it too."""
        head = key.split(".")[0].replace("[]", "")
        rest = key[len(head):]
        if head == "self" or head in self._param_set:
            return head, rest
        if head in self.var_roots:
            root, sub = self.var_roots[head]
            return root, sub + rest
        return None

    # -- entry ---------------------------------------------------------
    def run(self) -> None:
        st = _State()
        self._preopen(st)
        self._entry_machines = {k: dict(v)
                                for k, v in st.machines.items()}
        out = self._exec_block(list(self.fn.node.body), st)
        if out is not None:
            self.exits.append((self.fn.node, out, "end"))
        self._finalize()

    def _preopen(self, st: _State) -> None:
        """Openers imply entry-closed (epochs/phases never nest)."""
        for node in ast.walk(self.fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            key = _expr_key(node.func.value)
            if key is None:
                continue
            kind = self._kind_of(key)
            m = node.func.attr
            if kind == "window" and m == "start":
                st.set_machine(key, "access", "closed")
            elif kind == "window" and m == "post":
                st.set_machine(key, "exposure", "closed")
            elif kind == "layer" and m == "phase_begin":
                st.set_machine(key, "phase", "closed")

    # -- statements ----------------------------------------------------
    def _exec_block(self, stmts: List[ast.stmt],
                    st: _State) -> Optional[_State]:
        for node in stmts:
            st = self._exec_stmt(node, st)
            if st is None:
                return None
        return st

    def _exec_stmt(self, node: ast.stmt,
                   st: _State) -> Optional[_State]:
        if isinstance(node, ast.Expr):
            self._eval(node.value, st)
            return st
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._exec_assign(node, st)
        if isinstance(node, ast.Return):
            tid = self._eval(node.value, st) if node.value else None
            if tid is not None:
                if st.tokens.get(tid) == "live":
                    self.summary.creates = self.tokens[tid].kind
                st.tokens[tid] = "escaped"
            elif node.value is not None:
                self._escape_names(node.value, st, "escaped")
            self.exits.append((node, st, "return"))
            return None
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self._eval(node.exc, st)
            self.exits.append((node, st, "raise"))
            return None
        if isinstance(node, ast.If):
            return self._exec_if(node, st)
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            return self._exec_loop(node, st)
        if isinstance(node, ast.Try):
            return self._exec_try(node, st)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._eval(item.context_expr, st)
            return self._exec_block(list(node.body), st)
        if isinstance(node, ast.Break):
            if self._loop_stack:
                self._loop_stack[-1].breaks.append(st.copy())
            return None
        if isinstance(node, ast.Continue):
            if self._loop_stack:
                self._loop_stack[-1].continues.append(st.copy())
            return None
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_closure(node, st)
            return st
        if isinstance(node, (ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, st)
            return st
        return st

    def _exec_assign(self, node, st: _State) -> _State:
        value = getattr(node, "value", None)
        tid = self._eval(value, st) if value is not None else None
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                # storing into an attribute/container escapes the value
                if tid is not None:
                    st.tokens[tid] = "escaped"
                elif value is not None:
                    self._escape_names(value, st, "escaped")
                self._eval(target.value, st)
                continue
            if isinstance(target, (ast.Tuple, ast.List)):
                for el in target.elts:
                    if isinstance(el, ast.Name):
                        st.vars.pop(el.id, None)
                        st.guards.pop(el.id, None)
                continue
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            st.vars.pop(name, None)
            st.guards.pop(name, None)
            if tid is not None:
                token = self.tokens[tid]
                if token.kind == "budget":
                    st.guards[name] = tid      # alloc returns a bool
                else:
                    st.vars[name] = tid
            if value is not None:
                self._infer_var(name, value)
        return st

    def _infer_var(self, name: str, value: ast.expr) -> None:
        """Track kinds/classes/roots for receiver gating."""
        call = value
        if isinstance(call, (ast.Await, ast.YieldFrom)):
            call = call.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
            cname = call.func.id
            if cname in self.program.classes:
                self.var_classes[name] = cname
                kind = self.program.classes[cname].kind
                if kind:
                    self.var_kinds[name] = kind
        if isinstance(value, (ast.Attribute, ast.Subscript)):
            key = _expr_key(value)
            if key:
                root = self._root_of(key)
                if root:
                    self.var_roots[name] = root
                kind = _hint_kind(key)
                if kind:
                    self.var_kinds[name] = kind

    def _exec_if(self, node: ast.If, st: _State) -> Optional[_State]:
        self._eval(node.test, st)
        st_then, st_else = st.copy(), st.copy()
        self._refine(node.test, st_then, st_else)
        out_then = self._exec_block(list(node.body), st_then)
        out_else = self._exec_block(list(node.orelse), st_else)
        return _join_states([out_then, out_else])

    def _refine(self, test: ast.expr, st_then: _State,
                st_else: _State) -> None:
        """Branch refinement: alloc guards and ``req.done`` checks."""
        neg = False
        while isinstance(test, ast.UnaryOp) and isinstance(
                test.op, ast.Not):
            neg = not neg
            test = test.operand
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            if not neg:
                for v in test.values:
                    self._refine(v, st_then, _State())
                return
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            if isinstance(test.comparators[0], ast.Constant) and \
                    test.comparators[0].value is None:
                if isinstance(test.ops[0], ast.Is):
                    neg = not neg       # `x is None` == falsy guard
                    test = test.left
                elif isinstance(test.ops[0], ast.IsNot):
                    test = test.left
        true_st, false_st = (st_else, st_then) if neg else (
            st_then, st_else)
        if isinstance(test, ast.Name) and test.id in st_then.guards:
            tid = st_then.guards[test.id]
            # alloc failed on the falsy branch: no budget to pair
            if false_st.tokens.get(tid) == "live":
                false_st.tokens[tid] = "void"
            return
        if (isinstance(test, ast.Attribute) and test.attr == "done"
                and isinstance(test.value, ast.Name)):
            tid = st_then.vars.get(test.value.id)
            if tid is not None and self.tokens[tid].kind == "request":
                # `req.done` observed true == completion consumed
                if true_st.tokens.get(tid) in ("live", "maybe"):
                    true_st.tokens[tid] = "tested"

    def _exec_loop(self, node, st: _State) -> Optional[_State]:
        if isinstance(node, ast.While):
            self._eval(node.test, st)
            infinite = (isinstance(node.test, ast.Constant)
                        and bool(node.test.value))
        else:
            self._eval(node.iter, st)
            infinite = False
            if isinstance(node.target, ast.Name):
                st.vars.pop(node.target.id, None)
                st.guards.pop(node.target.id, None)
        ctx = _LoopCtx()
        self._loop_stack.append(ctx)
        body_out = self._exec_block(list(node.body), st.copy())
        self._loop_stack.pop()
        if infinite:
            post = _join_states(ctx.breaks)
        else:
            post = _join_states(
                [st, body_out] + ctx.breaks + ctx.continues)
        if post is not None and node.orelse:
            post = self._exec_block(list(node.orelse), post)
        return post

    def _exec_try(self, node: ast.Try, st: _State) -> Optional[_State]:
        pre = st.copy()
        out_try = self._exec_block(list(node.body), st)
        outs = [out_try]
        for handler in node.handlers:
            outs.append(self._exec_block(list(handler.body), pre.copy()))
        if node.orelse and out_try is not None:
            outs[0] = self._exec_block(list(node.orelse), out_try)
        post = _join_states(outs)
        if node.finalbody:
            base = post if post is not None else pre.copy()
            fin = self._exec_block(list(node.finalbody), base)
            return fin if post is not None else None
        return post

    # -- expressions ---------------------------------------------------
    def _eval(self, node: Optional[ast.expr],
              st: _State) -> Optional[int]:
        """Evaluate for side effects; token id if the expression *is*
        a tracked object (a bound name or a creator call)."""
        if node is None:
            return None
        if isinstance(node, (ast.YieldFrom, ast.Await)):
            return self._eval(node.value, st)
        if isinstance(node, ast.Yield):
            tid = self._eval(node.value, st) if node.value else None
            if tid is not None:
                st.tokens[tid] = "escaped"
            return None
        if isinstance(node, ast.Name):
            return st.vars.get(node.id)
        if isinstance(node, ast.Call):
            return self._eval_call(node, st)
        if isinstance(node, ast.Lambda):
            self._scan_closure(node, st)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            # literal containers durably hold their elements
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    tid = self._eval(child, st)
                    if tid is not None:
                        st.tokens[tid] = "escaped"
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, st)
            elif isinstance(child, ast.comprehension):
                self._eval(child.iter, st)
                for cond in child.ifs:
                    self._eval(cond, st)
        return None

    def _escape_names(self, node: ast.expr, st: _State,
                      status: str) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                tid = st.vars.get(sub.id)
                if tid is not None and st.tokens.get(tid) not in _SAFE:
                    st.tokens[tid] = status

    def _scan_closure(self, node, st: _State) -> None:
        """Lambdas / nested defs: completion callbacks and captures."""
        body = node.body if isinstance(node.body, list) else [node.body]
        freed_pools: Set[str] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _POOL_RELEASES):
                    key = _expr_key(sub.func.value)
                    if key and self._kind_of(key) == "pool":
                        freed_pools.add(key)
                if isinstance(sub, ast.Name):
                    tid = st.vars.get(sub.id)
                    if tid is not None and \
                            st.tokens.get(tid) not in _SAFE:
                        st.tokens[tid] = "escaped"
        for key in freed_pools:
            for tid, token in self.tokens.items():
                if token.kind == "budget" and token.key == key and \
                        st.tokens.get(tid) == "live":
                    st.tokens[tid] = "handed"

    # -- calls ---------------------------------------------------------
    def _eval_call(self, node: ast.Call, st: _State) -> Optional[int]:
        func = node.func
        m: Optional[str] = None
        recv_key: Optional[str] = None
        if isinstance(func, ast.Attribute):
            m = func.attr
            recv_key = _expr_key(func.value)
            if recv_key is None:
                self._eval(func.value, st)
        # completion callbacks first, so hand-offs precede escapes
        arg_nodes = [a.value if isinstance(a, ast.Starred) else a
                     for a in node.args]
        arg_nodes += [kw.value for kw in node.keywords]
        for a in arg_nodes:
            if isinstance(a, (ast.Lambda, ast.FunctionDef)):
                self._scan_closure(a, st)
        arg_tokens: List[Tuple[int, ast.expr]] = []
        seen: Set[int] = set()
        for a in arg_nodes:
            if isinstance(a, ast.Lambda):
                continue
            tid = self._eval(a, st)
            refs = [tid] if tid is not None else []
            if not isinstance(a, ast.Name):
                for sub in ast.walk(a):
                    if isinstance(sub, ast.Name):
                        t2 = st.vars.get(sub.id)
                        if t2 is not None:
                            refs.append(t2)
            for t in refs:
                if t not in seen:
                    seen.add(t)
                    arg_tokens.append((t, a))

        kind = self._kind_of(recv_key) if recv_key else None
        consumed: Set[int] = set()
        created: Optional[int] = None

        req_args = [t for t, _ in arg_tokens
                    if self.tokens[t].kind == "request"]
        if isinstance(func, ast.Name) and func.id in _REQUEST_CLASSES:
            created = self._new_token("request", node, "", st)
        elif m in _CREATOR_METHODS and kind in ("ep", None):
            created = self._new_token("request", node, recv_key or "", st)
        elif m in ("wait", "test") and req_args:
            for tid in req_args:
                cur = st.tokens.get(tid)
                if m == "wait":
                    if cur == "waited":
                        self._flag(
                            "P202", node,
                            "request waited twice; the second wait "
                            "deadlocks or consumes another completion")
                    st.tokens[tid] = "waited"
                elif cur != "waited":
                    st.tokens[tid] = "tested"
                consumed.add(tid)
        elif m == "on_complete" and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and st.vars.get(func.value.id) is not None:
            # registering a completion callback hands the request to
            # the progress engine
            rtid = st.vars[func.value.id]
            if self.tokens[rtid].kind == "request":
                st.tokens[rtid] = "handed"
        elif kind == "pool" and m == "alloc":
            created = self._new_token("budget", node, recv_key, st)
        elif kind == "pool" and m == "make_packet":
            budget = None
            for tid in sorted(self.tokens, reverse=True):
                tok = self.tokens[tid]
                if tok.kind == "budget" and tok.key == recv_key and \
                        st.tokens.get(tid) == "live":
                    budget = tid
                    break
            created = self._new_token("packet", node, recv_key, st,
                                      budget=budget)
        elif kind == "pool" and m in _POOL_RELEASES:
            self._apply_pool_free(node, st, recv_key)
            consumed.update(t for t, _ in arg_tokens)
        elif kind == "pool" and m == "retire":
            for tid, _ in arg_tokens:
                if self.tokens[tid].kind == "packet":
                    st.tokens[tid] = "freed"
                    consumed.add(tid)
        elif kind == "window" and m in _WINDOW_OPS:
            self._apply_window_op(node, st, recv_key, m)
        elif kind == "layer" and m in _LAYER_OPS:
            self._apply_layer_op(node, st, recv_key, m)
        elif kind in ("cq", "layer") and m in _CQ_SHUT_OPS:
            st.set_machine(recv_key, "cq", "shut")
            self._shut_sites.setdefault(recv_key, node)
        elif kind == "cq" and m in _CQ_POLL_OPS:
            self._check_require(node, st, recv_key, "cq", "P208", m)

        if m in ("wait", "test") and kind in ("ep", None):
            for a in node.args:
                if isinstance(a, ast.Name) and a.id in self._param_set:
                    self._released_params.add(a.id)
                    break

        callee = self._resolve_callee(func, recv_key)
        if callee is not None:
            summ = self.program.summaries.get(self.program.key_of(callee))
            if summ is not None:
                made = self._apply_summary(
                    node, st, summ, callee, recv_key, arg_nodes,
                    consumed)
                if created is None:
                    created = made

        for tid, _arg in arg_tokens:
            if tid in consumed or tid == created:
                continue
            self._escape_token(tid, st, strong=(m in _STORE_METHODS))
        return created

    def _escape_token(self, tid: int, st: _State, strong: bool) -> None:
        tok = self.tokens[tid]
        cur = st.tokens.get(tid)
        if cur in ("handed", "escaped", "freed", "waited", "void"):
            return
        if tok.kind == "request":
            st.tokens[tid] = "escaped"
            return
        status = "escaped" if strong else "weak"
        st.tokens[tid] = status
        if tok.kind == "packet" and tok.budget is not None:
            bcur = st.tokens.get(tok.budget)
            if bcur in ("live", "maybe", "weak"):
                st.tokens[tok.budget] = status

    def _apply_pool_free(self, node: ast.Call, st: _State,
                         key: str) -> None:
        budgets = [(tid, st.tokens.get(tid))
                   for tid in sorted(self.tokens)
                   if self.tokens[tid].kind == "budget"
                   and self.tokens[tid].key == key
                   and tid in st.tokens]
        if not budgets:
            return                      # freeing a non-local budget
        for want in ("live", "maybe", "handed", "weak"):
            for tid, cur in reversed(budgets):
                if cur == want:
                    st.tokens[tid] = "freed"
                    return
        statuses = {cur for _, cur in budgets}
        if "escaped" in statuses:
            self._flag(
                "P207", node,
                "freeing a packet budget whose packet escaped into a "
                "container/attribute; the owner will free it again")
        elif "freed" in statuses:
            self._flag(
                "P207", node,
                "double free of a packet budget: every budget "
                "allocated on this path is already freed")

    def _check_require(self, node: ast.AST, st: _State, key: str,
                       proto: str, rule: str, opname: str) -> None:
        cur = st.get_machine(key, proto)
        if cur == _BAD_STATE[proto]:
            self._flag(rule, node, _REQUIRE_MSG[rule].format(
                op=opname, key=key))
        elif cur == "?":
            root = self._root_of(key)
            if root is not None:
                self.summary.requires.append(
                    (root[0], root[1], proto, rule, opname))

    def _apply_window_op(self, node: ast.Call, st: _State,
                         key: str, m: str) -> None:
        if m == "start":
            st.set_machine(key, "access", "open")
        elif m == "complete":
            st.set_machine(key, "access", "closed")
            self._completed.add(key)
        elif m == "put":
            self._check_require(node, st, key, "access", "P204", "put")
        elif m == "post":
            if st.get_machine(key, "exposure") == "open":
                self._flag(
                    "P205", node,
                    "nested post(): the exposure epoch is already open")
            st.set_machine(key, "exposure", "open")
            self._posted.setdefault(key, node)
        elif m == "wait":
            if st.get_machine(key, "exposure") == "closed":
                self._flag(
                    "P205", node,
                    "wait() without a matching post(): the exposure "
                    "epoch is closed on every path reaching here")
            st.set_machine(key, "exposure", "closed")
        elif m == "test_wait":
            if st.get_machine(key, "exposure") == "closed":
                self._flag(
                    "P205", node,
                    "test_wait() without a matching post(): the "
                    "exposure epoch is closed here")
        elif m == "finish_exposure":
            if st.get_machine(key, "exposure") == "closed":
                self._flag(
                    "P205", node,
                    "finish_exposure() on an exposure epoch that is "
                    "already closed")
            st.set_machine(key, "exposure", "closed")

    def _apply_layer_op(self, node: ast.Call, st: _State,
                        key: str, m: str) -> None:
        if m == "phase_begin":
            st.set_machine(key, "phase", "open")
            st.unflushed[key] = 0
        elif m == "send":
            cur = st.get_machine(key, "phase")
            if cur == "open":
                st.unflushed[key] = st.unflushed.get(key, 0) + 1
            else:
                self._check_require(node, st, key, "phase", "P209",
                                    "send")
        elif m in ("collect", "collect_some"):
            self._check_require(node, st, key, "phase", "P210", m)
        elif m == "flush":
            st.unflushed[key] = 0
        elif m == "phase_end":
            if st.get_machine(key, "phase") == "open" and \
                    st.unflushed.get(key, 0) > 0:
                self._flag(
                    "P211", node,
                    f"phase_end() with {st.unflushed[key]} send(s) "
                    "not flushed; remote completion is not guaranteed "
                    "without flush()")
            st.set_machine(key, "phase", "closed")
            st.unflushed[key] = 0
        elif m == "shutdown":
            st.set_machine(key, "cq", "shut")
            self._shut_sites.setdefault(key, node)

    # -- interprocedural -----------------------------------------------
    def _resolve_callee(self, func: ast.expr,
                        recv_key: Optional[str]) -> Optional[_FuncInfo]:
        if isinstance(func, ast.Name):
            if func.id in self.program.classes:
                return None             # constructor, not a call target
            return self.program.resolve_unique(func.id,
                                              module=self.fn.path)
        if not isinstance(func, ast.Attribute):
            return None
        m = func.attr
        if recv_key == "self":
            return self.program.resolve_method(self.fn.cls, m)
        head = (recv_key or "").split(".")[0].replace("[]", "")
        if head in self.var_classes:
            found = self.program.resolve_method(self.var_classes[head], m)
            if found is not None:
                return found
        cands = self.program.by_name.get(m, [])
        return cands[0] if len(cands) == 1 else None

    def _apply_summary(self, node: ast.Call, st: _State,
                       summ: _Summary, callee: _FuncInfo,
                       recv_key: Optional[str],
                       arg_nodes: List[ast.expr],
                       consumed: Set[int]) -> Optional[int]:
        bound = isinstance(node.func, ast.Attribute)
        params = callee.params
        arg_by_param: Dict[str, ast.expr] = {}
        pos_args = [a.value if isinstance(a, ast.Starred) else a
                    for a in node.args]
        if not bound and callee.cls is not None and pos_args:
            pos_args = pos_args[1:]     # unbound Class.method(obj, ...)
        for pname, a in zip(params, pos_args):
            arg_by_param[pname] = a
        for kw in node.keywords:
            if kw.arg:
                arg_by_param[kw.arg] = kw.value
        for pname in summ.releases:
            a = arg_by_param.get(pname)
            if a is None:
                continue
            if isinstance(a, ast.Name):
                tid = st.vars.get(a.id)
                if tid is not None and \
                        self.tokens[tid].kind == "request":
                    if st.tokens.get(tid) != "waited":
                        st.tokens[tid] = "tested"
                    consumed.add(tid)
                elif a.id in self._param_set:
                    self._released_params.add(a.id)
        for root, sub, proto, state in summ.effects:
            base = recv_key if root == "self" else (
                _expr_key(arg_by_param[root])
                if root in arg_by_param else None)
            if base is None:
                continue
            st.set_machine(base + sub, proto, state)
            if state == "shut":
                self._shut_sites.setdefault(base + sub, node)
        for root, sub, proto, rule, opname in summ.requires:
            base = recv_key if root == "self" else (
                _expr_key(arg_by_param[root])
                if root in arg_by_param else None)
            if base is None:
                continue
            self._check_require(node, st, base + sub, proto, rule,
                                opname)
        if summ.creates is not None:
            return self._new_token(summ.creates, node, recv_key or "",
                                   st)
        return None

    # -- end-of-function checks + summary ------------------------------
    def _finalize(self) -> None:
        normal = [(n, s) for n, s, k in self.exits
                  if k in ("return", "end")]
        for tid in sorted(self.tokens):
            tok = self.tokens[tid]
            stats = [(n, s.tokens[tid]) for n, s in normal
                     if tid in s.tokens]
            if not stats:
                continue
            vals = [v for _, v in stats]
            if tok.kind == "request":
                if all(v == "live" for v in vals):
                    self._flag(
                        "P201", tok.node,
                        "nonblocking request is never waited, tested, "
                        "or handed off; its completion is lost")
                elif any(v in ("live", "maybe") for v in vals):
                    bad = next(n for n, v in stats
                               if v in ("live", "maybe"))
                    self._flag(
                        "P203", bad,
                        "a return path leaks a live request that other "
                        "paths wait for; wait or store it before "
                        "returning")
            elif tok.kind == "budget":
                if any(v == "live" for v in vals):
                    self._flag(
                        "P206", tok.node,
                        "packet budget allocated here is never freed "
                        "or handed off; the pool leaks one credit")
                elif any(v == "maybe" for v in vals):
                    self._flag(
                        "P206", tok.node,
                        "packet budget allocated here is not freed on "
                        "every path")
        joined = _join_states([s for _, s in normal])
        if joined is not None:
            for key, pnode in self._posted.items():
                if key in self._completed and \
                        joined.get_machine(key, "exposure") == "open":
                    self._flag(
                        "P205", pnode,
                        "post() opens an exposure epoch that no path "
                        "closes, although the access epoch completes; "
                        "add wait()/finish_exposure()")
        for key, _snode in self._shut_sites.items():
            shut = [n for n, s in normal
                    if s.get_machine(key, "cq") == "shut"]
            unshut = [n for n, s in normal
                      if key in s.machines
                      and s.get_machine(key, "cq") != "shut"]
            if shut and unshut:
                self._flag(
                    "P211", unshut[0],
                    f"this teardown path exits without shutting down "
                    f"'{key}' while a sibling path calls shutdown()")
        # summary construction
        self.summary.releases = set(self._released_params)
        if joined is not None:
            entry = getattr(self, "_entry_machines", {})
            for key, protos in joined.machines.items():
                root = self._root_of(key)
                if root is None:
                    continue
                for proto, state in protos.items():
                    if state == "?":
                        continue
                    if entry.get(key, {}).get(proto, "?") != state:
                        self.summary.effects.append(
                            (root[0], root[1], proto, state))


_REQUIRE_MSG = {
    "P204": "put() on '{key}' outside its start/complete access epoch",
    "P208": "{op}() on '{key}' after it was shut down",
    "P209": "send() on '{key}' outside a phase_begin/phase_end window",
    "P210": "{op}() on '{key}' for a phase that is not open here",
}


# ----------------------------------------------------------------------
# P212: stale writes across yields in concurrent process generators
# ----------------------------------------------------------------------
def _walk_local(node):
    """AST walk that does not descend into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(n))


def _race_pass(path: str, tree: ast.Module) -> List[ProtoFinding]:
    findings: List[ProtoFinding] = []
    spawned: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            a0 = node.args[0]
            if isinstance(a0, ast.Call):
                if isinstance(a0.func, ast.Attribute):
                    spawned.add(a0.func.attr)
                elif isinstance(a0.func, ast.Name):
                    spawned.add(a0.func.id)
    for cls in [n for n in ast.walk(tree)
                if isinstance(n, ast.ClassDef)]:
        methods = {m.name: m for m in cls.body
                   if isinstance(m, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))}
        gens = {name for name, fn in methods.items()
                if any(isinstance(x, (ast.Yield, ast.YieldFrom))
                       for x in _walk_local(fn))}
        proc = {name for name in gens if name in spawned}
        for _ in range(3):              # reachable via self-calls
            for name in sorted(proc):
                for x in _walk_local(methods[name]):
                    if (isinstance(x, ast.Call)
                            and isinstance(x.func, ast.Attribute)
                            and isinstance(x.func.value, ast.Name)
                            and x.func.value.id == "self"
                            and x.func.attr in gens):
                        proc.add(x.func.attr)
        writers: Dict[str, Set[str]] = {}
        for name in proc:
            for x in _walk_local(methods[name]):
                if isinstance(x, (ast.Assign, ast.AugAssign,
                                  ast.AnnAssign)):
                    targets = (x.targets if isinstance(x, ast.Assign)
                               else [x.target])
                    for t in targets:
                        if (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"):
                            writers.setdefault(t.attr, set()).add(name)
        for name in sorted(proc):
            fn = methods[name]
            yields = sorted(x.lineno for x in _walk_local(fn)
                            if isinstance(x, (ast.Yield,
                                              ast.YieldFrom)))
            for x in _walk_local(fn):
                if not isinstance(x, ast.Assign):
                    continue
                for t in x.targets:
                    if not (isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"):
                        continue
                    others = writers.get(t.attr, set()) - {name}
                    if not others:
                        continue
                    reads = [r.lineno for r in _walk_local(fn)
                             if isinstance(r, ast.Attribute)
                             and r.attr == t.attr
                             and isinstance(r.value, ast.Name)
                             and r.value.id == "self"
                             and isinstance(r.ctx, ast.Load)
                             and r.lineno <= x.lineno]
                    if not reads:
                        continue
                    last_read = max(reads)
                    if any(last_read < y < x.lineno for y in yields):
                        other = ", ".join(sorted(others))
                        findings.append(ProtoFinding(
                            "P212", path, t.lineno, t.col_offset,
                            f"self.{t.attr} is written from a value "
                            f"read before a yield, but '{other}' also "
                            "writes it from a concurrent process "
                            "generator; re-read it after the yield or "
                            "update it atomically",
                            f"{cls.name}.{name}"))
    return findings


# ----------------------------------------------------------------------
# Suppressions and drivers
# ----------------------------------------------------------------------
def _suppressions(source: str) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        spec = m.group(1)
        if spec.lower() == "all":
            out[lineno] = {"all"}
        else:
            out[lineno] = {r.strip().upper() for r in spec.split(",")}
    return out


def analyze_modules(
        modules: Sequence[Tuple[str, str]]) -> AnalysisResult:
    """Whole-program analysis over (path, source) pairs."""
    program = _Program(modules)
    findings = program.run()
    supp = {path: _suppressions(source)
            for path, source, _tree in program.modules}
    kept: List[ProtoFinding] = []
    suppressed = 0
    for f in findings:
        rules = supp.get(f.path, {}).get(f.line, ())
        if "all" in rules or f.rule in rules:
            suppressed += 1
        else:
            kept.append(f)
    return AnalysisResult(kept, len(program.modules), suppressed)


def analyze_source(source: str,
                   path: str = "<memory>") -> List[ProtoFinding]:
    return analyze_modules([(path, source)]).findings


def analyze_paths(paths: Sequence) -> AnalysisResult:
    files = list(_iter_python_files(paths))
    return analyze_modules([(str(p), Path(p).read_text())
                            for p in files])


def analyze_repo() -> AnalysisResult:
    return analyze_paths([repo_package_root()])


def report_dict(result: AnalysisResult) -> Dict:
    from repro.sanitize.report import make_report

    return make_report("repro-analyze", RULES, result.findings,
                       files_checked=result.files_checked,
                       suppressed=result.suppressed)


def format_findings(result: AnalysisResult) -> str:
    lines = [str(f) for f in result.findings]
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s), {result.suppressed} suppressed")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline: accepted findings keyed by (rule, path, symbol)
# ----------------------------------------------------------------------
def normalize_path(path: str) -> str:
    """Package-relative path (stable across checkouts/venvs)."""
    parts = Path(path).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rest = parts[idx + 1:]
        if rest:
            return "/".join(rest)
    return "/".join(parts)


def _baseline_key(entry: Dict) -> Tuple[str, str, str]:
    return (entry["rule"], entry["path"], entry.get("symbol", ""))


def _finding_key(f: ProtoFinding) -> Tuple[str, str, str]:
    return (f.rule, normalize_path(f.path), f.symbol)


def load_baseline(path) -> List[Dict]:
    with open(path) as fh:
        doc = json.load(fh)
    return list(doc.get("accepted", []))


def save_baseline(findings: Sequence[ProtoFinding], path,
                  justification: str = "TODO: justify") -> str:
    entries: Dict[Tuple[str, str, str], Dict] = {}
    for f in findings:
        key = _finding_key(f)
        entries.setdefault(key, {
            "rule": f.rule,
            "path": normalize_path(f.path),
            "symbol": f.symbol,
            "message": f.message,
            "justification": justification,
        })
    doc = {
        "tool": "repro-analyze",
        "accepted": [entries[k] for k in sorted(entries)],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return str(path)


def diff_baseline(
        findings: Sequence[ProtoFinding],
        accepted: Sequence[Dict],
) -> Tuple[List[ProtoFinding], List[Dict]]:
    """(new findings not in the baseline, stale baseline entries)."""
    accepted_keys = {_baseline_key(e) for e in accepted}
    found_keys = {_finding_key(f) for f in findings}
    new = [f for f in findings if _finding_key(f) not in accepted_keys]
    stale = [e for e in accepted if _baseline_key(e) not in found_keys]
    return new, stale
