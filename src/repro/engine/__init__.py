"""BSP vertex-program engines (Section II).

:class:`~repro.engine.bsp.BspEngine` executes a vertex program over a
partitioned graph on the simulated cluster: rounds of local compute
followed by a communication phase composed of *reduce* (mirrors ->
master) and *broadcast* (master -> mirrors) patterns, driven through any
of the three communication layers.

:func:`~repro.engine.abelian.abelian_engine` configures it as Abelian
(vertex-cut partitioning, partition-aware sync, dedicated comm thread);
:func:`~repro.engine.gemini.gemini_engine` as Gemini (blocked edge-cut,
compute threads calling the communication library directly).
"""

from repro.engine.vertex_program import ComputeResult, VertexProgram
from repro.engine.metrics import RunMetrics
from repro.engine.bsp import BspEngine, EngineConfig
from repro.engine.abelian import abelian_engine
from repro.engine.gemini import gemini_engine

__all__ = [
    "ComputeResult",
    "VertexProgram",
    "RunMetrics",
    "BspEngine",
    "EngineConfig",
    "abelian_engine",
    "gemini_engine",
]
