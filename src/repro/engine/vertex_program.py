"""The vertex-program abstraction the engines execute.

A vertex program supplies per-host NumPy state and five hooks the BSP
engine calls each round.  Labels live per *proxy* (local id); the engine
owns dirty-tracking, message construction, and sync-pattern selection, so
programs only describe local semantics:

* ``compute``     — apply the operator along local edges from active
  sources; return which local nodes were written plus work counts.
* ``reduce_values`` / ``apply_reduce`` — what a mirror ships to its
  master and how the master combines it (min or add).
* ``post_reduce`` — master-side per-round step after all reduces landed
  (PageRank's damping update; identity for the min programs).
* ``bcast_values`` / ``apply_bcast`` — what a master ships to mirrors and
  how the mirror installs it.

All state arrays are float64/int64 and the wire field is 8 bytes, like
the single-label graph applications in the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.partition.proxies import LocalGraph

__all__ = ["ComputeResult", "VertexProgram", "min_relax", "min_relax_multi"]


@dataclass
class ComputeResult:
    """What one local compute phase did."""

    #: Local ids written (label possibly changed) by this phase.
    updated: np.ndarray
    #: Edges relaxed (drives the compute-time model).
    work_edges: int
    #: Active nodes visited.
    work_nodes: int


class VertexProgram:
    """Base class; subclasses are the paper's four applications."""

    #: Program name, e.g. "bfs".
    name: str = "abstract"
    #: Wire bytes per communicated label.
    field_bytes: int = 8
    #: "min" or "add" — the reduce combining operator.
    reduce_op: str = "min"
    #: Whether edges must carry weights (sssp).
    needs_weights: bool = False
    #: Whether the input must be symmetrized before partitioning (cc).
    needs_symmetric: bool = False
    #: Hard round cap (None = run to quiescence).
    max_rounds: Optional[int] = None
    #: True when the value written by compute/apply_reduce *is* the value
    #: broadcast (the min programs' label).  False for PageRank, where
    #: compute writes partial sums and only post_reduce changes the
    #: broadcast field (contrib).  Drives the engine's dirty tracking.
    label_is_broadcast_field: bool = True
    #: True when incoming sync blobs must be *applied* in a canonical
    #: order (sorted by source host) instead of arrival order.  Needed by
    #: floating-point add-reduce programs whose results must be
    #: bit-reproducible across schedules (the serve layer's batched
    #: personalized PageRank): float addition is not associative, so the
    #: apply order changes the result bits.  The engine still *charges*
    #: scatter costs at arrival time — this reorders values only, never
    #: simulated time.
    ordered_scatter: bool = False

    # ------------------------------------------------------------------
    def init_state(self, lg: LocalGraph, graph: CsrGraph) -> Dict[str, np.ndarray]:
        """Per-host state arrays over local ids (masters then mirrors)."""
        raise NotImplementedError

    def initial_active(self, lg: LocalGraph, state) -> np.ndarray:
        """Boolean mask over local ids: active in round 0."""
        raise NotImplementedError

    def compute(self, lg: LocalGraph, state, active: np.ndarray) -> ComputeResult:
        raise NotImplementedError

    # -- reduce pattern --------------------------------------------------
    def reduce_values(self, state, ids: np.ndarray) -> np.ndarray:
        """Values mirrors ship to masters for local ids ``ids``."""
        raise NotImplementedError

    def apply_reduce(self, state, ids: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Combine mirror values into masters; returns changed mask."""
        raise NotImplementedError

    def reset_after_reduce_send(self, state, ids: np.ndarray) -> None:
        """Clear shipped accumulators on the mirror side (add-style)."""

    def post_reduce(self, lg: LocalGraph, state) -> np.ndarray:
        """Master-side round step; returns local ids of changed masters
        *beyond* those already reported by apply_reduce (default none)."""
        return np.empty(0, dtype=np.int64)

    # -- broadcast pattern ------------------------------------------------
    def bcast_values(self, state, ids: np.ndarray) -> np.ndarray:
        """Values masters ship to mirrors."""
        raise NotImplementedError

    def apply_bcast(self, state, ids: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Install master values at mirrors; returns changed mask."""
        raise NotImplementedError

    # -- activeness / termination ------------------------------------------
    def next_active(self, lg: LocalGraph, state) -> np.ndarray:
        """Active mask for the next round (engine calls after sync)."""
        raise NotImplementedError

    def local_quiescent_metric(self, lg: LocalGraph, state, active) -> float:
        """Summed across hosts; 0 means the program terminates."""
        return float(np.count_nonzero(active))

    # ------------------------------------------------------------------
    def extract_masters(self, lg: LocalGraph, state) -> np.ndarray:
        """The canonical per-master result used for verification."""
        raise NotImplementedError

    def reference(self, graph: CsrGraph, **kwargs) -> np.ndarray:
        """Single-machine reference solution over the global graph."""
        raise NotImplementedError


def min_relax(
    lg: LocalGraph,
    label: np.ndarray,
    active: np.ndarray,
    cand_fn,
) -> ComputeResult:
    """Shared kernel for the label-minimizing programs (bfs/sssp/cc).

    Relaxes every out-edge of every active local source: candidate values
    from ``cand_fn(src_ids, edge_slice)`` are scatter-min'd into the
    targets.  Vectorized: the per-edge selection uses ``np.repeat`` over
    the CSR degree array — no Python loop over nodes or edges.
    """
    active_ids = np.where(active)[0]
    if len(active_ids) == 0:
        return ComputeResult(np.empty(0, dtype=np.int64), 0, 0)
    degs = np.diff(lg.indptr)
    edge_sel = np.repeat(active, degs)
    dst = lg.indices[edge_sel]
    if len(dst) == 0:
        return ComputeResult(
            np.empty(0, dtype=np.int64), 0, len(active_ids)
        )
    src = lg.edge_sources()[edge_sel]
    cand = cand_fn(src, edge_sel)
    before = label[dst]
    np.minimum.at(label, dst, cand)
    changed = dst[label[dst] < before]
    return ComputeResult(
        np.unique(changed), int(len(dst)), int(len(active_ids))
    )


def min_relax_multi(
    lg: LocalGraph,
    label: np.ndarray,
    active: np.ndarray,
    cand_fn,
) -> ComputeResult:
    """Multi-source variant of :func:`min_relax` over a label *matrix*.

    ``label`` has shape ``(num_local, K)`` — one column per concurrently
    running query — and ``active`` is the **merged frontier**: the union
    of the per-column frontiers.  Every out-edge of every active source
    is relaxed for all K columns at once (``cand_fn`` returns an
    ``(E, K)`` candidate matrix), so a batch shares one edge traversal,
    one round structure, and one set of sync messages.

    Per-column results are exactly what K separate :func:`min_relax`
    executions converge to: relaxing an edge for a column whose source
    label is the INF sentinel proposes ``INF + delta``, which never
    beats a real label, and min is idempotent — the fixed point of each
    column is untouched by the other columns' frontiers.
    """
    active_ids = np.where(active)[0]
    K = label.shape[1]
    if len(active_ids) == 0:
        return ComputeResult(np.empty(0, dtype=np.int64), 0, 0)
    degs = np.diff(lg.indptr)
    edge_sel = np.repeat(active, degs)
    dst = lg.indices[edge_sel]
    if len(dst) == 0:
        return ComputeResult(
            np.empty(0, dtype=np.int64), 0, len(active_ids)
        )
    src = lg.edge_sources()[edge_sel]
    cand = cand_fn(src, edge_sel)
    before = label[dst]
    np.minimum.at(label, dst, cand)
    changed = dst[np.any(label[dst] < before, axis=1)]
    return ComputeResult(
        np.unique(changed), int(len(dst)) * K, int(len(active_ids))
    )
