"""The BSP vertex-program engine over the simulated cluster.

One simulated process per host executes rounds of:

1. **compute** — the program's operator over local edges from active
   sources (real NumPy updates; time charged from the machine model's
   per-node/per-edge costs, divided across the host's compute threads —
   one core is reserved for the dedicated communication thread, as in
   Fig. 2);
2. **reduce sync** — gather updated mirror values per master host
   (pack cost charged, parallelized), send through the communication
   layer, scatter arriving buffers *as they arrive*;
3. **post-reduce** — master-side round step (PageRank's damping update);
4. **broadcast sync** — same shape, masters to mirrors (skipped entirely
   when the partition makes it unnecessary — Abelian's partition-aware
   optimization, automatic for Gemini's edge-cut);
5. **termination** — an allreduce of the program's quiescence metric,
   identical cost across layers.

The engine measures per-round compute and non-overlapped communication
time per host, layer buffer footprints, and total execution time with
setup (e.g. RMA window creation) excluded — matching how the paper
reports its numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional

import numpy as np

from repro.comm.collective import AllReducer, SimBarrier
from repro.comm.layer_base import CommLayer, make_layers
from repro.comm.serialization import pack_cost, pack_updates, unpack_cost
from repro.engine.metrics import RunMetrics
from repro.engine.vertex_program import VertexProgram
from repro.graph.csr import CsrGraph
from repro.graph.partition import make_partition
from repro.graph.partition.proxies import Partition
from repro.netapi.nic import Fabric
from repro.obs.profile import LEAF_SAMPLE_MASK, LEAF_SAMPLE_STRIDE
from repro.sanitize.runtime import SanitizerContext, resolve_mode
from repro.sim.engine import Environment
from repro.sim.machine import MachineModel, stampede2

__all__ = ["EngineConfig", "BspEngine", "symmetrize"]


def symmetrize(graph: CsrGraph) -> CsrGraph:
    """Add reverse edges (used for cc, which is undirected semantics)."""
    src, dst = graph.edges()
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    edge_data = None
    if graph.edge_data is not None:
        edge_data = np.concatenate([graph.edge_data, graph.edge_data])
    return CsrGraph.from_edges(
        all_src, all_dst, graph.num_nodes, edge_data=edge_data, dedup=True,
        name=graph.name + ".sym",
    )


@dataclass
class EngineConfig:
    """How to run: cluster size, machine, partitioning, comm layer."""

    num_hosts: int = 4
    machine: MachineModel = dc_field(default_factory=stampede2)
    #: "cvc" (Abelian) or "edge-cut" (Gemini).
    policy: str = "cvc"
    #: "lci", "mpi-probe", or "mpi-rma".
    layer: str = "lci"
    #: Extra kwargs for the layer factory (mpi_config=, lci_config=,
    #: inline_sends=, buffered=, ...).
    layer_kwargs: Dict = dc_field(default_factory=dict)
    #: Engine-level round cap (safety; programs may stop earlier).
    max_rounds: int = 10_000
    #: Event-count safety valve for the simulation run.
    max_events: Optional[int] = 200_000_000
    #: Multiplier on compute-phase cost.  The paper's inputs carry
    #: ~10^4x more edges per host than the harness's reduced-scale
    #: graphs; the Fig. 6 breakdown uses this to restore a realistic
    #: compute/communication ratio.  Communication is unaffected, so
    #: layer comparisons never depend on it.
    work_scale: float = 1.0
    #: Optional :class:`repro.sim.trace.Tracer`; when set, the engine
    #: emits per-round compute/gather/scatter/sync spans for timeline
    #: visualization (chrome://tracing).
    tracer: Optional[object] = None
    #: Optional fault injection: a :class:`repro.faults.FaultPlan`, the
    #: name of one (``repro.faults.NAMED_PLANS``), or ``None`` for a
    #: fault-free run (the default; no hooks are installed).
    fault_plan: Optional[object] = None
    #: Protocol sanitizers: ``"warn"`` (accumulate, surface in metrics),
    #: ``"raise"`` (structured SanitizerError at the violation point),
    #: ``"off"`` (force-disable), or ``None`` to consult the
    #: ``REPRO_SANITIZE`` environment variable — the only place the
    #: environment is read, at engine construction, so the simulation
    #: modules themselves stay environment-independent (lint rule D104).
    sanitize: Optional[str] = None
    #: Optional :class:`repro.obs.ObsContext` for message-lifecycle
    #: tracing and queue probes.  Installed on the fabric before the
    #: layers are built (like sanitizers/faults) so every component can
    #: self-discover it.  Pure observation: a run with obs enabled is
    #: bit-identical to one without.
    obs: Optional[object] = None
    #: Optional :class:`repro.obs.profile.ProfileContext` for host-side
    #: wall-clock region profiling and deterministic work counters.
    #: Installed before the layers are built (like obs) so endpoints,
    #: queues, and pools self-discover it.  Same contract: a profiled
    #: run is bit-identical to a plain one.
    profile: Optional[object] = None
    #: Optional :class:`repro.obs.commstats.CommStatsContext` for
    #: per-(src, dst, kind/phase) traffic matrices and size histograms.
    #: Installed before the layers are built (like obs) so every comm
    #: layer self-discovers it.  Same contract: a run with commstats
    #: enabled is bit-identical to one without.
    commstats: Optional[object] = None


class BspEngine:
    """Runs one vertex program on one partitioned graph.

    ``partition`` lets a long-lived caller (the serve layer) keep one
    partitioned graph *resident* and amortize the partitioning cost over
    many executions: when given, ``graph`` must already be in the form
    the program needs (symmetrized for ``needs_symmetric`` apps) and
    must be the graph the partition was built from — the engine skips
    both the symmetrize step and :func:`make_partition`.
    """

    def __init__(self, graph: CsrGraph, app: VertexProgram,
                 config: EngineConfig, partition: Optional[Partition] = None):
        self.app = app
        self.config = config
        if partition is None and app.needs_symmetric:
            graph = symmetrize(graph)
        if app.needs_weights and graph.edge_data is None:
            raise ValueError(
                f"{app.name} needs edge weights; generate the graph with "
                "weights=True"
            )
        self.graph = graph
        if partition is not None:
            if partition.num_hosts != config.num_hosts:
                raise ValueError(
                    f"resident partition spans {partition.num_hosts} hosts "
                    f"but the engine is configured for {config.num_hosts}"
                )
            self.partition: Partition = partition
        else:
            self.partition = make_partition(
                graph, config.num_hosts, config.policy
            )
        self.env = Environment()
        self.fabric = Fabric(self.env, config.num_hosts, config.machine)
        # Sanitizers ride on the fabric (like the fault injector) so the
        # protocol components can self-discover them; they must be
        # installed before the layers are built.
        self.sanitizer_ctx = None
        _san_mode = resolve_mode(config.sanitize)
        if _san_mode is not None:
            self.sanitizer_ctx = SanitizerContext(
                _san_mode, env=self.env, tracer=config.tracer
            )
            self.fabric.sanitizer = self.sanitizer_ctx
        # The injector must be installed before the layers are built so
        # LCI can arm its ack/retransmit recovery protocol.
        self.injector = None
        if config.fault_plan is not None:
            from repro.faults import FaultInjector, get_plan

            plan = get_plan(config.fault_plan)
            if not plan.empty:
                self.injector = FaultInjector(
                    self.env, plan, tracer=config.tracer
                ).install(self.fabric)
        # Observability rides the fabric too; must also precede the
        # layers so endpoints register their queue probes at build time.
        self.obs = config.obs
        if self.obs is not None:
            self.obs.install(self.env, self.fabric)
        # The comm-pattern observatory rides the fabric the same way and
        # must precede the layers (they discover it at construction for
        # the blob-level tap in CommLayer.trace_send).
        self.commstats = config.commstats
        if self.commstats is not None:
            self.commstats.install(self.env, self.fabric,
                                   layer=config.layer)
        # Host-side profiling rides the fabric/environment the same way
        # (and must precede the layers so matching queues and packet
        # pools pick up their counter hooks at construction).
        self.profiler = config.profile
        # Engine work totals are plain instance ints bumped on the hot
        # path and folded into the counter registry by a deferred source
        # at snapshot time — the same never-touch-the-registry-per-op
        # pattern the NIC and matching queues use.
        self._t_host_rounds = 0
        self._t_blobs = 0
        self._t_blob_bytes = 0
        self._t_updates = 0
        self._t_scattered = 0
        # [cum_seconds, calls] cells for the per-blob/per-round leaf
        # regions, folded into the region tree by a deferred leaf
        # source.  The per-blob cells (pack/apply) sample the clock
        # every LEAF_SAMPLE_STRIDE'th call; per-phase cells are fully
        # timed.
        self._r_compute = [0.0, 0]
        self._r_gather = [0.0, 0]
        self._r_pack = [0.0, 0]
        self._r_scatter = [0.0, 0]
        self._r_apply = [0.0, 0]
        if self.profiler is not None:
            self.profiler.install(self.env, self.fabric)
            self.profiler.add_source(self._profile_counts)
            self.profiler.add_leaf_source(self._profile_regions)
        self.layers: List[CommLayer] = make_layers(
            config.layer, self.env, self.fabric, config.machine,
            **config.layer_kwargs,
        )
        self.barrier = SimBarrier(self.env, config.num_hosts, config.machine)
        self.allreducer = AllReducer(self.env, config.num_hosts, config.machine)
        self.states: List[Dict[str, np.ndarray]] = [None] * config.num_hosts
        self._compute_rounds: List[List[float]] = [
            [] for _ in range(config.num_hosts)
        ]
        self._comm_rounds: List[List[float]] = [
            [] for _ in range(config.num_hosts)
        ]
        self._rounds_done = [0] * config.num_hosts
        self._start_times = [0.0] * config.num_hosts
        self._end_times = [0.0] * config.num_hosts
        self._payload_bytes = [0] * config.num_hosts
        self._updates_shipped = [0] * config.num_hosts
        # Cache per-host pair lists once (they are static).
        p = self.partition
        self._reduce_out = [p.reduce_out(h) for h in range(config.num_hosts)]
        self._reduce_in = [p.reduce_in(h) for h in range(config.num_hosts)]
        self._bcast_out = [p.bcast_out(h) for h in range(config.num_hosts)]
        self._bcast_in = [p.bcast_in(h) for h in range(config.num_hosts)]
        self._has_reduce = bool(p.reduce_pairs)
        self._has_bcast = bool(p.bcast_pairs)
        # Per-(host, pattern) sync-phase geometry (peer lists, id arrays),
        # computed lazily on the first round and reused every round after.
        self._sync_cache = {}
        self.tracer = config.tracer
        if self.tracer is not None and self.tracer.env is None:
            self.tracer.env = self.env

    def _profile_counts(self):
        """Deferred profiler source: engine-level work totals.

        Reported as running totals so repeated flushes are idempotent;
        values are identical to what per-phase registry increments would
        have produced, without the hot-path dict/format traffic.
        """
        lname = self.config.layer
        return (
            ("engine.host_rounds", self._t_host_rounds),
            (f"comm.{lname}.blobs", self._t_blobs),
            (f"comm.{lname}.bytes", self._t_blob_bytes),
            ("engine.updates_shipped", self._t_updates),
            ("engine.blobs_scattered", self._t_scattered),
        )

    def _profile_regions(self):
        """Deferred leaf-region source: per-blob/per-round timing cells.

        All of these regions run synchronously inside the event loop
        (no yields between their clock reads), so their nesting is known
        statically and the whole subtree can be folded in at snapshot
        time instead of paying enter/exit stack traffic per phase.
        """
        return (
            ("sim.engine.run", "engine.bsp.compute",
             self._r_compute[0], self._r_compute[1]),
            ("sim.engine.run", "engine.bsp.gather",
             self._r_gather[0], self._r_gather[1]),
            ("sim.engine.run;engine.bsp.gather", "comm.serialization.pack",
             self._r_pack[0] * LEAF_SAMPLE_STRIDE, self._r_pack[1]),
            ("sim.engine.run", "engine.bsp.scatter",
             self._r_scatter[0], self._r_scatter[1]),
            ("sim.engine.run;engine.bsp.scatter", "engine.bsp.apply",
             self._r_apply[0] * LEAF_SAMPLE_STRIDE, self._r_apply[1]),
        )

    # ------------------------------------------------------------------
    @property
    def compute_threads(self) -> int:
        """Compute threads per host: one core feeds the comm machinery."""
        return max(1, self.config.machine.cpu.cores - 1)

    def run(self) -> RunMetrics:
        procs = [
            self.env.process(self._host_proc(h), name=f"host-{h}")
            for h in range(self.config.num_hosts)
        ]
        self.env.run(max_events=self.config.max_events)
        for p in procs:
            if not p.triggered:
                if self.injector is not None:
                    from repro.faults import LostCompletionError

                    raise LostCompletionError(
                        f"{p.name} never finished under fault plan "
                        f"{self.injector.plan.name or 'custom'!r}: a lost "
                        f"completion hung the "
                        f"{self.config.layer} layer "
                        f"(faults injected: {self.injector.counts()})"
                    )
                raise RuntimeError(f"{p.name} never finished (deadlock?)")
            if not p.ok:
                raise p._value
        return self._metrics()

    # ------------------------------------------------------------------
    def _host_proc(self, h: int):
        env = self.env
        app = self.app
        cpu = self.config.machine.cpu
        lg = self.partition.local(h)
        layer = self.layers[h]
        threads = self.compute_threads

        state = app.init_state(lg, self.graph)
        self.states[h] = state
        patterns = []
        if self._has_reduce:
            patterns.append("reduce")
        if self._has_bcast:
            patterns.append("bcast")
        yield from layer.setup(
            reduce_pairs=self.partition.reduce_pairs,
            bcast_pairs=self.partition.bcast_pairs,
            field_bytes=app.field_bytes,
            patterns=tuple(patterns),
        )
        yield from self.barrier.arrive()
        self._start_times[h] = env.now

        active = app.initial_active(lg, state)
        dirty_reduce = np.zeros(lg.num_local, dtype=bool)
        dirty_bcast = np.zeros(lg.num_local, dtype=bool)
        max_rounds = min(
            self.config.max_rounds,
            app.max_rounds if app.max_rounds is not None else 10**9,
        )

        tracer = self.tracer
        prof = self.profiler
        rnd = 0
        while True:
            # ---------------- compute phase ----------------
            t0 = env.now
            if prof is not None:
                r_compute = self._r_compute
                pt0 = prof.clock()
                try:
                    res = app.compute(lg, state, active)
                finally:
                    r_compute[0] += prof.clock() - pt0
                    r_compute[1] += 1
                self._t_host_rounds += 1
            else:
                res = app.compute(lg, state, active)
            compute_cost = (
                res.work_nodes * cpu.per_node_cost
                + res.work_edges * cpu.per_edge_cost
            ) * self.config.work_scale / threads
            if compute_cost > 0:
                yield env.charged_timeout(compute_cost, actor=h)
            self._compute_rounds[h].append(env.now - t0)
            t_comm = env.now
            if tracer is not None:
                tracer.record(
                    h, "compute", f"round {rnd}", t0, env.now,
                    edges=res.work_edges, nodes=res.work_nodes,
                )

            upd = res.updated
            if len(upd):
                dirty_reduce[upd[upd >= lg.num_masters]] = True
                if app.label_is_broadcast_field:
                    dirty_bcast[upd[upd < lg.num_masters]] = True

            # ---------------- reduce sync ----------------
            if self._has_reduce:
                yield from self._sync_phase(
                    h, lg, layer, state, (rnd, "reduce"),
                    out_pairs=self._reduce_out[h],
                    in_pairs=self._reduce_in[h],
                    dirty=dirty_reduce,
                    is_reduce=True,
                    dirty_bcast=dirty_bcast,
                )

            # ---------------- post-reduce (master step) ----------------
            extra = app.post_reduce(lg, state)
            if len(extra):
                dirty_bcast[extra] = True
            if app.reduce_op == "add" and lg.num_masters:
                # The damping update touches every master once.
                yield env.charged_timeout(
                    lg.num_masters * cpu.per_node_cost / threads, actor=h
                )

            # ---------------- broadcast sync ----------------
            if self._has_bcast:
                yield from self._sync_phase(
                    h, lg, layer, state, (rnd, "bcast"),
                    out_pairs=self._bcast_out[h],
                    in_pairs=self._bcast_in[h],
                    dirty=dirty_bcast,
                    is_reduce=False,
                )

            # ---------------- termination ----------------
            active = app.next_active(lg, state)
            metric = app.local_quiescent_metric(lg, state, active)
            t_ar = env.now
            total = yield from self.allreducer.allreduce_sum(h, metric)
            # Globally agreed activity level: programs may use it to pick
            # a traversal direction (Gemini's push/pull switching) — every
            # host sees the same value, so decisions stay consistent.
            state["_global_active"] = total
            self._comm_rounds[h].append(env.now - t_comm)
            if tracer is not None:
                tracer.record(h, "allreduce", f"round {rnd}", t_ar, env.now)
            rnd += 1
            if total == 0 or rnd >= max_rounds:
                break

        self._rounds_done[h] = rnd
        self._end_times[h] = env.now
        # Everyone reaches this point together (the allreduce barrier),
        # so shutting down helper threads here is race-free.
        layer.shutdown()

    # ------------------------------------------------------------------
    def _sync_phase(
        self, h, lg, layer, state, phase, out_pairs, in_pairs, dirty,
        is_reduce, dirty_bcast=None,
    ):
        """One gather-communicate-scatter pattern instance."""
        env = self.env
        app = self.app
        cpu = self.config.machine.cpu
        threads = self.compute_threads

        # Phase geometry is static across rounds: peer hosts and the
        # sender/receiver id arrays per sync pair only depend on the
        # partition.  Resolve it once per (host, pattern).
        cache = self._sync_cache.get((h, is_reduce))
        if cache is None:
            if is_reduce:
                # sender ships mirror_ids, receiver applies at master_ids
                out = [(sp.master_host, sp.mirror_ids, sp) for sp in out_pairs]
                in_map = {sp.mirror_host: sp.master_ids for sp in in_pairs}
                in_hosts = [sp.mirror_host for sp in in_pairs]
            else:
                out = [(sp.mirror_host, sp.master_ids, sp) for sp in out_pairs]
                in_map = {sp.master_host: sp.mirror_ids for sp in in_pairs}
                in_hosts = [sp.master_host for sp in in_pairs]
            out_hosts = [dst for dst, _ids, _sp in out]
            cache = (out, out_hosts, in_hosts, in_map)
            self._sync_cache[(h, is_reduce)] = cache
        out, out_hosts, in_hosts, in_map = cache
        if is_reduce:
            get_values = app.reduce_values
            apply_values = app.apply_reduce
        else:
            get_values = app.bcast_values
            apply_values = app.apply_bcast
        yield from layer.phase_begin(phase, out_hosts, in_hosts)

        # Gather: pack each pair's dirty subset (parallel across threads).
        prof = self.profiler
        if prof is not None:
            pclock = prof.clock
            r_pack, r_apply = self._r_pack, self._r_apply
            g0 = pclock()
        blobs = []
        gather_cost = 0.0
        for dst, ids_mine, sp in out:
            positions = np.where(dirty[ids_mine])[0].astype(np.int64)
            values = get_values(state, ids_mine[positions])
            if prof is None:
                blob = pack_updates(
                    positions, values, len(sp), app.field_bytes, phase=phase
                )
            else:
                n = r_pack[1] + 1
                r_pack[1] = n
                if n & LEAF_SAMPLE_MASK:
                    blob = pack_updates(
                        positions, values, len(sp), app.field_bytes,
                        phase=phase,
                    )
                else:
                    t0 = pclock()
                    blob = pack_updates(
                        positions, values, len(sp), app.field_bytes,
                        phase=phase,
                    )
                    r_pack[0] += pclock() - t0
            blobs.append((dst, blob, ids_mine))
            gather_cost += pack_cost(cpu, len(positions), blob.nbytes)
            self._payload_bytes[h] += blob.nbytes
            self._updates_shipped[h] += len(positions)
        if prof is not None:
            r_gather = self._r_gather
            r_gather[0] += pclock() - g0
            r_gather[1] += 1
            blob_bytes = 0
            blob_updates = 0
            for _dst, blob, _ids in blobs:
                blob_bytes += blob.nbytes
                blob_updates += len(blob.positions)
            self._t_blobs += len(blobs)
            self._t_blob_bytes += blob_bytes
            self._t_updates += blob_updates
        if gather_cost > 0:
            yield env.charged_timeout(gather_cost / threads, actor=h)

        if layer.parallel_send and len(blobs) > 1:
            # Compute threads initiate sends concurrently (up to the
            # host's thread count; partner counts never exceed it here).
            sends = [
                env.process(layer.send(dst, blob), name=f"send-{h}-{dst}")
                for dst, blob, _ids in blobs
            ]
            yield env.all_of(sends)
        else:
            for dst, blob, _ids in blobs:
                yield from layer.send(dst, blob)
        if is_reduce:
            for _dst, blob, ids_mine in blobs:
                if len(blob.positions):
                    app.reset_after_reduce_send(
                        state, ids_mine[blob.positions]
                    )
        for _dst, ids_mine, _sp in out:
            dirty[ids_mine] = False
        yield from layer.flush(phase)

        # Scatter arrivals as they come (arbitrary order).  Programs with
        # ``ordered_scatter`` defer the *application* of values until the
        # phase's last blob arrived and then apply in source-host order —
        # costs are still charged at arrival time, so the schedule (and
        # every timing metric) is identical; only the floating-point
        # reduction order becomes canonical.
        pending = set(in_hosts)
        cold = cpu.cold_read_factor if layer.receive_buffer_cold else 1.0
        deferred = [] if app.ordered_scatter else None
        while pending:
            batch = yield from layer.collect_some(phase, pending)
            scatter_cost = 0.0
            if prof is not None:
                s0 = pclock()
            for src, blob in batch:
                ids = in_map[src][blob.positions]
                if deferred is not None:
                    deferred.append((src, blob, ids))
                else:
                    if len(ids):
                        if prof is None:
                            changed = apply_values(state, ids, blob.values)
                        else:
                            n = r_apply[1] + 1
                            r_apply[1] = n
                            if n & LEAF_SAMPLE_MASK:
                                changed = apply_values(
                                    state, ids, blob.values
                                )
                            else:
                                t0 = pclock()
                                changed = apply_values(
                                    state, ids, blob.values
                                )
                                r_apply[0] += pclock() - t0
                        if is_reduce and app.label_is_broadcast_field and dirty_bcast is not None:
                            dirty_bcast[ids[changed]] = True
                    layer.consume(blob)
                scatter_cost += unpack_cost(cpu, len(ids), blob.nbytes) * cold
            if prof is not None:
                r_scatter = self._r_scatter
                r_scatter[0] += pclock() - s0
                r_scatter[1] += 1
                self._t_scattered += len(batch)
            if scatter_cost > 0:
                yield env.charged_timeout(scatter_cost / threads, actor=h)
        if deferred is not None:
            deferred.sort(key=lambda item: item[0])
            if prof is not None:
                s0 = pclock()
            for _src, blob, ids in deferred:
                if len(ids):
                    if prof is None:
                        changed = apply_values(state, ids, blob.values)
                    else:
                        n = r_apply[1] + 1
                        r_apply[1] = n
                        if n & LEAF_SAMPLE_MASK:
                            changed = apply_values(state, ids, blob.values)
                        else:
                            t0 = pclock()
                            changed = apply_values(state, ids, blob.values)
                            r_apply[0] += pclock() - t0
                    if is_reduce and app.label_is_broadcast_field and dirty_bcast is not None:
                        dirty_bcast[ids[changed]] = True
                layer.consume(blob)
            if prof is not None:
                r_scatter = self._r_scatter
                r_scatter[0] += pclock() - s0
                r_scatter[1] += 1
        yield from layer.phase_end(phase)

    # ------------------------------------------------------------------
    def _metrics(self) -> RunMetrics:
        cfg = self.config
        rounds = max(self._rounds_done)
        compute_per_round = [
            max(
                self._compute_rounds[h][r]
                for h in range(cfg.num_hosts)
                if r < len(self._compute_rounds[h])
            )
            for r in range(rounds)
        ]
        comm_per_round = [
            max(
                self._comm_rounds[h][r]
                for h in range(cfg.num_hosts)
                if r < len(self._comm_rounds[h])
            )
            for r in range(rounds)
        ]
        m = RunMetrics(
            app=self.app.name,
            graph=self.graph.name,
            layer=cfg.layer,
            num_hosts=cfg.num_hosts,
            policy=cfg.policy,
            total_seconds=max(self._end_times) - min(self._start_times),
            setup_seconds=max(
                getattr(l, "setup_seconds", 0.0) for l in self.layers
            ),
            rounds=rounds,
            compute_per_round=compute_per_round,
            comm_per_round=comm_per_round,
            footprint_per_host=[l.footprint.peak for l in self.layers],
            blobs_sent=sum(
                l.stats.counter_value("blobs_sent")
                + l.stats.counter_value("puts")
                for l in self.layers
            ),
            payload_bytes_sent=sum(self._payload_bytes),
            updates_shipped=sum(self._updates_shipped),
        )
        counters: Dict[str, int] = {}
        for l in self.layers:
            registries = [l.stats]
            for attr in ("rt", "ep"):  # LCI runtime / MPI endpoint
                sub = getattr(l, attr, None)
                if sub is not None:
                    registries.append(sub.stats)
            for reg in registries:
                for name, value in reg.counter_values().items():
                    counters[name] = counters.get(name, 0) + int(value)
        m.layer_counters = counters
        if self.injector is not None:
            m.fault_counts = self.injector.counts()
        if self.sanitizer_ctx is not None:
            m.sanitizer_mode = self.sanitizer_ctx.mode
            m.sanitizer_violations = self.sanitizer_ctx.as_dicts()
        return m

    # ------------------------------------------------------------------
    def assemble_global(self) -> np.ndarray:
        """Collect the canonical per-node result from all masters.

        Shape ``(num_nodes,)`` for scalar-label programs; multi-source
        programs (label matrices) yield ``(num_nodes, K)`` — one column
        per batched query.
        """
        n = self.graph.num_nodes
        sample = self.app.extract_masters(
            self.partition.local(0), self.states[0]
        )
        out = np.zeros((n,) + sample.shape[1:], dtype=sample.dtype)
        for h in range(self.config.num_hosts):
            lg = self.partition.local(h)
            vals = self.app.extract_masters(lg, self.states[h])
            out[lg.global_ids[: lg.num_masters]] = vals
        return out
