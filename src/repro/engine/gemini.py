"""Gemini engine configuration.

Gemini [7] is the edge-cut state of the art: blocked node chunks
balancing assigned edges, with communication issued from many threads.
Its original runtime calls MPI with ``MPI_THREAD_MULTIPLE`` and probes
inside a receiving thread — the configuration the paper modified to use
the LCI Queue instead (Section IV-B1).  Accordingly:

* ``layer="mpi-probe"`` here enables ``inline_sends`` (compute threads
  call MPI directly, paying the library lock on every call);
* ``layer="lci"`` has compute threads drive SEND-ENQ/RECV-DEQ, which is
  already the LCI layer's shape — the "simple modifications" the paper
  describes.

Gemini was not given an RMA layer in the paper, and none is offered here.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.bsp import BspEngine, EngineConfig
from repro.engine.vertex_program import VertexProgram
from repro.graph.csr import CsrGraph
from repro.sim.machine import MachineModel, stampede2

__all__ = ["gemini_engine"]


def gemini_engine(
    graph: CsrGraph,
    app: VertexProgram,
    num_hosts: int,
    layer: str = "lci",
    machine: Optional[MachineModel] = None,
    **layer_kwargs,
) -> BspEngine:
    """Gemini with the given communication layer ("lci" or "mpi-probe")."""
    if layer == "mpi-rma":
        raise ValueError("the paper does not evaluate Gemini with MPI-RMA")
    kwargs = dict(layer_kwargs)
    if layer == "mpi-probe":
        kwargs.setdefault("inline_sends", True)
    cfg = EngineConfig(
        num_hosts=num_hosts,
        machine=machine or stampede2(),
        policy="edge-cut",
        layer=layer,
        layer_kwargs=kwargs,
    )
    return BspEngine(graph, app, cfg)
