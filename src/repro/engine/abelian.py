"""Abelian engine configuration.

Abelian (the distributed-memory Galois, later published as D-Galois/Gluon)
is partition-aware: it supports general vertex cuts, picks reduce and/or
broadcast based on the partitioning policy, ships only updated labels
with minimized metadata, and drives communication through a dedicated
thread (Fig. 2).  All of that is the BspEngine default; this wrapper
pins the paper's configuration: CVC partitioning and the chosen layer.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.bsp import BspEngine, EngineConfig
from repro.engine.vertex_program import VertexProgram
from repro.graph.csr import CsrGraph
from repro.sim.machine import MachineModel, stampede2

__all__ = ["abelian_engine"]


def abelian_engine(
    graph: CsrGraph,
    app: VertexProgram,
    num_hosts: int,
    layer: str = "lci",
    machine: Optional[MachineModel] = None,
    **layer_kwargs,
) -> BspEngine:
    """Abelian with the given communication layer.

    ``layer`` is "lci", "mpi-probe", or "mpi-rma" — the three runtimes
    of Section III.  Extra kwargs go to the layer factory.
    """
    cfg = EngineConfig(
        num_hosts=num_hosts,
        machine=machine or stampede2(),
        policy="cvc",
        layer=layer,
        layer_kwargs=layer_kwargs,
    )
    return BspEngine(graph, app, cfg)
