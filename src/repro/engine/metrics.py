"""Run metrics: what the benchmark harness reads after an engine run.

The paper reports (a) total execution time excluding graph construction
(Figs 3-4, Tables II/IV), (b) per-iteration computation vs. non-overlapped
communication, max'd across hosts and summed over iterations (Fig 6), and
(c) communication-buffer memory footprints, max/min across hosts (Fig 5).
:class:`RunMetrics` carries all three plus layer statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Everything measured during one engine run."""

    app: str
    graph: str
    layer: str
    num_hosts: int
    policy: str
    #: Simulated seconds from first round start to termination
    #: (setup/window creation excluded, as the paper does for MPI-RMA).
    total_seconds: float = 0.0
    #: Window-creation / layer-setup seconds (reported separately).
    setup_seconds: float = 0.0
    rounds: int = 0
    #: Per-iteration computation time: max across hosts each iteration.
    compute_per_round: List[float] = field(default_factory=list)
    #: Per-iteration non-overlapped communication time (max across hosts).
    comm_per_round: List[float] = field(default_factory=list)
    #: Per-host peak communication-buffer bytes (Fig 5).
    footprint_per_host: List[int] = field(default_factory=list)
    #: Total blobs/bytes moved (sanity / volume accounting).
    blobs_sent: int = 0
    payload_bytes_sent: int = 0
    #: Total label updates shipped across all sync messages — Abelian's
    #: "only the updated labels" volume optimization is visible here.
    updates_shipped: int = 0
    #: Host wall-clock seconds the run took.  The engine itself NEVER
    #: stamps this (it would break the bit-identical guarantee for
    #: profiled runs); callers that care (``repro run``, the serve
    #: layer, ``repro bench-core``) stamp it after ``run()`` returns
    #: via :meth:`stamp_wall`.  ``0.0`` means "not measured".
    wall_seconds: float = 0.0
    #: Free-form layer counters aggregated across hosts (includes the
    #: recovery-protocol counters: retransmissions, acks, dup drops).
    layer_counters: Dict[str, int] = field(default_factory=dict)
    #: Faults injected during the run (empty when no plan was installed):
    #: drops, duplicates, reorders, stalls, dilations.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Sanitizer mode the run was executed under ("" when sanitizers
    #: were off) and the violations recorded (``Violation.as_dict``
    #: rows; only ever non-empty in warn mode — raise mode aborts).
    sanitizer_mode: str = ""
    sanitizer_violations: List[Dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def compute_seconds(self) -> float:
        """Sum over iterations of the per-iteration max compute time."""
        return float(sum(self.compute_per_round))

    @property
    def comm_seconds(self) -> float:
        """Non-overlapped communication time, the paper's definition:
        total execution time minus the computation time ("the rest of
        the execution time is the non-overlapped communication time").
        ``comm_per_round`` holds the per-round measurements directly."""
        return max(0.0, self.total_seconds - self.compute_seconds)

    @property
    def max_footprint(self) -> int:
        return max(self.footprint_per_host) if self.footprint_per_host else 0

    @property
    def min_footprint(self) -> int:
        return min(self.footprint_per_host) if self.footprint_per_host else 0

    def stamp_wall(self, seconds: float) -> "RunMetrics":
        """Record host wall-clock time, caller-side (chainable).

        Kept out of the engine on purpose: wall-clock is machine noise,
        so the deterministic fields must never depend on whether it was
        measured.
        """
        self.wall_seconds = float(seconds)
        return self

    def row(self, include_wall: bool = False) -> dict:
        """Flat dict for table rendering.

        ``wall_s`` is excluded by default so every table the CLI prints
        stays byte-identical across repeat runs (the repo's stdout
        determinism probe); surfaces whose subject *is* wall-clock
        (``repro profile``) pass ``include_wall=True``.
        """
        out = {
            "app": self.app,
            "graph": self.graph,
            "layer": self.layer,
            "hosts": self.num_hosts,
            "policy": self.policy,
            "time_s": round(self.total_seconds, 6),
            "compute_s": round(self.compute_seconds, 6),
            "comm_s": round(self.comm_seconds, 6),
            "setup_s": round(self.setup_seconds, 6),
            "rounds": self.rounds,
            "blobs_sent": self.blobs_sent,
            "updates_shipped": self.updates_shipped,
            "mem_max_MB": round(self.max_footprint / 2**20, 3),
            "mem_min_MB": round(self.min_footprint / 2**20, 3),
        }
        if include_wall:
            out["wall_s"] = round(self.wall_seconds, 6)
        return out
