"""Command-line interface: run experiments without writing code.

::

    python -m repro run --app bfs --graph rmat --scale 12 --hosts 16 \\
        --layer lci [--trace trace.json]
    python -m repro sweep --app pagerank --graph kron --hosts 4 16 64
    python -m repro chaos --plan flaky-link --layer lci [--list-plans]
    python -m repro micro [--sizes 8 512 65536] [--threads 1 8 64]
    python -m repro inputs --scale 14
    python -m repro calibrate

Each subcommand prints the same tables the benchmark harness produces.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.micro import MICRO_INTERFACES, message_rate, pingpong_latency
from repro.bench.report import format_seconds, format_table
from repro.bench.scenarios import Scenario, build_engine, run_scenario
from repro.comm.layer_base import LAYER_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="LCI-reproduction experiment runner (simulated cluster)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("--app", default="bfs",
                     choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    run.add_argument("--graph", default="rmat",
                     choices=["rmat", "kron", "webcrawl"])
    run.add_argument("--scale", type=int, default=12)
    run.add_argument("--hosts", type=int, default=16)
    run.add_argument("--layer", default="lci", choices=list(LAYER_NAMES))
    run.add_argument("--system", default="abelian",
                     choices=["abelian", "gemini"])
    run.add_argument("--machine", default="stampede2",
                     choices=["stampede2", "stampede1"])
    run.add_argument("--mpi", default="intelmpi", dest="mpi_impl",
                     choices=["intelmpi", "mvapich2", "openmpi"])
    run.add_argument("--pagerank-rounds", type=int, default=20)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--trace", metavar="PATH",
                     help="write a chrome://tracing timeline JSON")

    chaos = sub.add_parser(
        "chaos", help="run one scenario under a named fault plan"
    )
    chaos.add_argument("--plan", default="flaky-link",
                       help="fault plan name (see --list-plans)")
    chaos.add_argument("--fault-seed", type=int, default=None,
                       help="seed of the fault draw streams")
    chaos.add_argument("--list-plans", action="store_true",
                       help="list the named fault plans and exit")
    chaos.add_argument("--app", default="bfs",
                       choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    chaos.add_argument("--graph", default="rmat",
                       choices=["rmat", "kron", "webcrawl"])
    chaos.add_argument("--scale", type=int, default=10)
    chaos.add_argument("--hosts", type=int, default=4)
    chaos.add_argument("--layer", default="lci", choices=list(LAYER_NAMES))
    chaos.add_argument("--system", default="abelian",
                       choices=["abelian", "gemini"])
    chaos.add_argument("--machine", default="stampede2",
                       choices=["stampede2", "stampede1"])
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--trace", metavar="PATH",
                       help="write a chrome://tracing timeline JSON with "
                            "fault instants")

    sweep = sub.add_parser("sweep", help="host-count sweep across layers")
    sweep.add_argument("--app", default="pagerank",
                       choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    sweep.add_argument("--graph", default="kron",
                       choices=["rmat", "kron", "webcrawl"])
    sweep.add_argument("--scale", type=int, default=12)
    sweep.add_argument("--hosts", type=int, nargs="+", default=[4, 16, 64])
    sweep.add_argument("--system", default="abelian",
                       choices=["abelian", "gemini"])
    sweep.add_argument("--pagerank-rounds", type=int, default=10)

    micro = sub.add_parser("micro", help="Fig. 1 microbenchmarks")
    micro.add_argument("--sizes", type=int, nargs="+",
                       default=[8, 512, 4096, 65536])
    micro.add_argument("--threads", type=int, nargs="+",
                       default=[1, 4, 16, 64])

    inputs = sub.add_parser("inputs", help="Table I input properties")
    inputs.add_argument("--scale", type=int, default=14)

    sub.add_parser("calibrate", help="model-calibration report")
    return p


def _cmd_run(args) -> int:
    tracer = None
    if args.trace:
        from repro.sim.trace import Tracer
        tracer = Tracer()
    sc = Scenario(
        app=args.app, graph=args.graph, scale=args.scale, hosts=args.hosts,
        layer=args.layer, system=args.system, machine=args.machine,
        mpi_impl=args.mpi_impl, pagerank_rounds=args.pagerank_rounds,
        seed=args.seed,
    )
    m = build_engine(sc, tracer=tracer).run()
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace written to {args.trace}")
    print(format_table([m.row()]))
    print(f"\ntotal {format_seconds(m.total_seconds)} = compute "
          f"{format_seconds(m.compute_seconds)} + comm "
          f"{format_seconds(m.comm_seconds)} over {m.rounds} rounds")
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import NAMED_PLANS, get_plan
    from repro.faults.harness import format_chaos_report, run_chaos

    if args.list_plans:
        rows = [
            {"plan": name, "faults": plan.describe()}
            for name, plan in sorted(NAMED_PLANS.items())
        ]
        print(format_table(rows))
        return 0
    try:
        plan = get_plan(args.plan, args.fault_seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from repro.sim.trace import Tracer
        tracer = Tracer()
    sc = Scenario(
        app=args.app, graph=args.graph, scale=args.scale, hosts=args.hosts,
        layer=args.layer, system=args.system, machine=args.machine,
        seed=args.seed,
    )
    report = run_chaos(sc, plan, tracer=tracer)
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace written to {args.trace}")
    print(format_chaos_report(report))
    return 0 if report.outcome == "recovered" else 1


def _cmd_sweep(args) -> int:
    layers = [l for l in LAYER_NAMES
              if not (args.system == "gemini" and l == "mpi-rma")]
    rows = []
    for hosts in args.hosts:
        row = {"hosts": hosts}
        for layer in layers:
            sc = Scenario(
                app=args.app, graph=args.graph, scale=args.scale,
                hosts=hosts, layer=layer, system=args.system,
                pagerank_rounds=args.pagerank_rounds,
            )
            m = run_scenario(sc)
            row[layer] = format_seconds(m.total_seconds)
        rows.append(row)
    print(f"{args.system}/{args.app} on {args.graph}{args.scale}")
    print(format_table(rows))
    return 0


def _cmd_micro(args) -> int:
    lat_rows = []
    for size in args.sizes:
        row = {"bytes": size}
        for iface in MICRO_INTERFACES:
            row[iface] = f"{pingpong_latency(iface, size, iters=20) * 1e6:.2f}us"
        lat_rows.append(row)
    print("one-way latency")
    print(format_table(lat_rows))
    rate_rows = []
    for t in args.threads:
        row = {"threads": t}
        for iface in MICRO_INTERFACES:
            row[iface] = f"{message_rate(iface, t, window=16) / 1e6:.3f}M/s"
        rate_rows.append(row)
    print("\nmessage rate")
    print(format_table(rate_rows))
    return 0


def _cmd_inputs(args) -> int:
    from repro.graph.generators import kron, rmat, webcrawl
    from repro.graph.properties import graph_properties

    rows = [
        graph_properties(g).as_row()
        for g in (webcrawl(args.scale), kron(args.scale), rmat(args.scale))
    ]
    print(format_table(rows))
    return 0


def _cmd_calibrate(_args) -> int:
    from repro.bench.calibration import calibration_report

    rows = []
    ok = True
    for name, (value, low, high) in sorted(calibration_report().items()):
        in_range = low <= value <= high
        ok &= in_range
        rows.append({
            "observable": name,
            "value": f"{value:.4g}",
            "range": f"[{low:.3g}, {high:.3g}]",
            "ok": "yes" if in_range else "NO",
        })
    print(format_table(rows))
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "chaos": _cmd_chaos,
        "sweep": _cmd_sweep,
        "micro": _cmd_micro,
        "inputs": _cmd_inputs,
        "calibrate": _cmd_calibrate,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
