"""Command-line interface: run experiments without writing code.

::

    python -m repro run --app bfs --graph rmat --scale 12 --hosts 16 \\
        --layer lci [--trace trace.json]
    python -m repro sweep --app pagerank --graph kron --hosts 4 16 64
    python -m repro chaos --plan flaky-link --layer lci [--list-plans]
    python -m repro micro [--sizes 8 512 65536] [--threads 1 8 64]
    python -m repro inputs --scale 14
    python -m repro calibrate
    python -m repro lint [--json report.json] [--sarif r.sarif] [paths...]
    python -m repro analyze [--check-baseline [PROTO_BASELINE.json]] \\
        [--json report.json] [--sarif r.sarif] [--selftest] [paths...]
    python -m repro run ... --obs obs.json [--obs-chrome t.json] \\
        [--obs-prom m.prom]
    python -m repro explain obs.json [--check] [--top 5] [--per-round]
    python -m repro serve --scale 10 --hosts 4 --layer lci \\
        [--tape tape.json | --tape-queries 48 --tape-seed 7] \\
        [--fault-plan drop-5pct] [--report report.json]
    python -m repro bench-serve [--out BENCH_serve.json] \\
        [--check BENCH_serve.json]
    python -m repro profile --app bfs --scale 10 --hosts 8 --layer lci \\
        [--top 15] [--json prof.json] [--collapsed prof.folded]
    python -m repro bench-core [--out BENCH_core.json] \\
        [--check BENCH_core.json] [--compare OLD.json] [--overhead]
    python -m repro run ... --comm comm.json
    python -m repro explain obs.json --comm
    python -m repro commstats --app bfs --scale 10 --hosts 8 --layer lci
    python -m repro commstats --canonical [--check-baseline \\
        [COMM_BASELINE.json]] [--write-baseline [COMM_BASELINE.json]]

Each subcommand prints the same tables the benchmark harness produces.

Exit codes: 0 success; 1 generic failure / lint findings; 2 usage
errors; 3 (:data:`repro.sanitize.SANITIZER_EXIT_CODE`) when a run
finished but warn-mode protocol sanitizers recorded violations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.micro import MICRO_INTERFACES, message_rate, pingpong_latency
from repro.bench.report import format_seconds, format_table
from repro.bench.scenarios import Scenario, build_engine, run_scenario
from repro.comm.layer_base import LAYER_NAMES
from repro.sanitize.runtime import (
    SANITIZER_EXIT_CODE,
    SanitizerError,
    format_violations,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="LCI-reproduction experiment runner (simulated cluster)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("--app", default="bfs",
                     choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    run.add_argument("--graph", default="rmat",
                     choices=["rmat", "kron", "webcrawl"])
    run.add_argument("--scale", type=int, default=12)
    run.add_argument("--hosts", type=int, default=16)
    run.add_argument("--layer", default="lci", choices=list(LAYER_NAMES))
    run.add_argument("--system", default="abelian",
                     choices=["abelian", "gemini"])
    run.add_argument("--machine", default="stampede2",
                     choices=["stampede2", "stampede1"])
    run.add_argument("--mpi", default="intelmpi", dest="mpi_impl",
                     choices=["intelmpi", "mvapich2", "openmpi"])
    run.add_argument("--pagerank-rounds", type=int, default=20)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--trace", metavar="PATH",
                     help="write a chrome://tracing timeline JSON")
    run.add_argument("--sanitize", nargs="?", const="warn",
                     choices=["warn", "raise"], default=None,
                     help="arm the protocol sanitizers (default mode: "
                          "warn; exits %d on violations)"
                          % SANITIZER_EXIT_CODE)
    run.add_argument("--obs", nargs="?", const="obs-timeline.json",
                     metavar="PATH",
                     help="trace the message lifecycle and write the "
                          "observability timeline JSON (input of "
                          "`repro explain`)")
    run.add_argument("--obs-chrome", metavar="PATH",
                     help="also export the obs timeline as a Chrome "
                          "trace with flow arrows (implies --obs)")
    run.add_argument("--obs-prom", metavar="PATH",
                     help="also export aggregate obs metrics in "
                          "Prometheus text format (implies --obs)")
    run.add_argument("--comm", nargs="?", const="comm.json",
                     metavar="PATH", dest="comm_path",
                     help="collect per-(src,dst,kind/phase) traffic "
                          "matrices and write the comm-doc JSON; with "
                          "--obs-prom the repro_comm_* families are "
                          "merged into the Prometheus output")

    chaos = sub.add_parser(
        "chaos", help="run one scenario under a named fault plan"
    )
    chaos.add_argument("--plan", default="flaky-link",
                       help="fault plan name (see --list-plans)")
    chaos.add_argument("--fault-seed", type=int, default=None,
                       help="seed of the fault draw streams")
    chaos.add_argument("--list-plans", action="store_true",
                       help="list the named fault plans and exit")
    chaos.add_argument("--app", default="bfs",
                       choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    chaos.add_argument("--graph", default="rmat",
                       choices=["rmat", "kron", "webcrawl"])
    chaos.add_argument("--scale", type=int, default=10)
    chaos.add_argument("--hosts", type=int, default=4)
    chaos.add_argument("--layer", default="lci", choices=list(LAYER_NAMES))
    chaos.add_argument("--system", default="abelian",
                       choices=["abelian", "gemini"])
    chaos.add_argument("--machine", default="stampede2",
                       choices=["stampede2", "stampede1"])
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--trace", metavar="PATH",
                       help="write a chrome://tracing timeline JSON with "
                            "fault instants")
    chaos.add_argument("--sanitize", nargs="?", const="warn",
                       choices=["warn", "raise"], default=None,
                       help="arm the protocol sanitizers for both the "
                            "baseline and the faulted run")
    chaos.add_argument("--obs", nargs="?", const="obs-timeline.json",
                       metavar="PATH",
                       help="trace the faulted run's message lifecycle "
                            "and write the observability timeline JSON")

    explain = sub.add_parser(
        "explain",
        help="critical-path report from an observability timeline",
    )
    explain.add_argument("timeline", metavar="TIMELINE",
                         help="timeline JSON written by `repro run --obs`")
    explain.add_argument("--check", action="store_true",
                         help="validate the timeline document first "
                              "(exit 1 on format errors)")
    explain.add_argument("--top", type=int, default=5,
                         help="how many slowest messages to break down")
    explain.add_argument("--per-round", action="store_true",
                         help="include the per-round dominant-stage table")
    explain.add_argument("--comm", action="store_true",
                         help="append the communication-pattern report "
                              "(blob matrices reconstructed from the "
                              "timeline's api events)")

    sweep = sub.add_parser("sweep", help="host-count sweep across layers")
    sweep.add_argument("--app", default="pagerank",
                       choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    sweep.add_argument("--graph", default="kron",
                       choices=["rmat", "kron", "webcrawl"])
    sweep.add_argument("--scale", type=int, default=12)
    sweep.add_argument("--hosts", type=int, nargs="+", default=[4, 16, 64])
    sweep.add_argument("--system", default="abelian",
                       choices=["abelian", "gemini"])
    sweep.add_argument("--pagerank-rounds", type=int, default=10)

    micro = sub.add_parser("micro", help="Fig. 1 microbenchmarks")
    micro.add_argument("--sizes", type=int, nargs="+",
                       default=[8, 512, 4096, 65536])
    micro.add_argument("--threads", type=int, nargs="+",
                       default=[1, 4, 16, 64])

    inputs = sub.add_parser("inputs", help="Table I input properties")
    inputs.add_argument("--scale", type=int, default=14)

    sub.add_parser("calibrate", help="model-calibration report")

    serve = sub.add_parser(
        "serve",
        help="long-lived query service: serve a traffic tape against a "
             "resident graph",
    )
    serve.add_argument("--graph", default="rmat",
                       choices=["rmat", "kron", "webcrawl"])
    serve.add_argument("--scale", type=int, default=10)
    serve.add_argument("--hosts", type=int, default=4)
    serve.add_argument("--layer", default="lci", choices=list(LAYER_NAMES))
    serve.add_argument("--system", default="abelian",
                       choices=["abelian", "gemini"])
    serve.add_argument("--machine", default="stampede2",
                       choices=["stampede2", "stampede1"])
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--max-batch", type=int, default=8,
                       help="max queries fused into one batched execution")
    serve.add_argument("--ppr-rounds", type=int, default=10)
    serve.add_argument("--tape", metavar="PATH",
                       help="replay a saved tape JSON instead of "
                            "generating one")
    serve.add_argument("--tape-queries", type=int, default=48,
                       help="generated tape length")
    serve.add_argument("--tape-seed", type=int, default=7)
    serve.add_argument("--tape-gap", type=float, default=2e-4,
                       help="mean inter-arrival gap in simulated seconds")
    serve.add_argument("--save-tape", metavar="PATH",
                       help="write the (generated or replayed) tape JSON")
    serve.add_argument("--report", metavar="PATH",
                       help="write the full service report JSON")
    serve.add_argument("--fault-plan", default=None,
                       help="serve under a named fault plan "
                            "(graceful degradation)")
    serve.add_argument("--fault-seed", type=int, default=None)
    serve.add_argument("--sanitize", nargs="?", const="warn",
                       choices=["warn", "raise"], default=None,
                       help="arm the protocol sanitizers for every batch")
    serve.add_argument("--obs", nargs="?", const="obs-serve.json",
                       metavar="PATH",
                       help="write the last executed batch's "
                            "observability timeline JSON")
    serve.add_argument("--obs-prom", metavar="PATH",
                       help="also export service latency + obs metrics "
                            "in Prometheus text format (implies --obs)")
    serve.add_argument("--comm", action="store_true",
                       help="collect per-batch traffic matrices and "
                            "include the comm summary in batch logs "
                            "and the report")

    bench_serve = sub.add_parser(
        "bench-serve",
        help="deterministic serve benchmark (BENCH_serve.json)",
    )
    bench_serve.add_argument("--out", metavar="PATH",
                             help="write the benchmark document here")
    bench_serve.add_argument("--check", metavar="PATH",
                             help="compare against a committed document; "
                                  "exit 1 on drift")

    profile = sub.add_parser(
        "profile",
        help="run one scenario under the host-side region profiler "
             "and work-counter registry",
    )
    profile.add_argument("--app", default="bfs",
                         choices=["bfs", "cc", "sssp", "pagerank", "kcore"])
    profile.add_argument("--graph", default="rmat",
                         choices=["rmat", "kron", "webcrawl"])
    profile.add_argument("--scale", type=int, default=10)
    profile.add_argument("--hosts", type=int, default=8)
    profile.add_argument("--layer", default="lci",
                         choices=list(LAYER_NAMES))
    profile.add_argument("--system", default="abelian",
                         choices=["abelian", "gemini"])
    profile.add_argument("--machine", default="stampede2",
                         choices=["stampede2", "stampede1"])
    profile.add_argument("--mpi", default="intelmpi", dest="mpi_impl",
                         choices=["intelmpi", "mvapich2", "openmpi"])
    profile.add_argument("--pagerank-rounds", type=int, default=20)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the self-time table")
    profile.add_argument("--json", metavar="PATH", dest="json_path",
                         help="write the full profile document "
                              "(regions + counters + fingerprint)")
    profile.add_argument("--collapsed", metavar="PATH",
                         dest="collapsed_path",
                         help="write a collapsed-stack (flamegraph.pl "
                              "/ speedscope) export")

    commstats = sub.add_parser(
        "commstats",
        help="communication-pattern observatory: traffic matrices, "
             "skew analytics, and comm fingerprints",
    )
    commstats.add_argument("--app", default="bfs",
                           choices=["bfs", "cc", "sssp", "pagerank",
                                    "kcore"])
    commstats.add_argument("--graph", default="rmat",
                           choices=["rmat", "kron", "webcrawl"])
    commstats.add_argument("--scale", type=int, default=10)
    commstats.add_argument("--hosts", type=int, default=8)
    commstats.add_argument("--layer", default="lci",
                           choices=list(LAYER_NAMES))
    commstats.add_argument("--system", default="abelian",
                           choices=["abelian", "gemini"])
    commstats.add_argument("--machine", default="stampede2",
                           choices=["stampede2", "stampede1"])
    commstats.add_argument("--mpi", default="intelmpi", dest="mpi_impl",
                           choices=["intelmpi", "mvapich2", "openmpi"])
    commstats.add_argument("--pagerank-rounds", type=int, default=20)
    commstats.add_argument("--seed", type=int, default=1)
    commstats.add_argument("--fault-plan", default=None,
                           help="run under a named fault plan (the "
                                "dropped matrix attributes lost bytes)")
    commstats.add_argument("--canonical", action="store_true",
                           help="run every canonical bench-core "
                                "scenario instead of one ad-hoc run")
    commstats.add_argument("--json", metavar="PATH", dest="json_path",
                           help="write the comm-doc JSON (with "
                                "--canonical: a label->doc mapping)")
    commstats.add_argument("--csv", metavar="PATH", dest="csv_path",
                           help="write the flat CSV matrix dump "
                                "(single-scenario mode only)")
    commstats.add_argument("--heatmap", metavar="PATH",
                           dest="heatmap_path",
                           help="write the ASCII heatmap(s) to PATH")
    commstats.add_argument("--prom", metavar="PATH", dest="prom_path",
                           help="write the repro_comm_* Prometheus "
                                "families (single-scenario mode only)")
    commstats.add_argument("--write-baseline", nargs="?",
                           const="COMM_BASELINE.json", default=None,
                           metavar="PATH", dest="write_baseline",
                           help="write per-scenario comm fingerprints "
                                "for the canonical scenarios (implies "
                                "--canonical)")
    commstats.add_argument("--check-baseline", nargs="?",
                           const="COMM_BASELINE.json", default=None,
                           metavar="PATH", dest="check_baseline",
                           help="exit 1 if any canonical scenario's "
                                "comm volume drifted from the baseline "
                                "file (implies --canonical)")

    bench_core = sub.add_parser(
        "bench-core",
        help="deterministic simulator-core benchmark (BENCH_core.json)",
    )
    bench_core.add_argument("--out", metavar="PATH",
                            help="write the benchmark document here")
    bench_core.add_argument("--check", metavar="PATH",
                            help="compare the deterministic blocks "
                                 "against a committed document "
                                 "(wall-clock ignored); exit 1 on drift")
    bench_core.add_argument("--repeats", type=int, default=2,
                            help="timed runs per scenario (min taken; "
                                 "every repeat must reproduce the "
                                 "counter fingerprint)")
    bench_core.add_argument("--compare", metavar="PATH",
                            dest="compare_path",
                            help="print per-scenario events/sec and "
                                 "msgs/sec deltas vs an older document; "
                                 "exit 1 on sim-fingerprint mismatch")
    bench_core.add_argument("--regress-limit", type=float, default=None,
                            metavar="PCT",
                            help="with --compare: exit 1 if any "
                                 "scenario's events/sec regressed more "
                                 "than PCT percent")
    bench_core.add_argument("--trajectory-note", metavar="NOTE",
                            help="with --out: carry the old file's "
                                 "perf-trajectory points forward and "
                                 "append this run as NOTE")
    bench_core.add_argument("--overhead", action="store_true",
                            help="also measure profiler-on vs "
                                 "profiler-off CPU-time overhead "
                                 "(median of paired ratios)")
    bench_core.add_argument("--overhead-limit", type=float, default=None,
                            metavar="PCT",
                            help="with --overhead: exit 1 if overhead "
                                 "exceeds PCT percent")

    lint = sub.add_parser(
        "lint", help="static determinism lint over the simulation sources"
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", metavar="PATH", dest="json_path",
                      help="also write the machine-readable JSON report")
    lint.add_argument("--sarif", metavar="PATH", dest="sarif_path",
                      help="also write the findings as SARIF 2.1.0")

    analyze = sub.add_parser(
        "analyze",
        help="interprocedural protocol analyzer (MPI/LCI/comm "
             "lifecycles) over the simulation sources",
    )
    analyze.add_argument("paths", nargs="*", metavar="PATH",
                         help="files/directories to analyze (default: "
                              "the installed repro package)")
    analyze.add_argument("--json", metavar="PATH", dest="json_path",
                         help="also write the machine-readable JSON "
                              "report (same schema as `lint --json`)")
    analyze.add_argument("--sarif", metavar="PATH", dest="sarif_path",
                         help="also write the findings as SARIF 2.1.0")
    analyze.add_argument("--check-baseline", nargs="?",
                         const="PROTO_BASELINE.json", default=None,
                         metavar="PATH", dest="check_baseline",
                         help="exit 0 iff every finding is accepted in "
                              "the baseline file (default: "
                              "./PROTO_BASELINE.json); stale entries "
                              "are warned about")
    analyze.add_argument("--write-baseline", nargs="?",
                         const="PROTO_BASELINE.json", default=None,
                         metavar="PATH", dest="write_baseline",
                         help="accept the current findings into a "
                              "baseline file (justify each entry "
                              "before committing)")
    analyze.add_argument("--selftest", action="store_true",
                         help="run the mutation-corpus self-test and "
                              "exit (nonzero on any corpus failure)")
    return p


def _cmd_run(args) -> int:
    tracer = None
    if args.trace:
        from repro.sim.trace import Tracer
        tracer = Tracer()
    obs = None
    obs_path = args.obs
    if obs_path or args.obs_chrome or args.obs_prom:
        from repro.obs import ObsContext
        obs = ObsContext()
        if obs_path is None:
            obs_path = "obs-timeline.json"
    commstats = None
    if args.comm_path:
        from repro.obs import CommStatsContext
        commstats = CommStatsContext()
    sc = Scenario(
        app=args.app, graph=args.graph, scale=args.scale, hosts=args.hosts,
        layer=args.layer, system=args.system, machine=args.machine,
        mpi_impl=args.mpi_impl, pagerank_rounds=args.pagerank_rounds,
        seed=args.seed, sanitize=args.sanitize,
    )
    from repro.obs.profile import wall_now

    wall0 = wall_now()
    try:
        m = build_engine(sc, tracer=tracer, obs=obs,
                         commstats=commstats).run()
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return SANITIZER_EXIT_CODE
    m.stamp_wall(wall_now() - wall0)
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace written to {args.trace}")
    comm_doc = None
    if commstats is not None:
        from repro.obs import save_comm_doc
        comm_doc = commstats.comm_doc(meta={"scenario": sc.label()})
        save_comm_doc(args.comm_path, comm_doc)
        totals = comm_doc["totals"]
        print(f"comm-doc written to {args.comm_path} "
              f"({totals['wire_msgs']} pkts / {totals['wire_bytes']} "
              f"wire bytes, fingerprint {comm_doc['fingerprint']})")
    if obs is not None:
        _export_obs(obs, m, sc, obs_path, args.obs_chrome, args.obs_prom,
                    comm_doc)
    print(format_table([m.row()]))
    print(f"\ntotal {format_seconds(m.total_seconds)} = compute "
          f"{format_seconds(m.compute_seconds)} + comm "
          f"{format_seconds(m.comm_seconds)} over {m.rounds} rounds")
    if m.sanitizer_violations:
        print(format_violations(m.sanitizer_violations), file=sys.stderr)
        return SANITIZER_EXIT_CODE
    return 0


def _obs_meta(m, sc: Scenario) -> dict:
    """Run-level metadata embedded in the observability timeline."""
    return {
        "scenario": sc.label(),
        "layer": sc.layer,
        "hosts": sc.hosts,
        "total_seconds": m.total_seconds,
        "compute_seconds": m.compute_seconds,
        "comm_seconds": m.comm_seconds,
        "setup_seconds": m.setup_seconds,
        "rounds": m.rounds,
        "blobs_sent": m.blobs_sent,
        "updates_shipped": m.updates_shipped,
    }


def _export_obs(obs, m, sc: Scenario, obs_path, chrome_path, prom_path,
                comm_doc=None):
    from repro.obs import (
        build_timelines,
        format_stage_table,
        save_chrome_trace,
        save_prometheus,
        save_timeline,
        stage_attribution,
    )

    timeline = obs.as_timeline(meta=_obs_meta(m, sc))
    save_timeline(obs_path, timeline)
    print(f"obs timeline written to {obs_path} "
          f"({len(timeline['events'])} events)")
    if chrome_path:
        save_chrome_trace(chrome_path, timeline)
        print(f"obs chrome trace written to {chrome_path}")
    if prom_path:
        save_prometheus(prom_path, timeline, comm=comm_doc)
        print(f"obs prometheus metrics written to {prom_path}")
    print("\nstage attribution (per layer):")
    print(format_stage_table(stage_attribution(build_timelines(timeline))))
    print(f"\nrun `repro explain {obs_path}` for the full "
          "critical-path report\n")


def _cmd_explain(args) -> int:
    from repro.obs import explain_report, load_timeline, validate_timeline

    try:
        timeline = load_timeline(args.timeline)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.timeline}: {exc}", file=sys.stderr)
        return 1
    if args.check:
        errors = validate_timeline(timeline)
        if errors:
            for err in errors:
                print(f"invalid timeline: {err}", file=sys.stderr)
            return 1
    print(explain_report(timeline, top=args.top, per_round=args.per_round))
    if args.comm:
        from repro.obs import format_comm_report, timeline_comm_doc
        print()
        print(format_comm_report(timeline_comm_doc(timeline)))
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import NAMED_PLANS, get_plan
    from repro.faults.harness import format_chaos_report, run_chaos

    if args.list_plans:
        rows = [
            {"plan": name, "faults": plan.describe()}
            for name, plan in sorted(NAMED_PLANS.items())
        ]
        print(format_table(rows))
        return 0
    try:
        plan = get_plan(args.plan, args.fault_seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from repro.sim.trace import Tracer
        tracer = Tracer()
    obs = None
    if args.obs:
        from repro.obs import ObsContext
        obs = ObsContext()
    sc = Scenario(
        app=args.app, graph=args.graph, scale=args.scale, hosts=args.hosts,
        layer=args.layer, system=args.system, machine=args.machine,
        seed=args.seed, sanitize=args.sanitize,
    )
    try:
        # --obs also arms the comm observatory so the report can
        # attribute byte deltas (retransmits, drops) to the fault plan.
        report = run_chaos(sc, plan, tracer=tracer, obs=obs,
                           commstats=obs is not None)
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return SANITIZER_EXIT_CODE
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace written to {args.trace}")
    if obs is not None:
        from repro.obs import save_timeline
        timeline = obs.as_timeline(meta={
            "scenario": sc.label(), "layer": sc.layer, "hosts": sc.hosts,
            "plan": report.plan, "outcome": report.outcome,
        })
        save_timeline(args.obs, timeline)
        print(f"obs timeline written to {args.obs} "
              f"({len(timeline['events'])} events)")
    print(format_chaos_report(report))
    if report.outcome != "recovered":
        return 1
    if report.sanitizer_violations:
        return SANITIZER_EXIT_CODE
    return 0


def _cmd_sweep(args) -> int:
    layers = [l for l in LAYER_NAMES
              if not (args.system == "gemini" and l == "mpi-rma")]
    rows = []
    for hosts in args.hosts:
        row = {"hosts": hosts}
        for layer in layers:
            sc = Scenario(
                app=args.app, graph=args.graph, scale=args.scale,
                hosts=hosts, layer=layer, system=args.system,
                pagerank_rounds=args.pagerank_rounds,
            )
            m = run_scenario(sc)
            row[layer] = format_seconds(m.total_seconds)
        rows.append(row)
    print(f"{args.system}/{args.app} on {args.graph}{args.scale}")
    print(format_table(rows))
    return 0


def _cmd_micro(args) -> int:
    lat_rows = []
    for size in args.sizes:
        row = {"bytes": size}
        for iface in MICRO_INTERFACES:
            row[iface] = f"{pingpong_latency(iface, size, iters=20) * 1e6:.2f}us"
        lat_rows.append(row)
    print("one-way latency")
    print(format_table(lat_rows))
    rate_rows = []
    for t in args.threads:
        row = {"threads": t}
        for iface in MICRO_INTERFACES:
            row[iface] = f"{message_rate(iface, t, window=16) / 1e6:.3f}M/s"
        rate_rows.append(row)
    print("\nmessage rate")
    print(format_table(rate_rows))
    return 0


def _cmd_inputs(args) -> int:
    from repro.graph.generators import kron, rmat, webcrawl
    from repro.graph.properties import graph_properties

    rows = [
        graph_properties(g).as_row()
        for g in (webcrawl(args.scale), kron(args.scale), rmat(args.scale))
    ]
    print(format_table(rows))
    return 0


def _cmd_calibrate(_args) -> int:
    from repro.bench.calibration import calibration_report

    rows = []
    ok = True
    for name, (value, low, high) in sorted(calibration_report().items()):
        in_range = low <= value <= high
        ok &= in_range
        rows.append({
            "observable": name,
            "value": f"{value:.4g}",
            "range": f"[{low:.3g}, {high:.3g}]",
            "ok": "yes" if in_range else "NO",
        })
    print(format_table(rows))
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    import json

    from repro.serve import (
        ServeConfig,
        ServeEngine,
        TapeSpec,
        format_serve_report,
        generate_tape,
        tape_from_json,
        tape_to_json,
    )

    if args.tape:
        try:
            with open(args.tape) as fh:
                spec, queries = tape_from_json(fh.read())
        except (OSError, ValueError) as exc:
            print(f"error: cannot load tape {args.tape}: {exc}",
                  file=sys.stderr)
            return 2
        if spec.scale > args.scale:
            print(f"error: tape draws sources from scale {spec.scale} "
                  f"but the resident graph is scale {args.scale}",
                  file=sys.stderr)
            return 2
    else:
        spec = TapeSpec(
            seed=args.tape_seed, num_queries=args.tape_queries,
            scale=args.scale, mean_gap=args.tape_gap,
        )
        queries = generate_tape(spec)

    obs_path = args.obs
    obs_config = None
    profile = None
    if obs_path or args.obs_prom:
        from repro.obs import ObsConfig
        obs_config = ObsConfig()
        if obs_path is None:
            obs_path = "obs-serve.json"
    if args.obs_prom:
        from repro.obs import ProfileContext
        profile = ProfileContext()

    config = ServeConfig(
        graph=args.graph, scale=args.scale, hosts=args.hosts,
        layer=args.layer, system=args.system, machine=args.machine,
        seed=args.seed, max_batch=args.max_batch,
        ppr_rounds=args.ppr_rounds, fault_plan=args.fault_plan,
        fault_seed=args.fault_seed, sanitize=args.sanitize,
    )
    try:
        engine = ServeEngine(config, obs_config=obs_config,
                             profile=profile, commstats=args.comm)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = engine.drain(queries)
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return SANITIZER_EXIT_CODE

    if args.save_tape:
        with open(args.save_tape, "w") as fh:
            fh.write(tape_to_json(spec, queries))
        print(f"tape written to {args.save_tape}")
    if args.report:
        # Deterministic by default: replaying the same tape must produce
        # a byte-identical report file.  Wall-clock throughput stays
        # available via ServeReport.as_dict(include_wall=True).
        with open(args.report, "w") as fh:
            json.dump(report.as_dict(), fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"report written to {args.report}")
    if obs_config is not None and engine.last_obs is not None:
        from repro.obs import save_prometheus, save_timeline

        timeline = engine.last_obs.as_timeline(meta={
            "scenario": f"serve/{args.graph}{args.scale}"
                        f"@{args.hosts}h/{args.layer}",
            "layer": args.layer, "hosts": args.hosts,
        })
        save_timeline(obs_path, timeline)
        print(f"obs timeline written to {obs_path} "
              f"({len(timeline['events'])} events)")
        if args.obs_prom:
            counters = (
                profile.counters_dict() if profile is not None else None
            )
            save_prometheus(args.obs_prom, timeline, counters=counters)
            with open(args.obs_prom, "a") as fh:
                lat_lines = report.latency_summary().prometheus_lines(
                    "repro_serve_query_latency_seconds"
                )
                fh.write("\n".join(lat_lines) + "\n")
            print(f"obs prometheus metrics written to {args.obs_prom}")
    print(format_serve_report(report))
    if report.sanitizer_violations:
        print(format_violations(report.sanitizer_violations),
              file=sys.stderr)
        return SANITIZER_EXIT_CODE
    return 0


def _cmd_commstats(args) -> int:
    import json as _json

    from repro.obs.commstats import (
        CommStatsContext,
        baseline_entry,
        baseline_to_json,
        check_comm_baseline,
        comm_doc_to_csv,
        comm_doc_to_json,
        comm_prometheus_lines,
        format_comm_report,
        make_baseline,
        render_heatmap,
    )

    canonical = bool(
        args.canonical or args.write_baseline or args.check_baseline
    )
    if canonical:
        from repro.bench.core_bench import CANONICAL_SCENARIOS
        if args.fault_plan:
            print("error: --fault-plan is incompatible with the "
                  "canonical baseline scenarios", file=sys.stderr)
            return 2
        scenarios = list(CANONICAL_SCENARIOS)
    else:
        scenarios = [Scenario(
            app=args.app, graph=args.graph, scale=args.scale,
            hosts=args.hosts, layer=args.layer, system=args.system,
            machine=args.machine, mpi_impl=args.mpi_impl,
            pagerank_rounds=args.pagerank_rounds, seed=args.seed,
        )]

    docs = {}
    for sc in scenarios:
        ctx = CommStatsContext()
        build_engine(sc, fault_plan=args.fault_plan, commstats=ctx).run()
        docs[sc.label()] = ctx.comm_doc(meta={"scenario": sc.label()})

    if canonical:
        for label in sorted(docs):
            totals = docs[label]["totals"]
            print(f"{label}: {totals['wire_msgs']} pkts / "
                  f"{totals['wire_bytes']} wire bytes, "
                  f"{totals['blob_msgs']} blobs / "
                  f"{totals['blob_bytes']} payload bytes, "
                  f"fingerprint {docs[label]['fingerprint']}")
    else:
        print(format_comm_report(next(iter(docs.values()))))

    if args.json_path:
        if canonical:
            payload = _json.dumps(docs, sort_keys=True, indent=2) + "\n"
        else:
            payload = comm_doc_to_json(next(iter(docs.values())))
        with open(args.json_path, "w") as fh:
            fh.write(payload)
        print(f"comm-doc json written to {args.json_path}")
    if args.csv_path:
        if canonical:
            print("error: --csv needs single-scenario mode",
                  file=sys.stderr)
            return 2
        with open(args.csv_path, "w") as fh:
            fh.write(comm_doc_to_csv(next(iter(docs.values()))))
        print(f"comm csv written to {args.csv_path}")
    if args.heatmap_path:
        chunks = []
        for label in sorted(docs):
            chunks.append(f"== {label} ==")
            chunks.append(render_heatmap(docs[label]))
            chunks.append("")
        with open(args.heatmap_path, "w") as fh:
            fh.write("\n".join(chunks))
        print(f"heatmap written to {args.heatmap_path}")
    if args.prom_path:
        if canonical:
            print("error: --prom needs single-scenario mode",
                  file=sys.stderr)
            return 2
        with open(args.prom_path, "w") as fh:
            fh.write(
                "\n".join(comm_prometheus_lines(next(iter(docs.values()))))
                + "\n"
            )
        print(f"comm prometheus metrics written to {args.prom_path}")

    entries = {label: baseline_entry(docs[label]) for label in docs}
    if args.write_baseline:
        with open(args.write_baseline, "w") as fh:
            fh.write(baseline_to_json(make_baseline(entries)))
        print(f"comm baseline written to {args.write_baseline}")
        return 0
    if args.check_baseline:
        try:
            with open(args.check_baseline) as fh:
                committed = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline "
                  f"{args.check_baseline}: {exc}", file=sys.stderr)
            return 2
        problems = check_comm_baseline(entries, committed)
        if problems:
            for problem in problems:
                print(f"comm drift: {problem}", file=sys.stderr)
            print(f"{len(problems)} drift(s) vs {args.check_baseline}; "
                  "communication volume changed — fix the regression or "
                  "regenerate deliberately with `repro commstats "
                  f"--canonical --write-baseline {args.check_baseline}`",
                  file=sys.stderr)
            return 1
        print(f"comm fingerprints match {args.check_baseline}")
    return 0


def _cmd_bench_serve(args) -> int:
    import json

    from repro.bench.serve_bench import (
        bench_doc_to_json,
        check_against_file,
        serve_benchmark,
    )

    doc = serve_benchmark()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(bench_doc_to_json(doc))
        print(f"benchmark written to {args.out}")
    serve_doc = doc["serve"]
    print(f"serve: {serve_doc['throughput']['queries_per_sec']} queries/s, "
          f"p50 {serve_doc['latency']['p50_us']}us, "
          f"p95 {serve_doc['latency']['p95_us']}us, "
          f"p99 {serve_doc['latency']['p99_us']}us, "
          f"{serve_doc['throughput']['messages_per_sec']} msgs/s")
    if args.check:
        diffs = check_against_file(doc, args.check)
        if diffs is None:
            print(f"error: cannot read committed benchmark {args.check}",
                  file=sys.stderr)
            return 1
        if diffs:
            for d in diffs[:20]:
                print(f"benchmark drift: {d}", file=sys.stderr)
            print(f"{len(diffs)} mismatch(es) vs {args.check}; regenerate "
                  f"with `repro bench-serve --out {args.check}` if the "
                  "change is intended", file=sys.stderr)
            return 1
        print(f"matches committed {args.check}")
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import ProfileContext, wall_now

    sc = Scenario(
        app=args.app, graph=args.graph, scale=args.scale, hosts=args.hosts,
        layer=args.layer, system=args.system, machine=args.machine,
        mpi_impl=args.mpi_impl, pagerank_rounds=args.pagerank_rounds,
        seed=args.seed,
    )
    ctx = ProfileContext()
    engine = build_engine(sc, profile=ctx)
    wall0 = wall_now()
    m = engine.run().stamp_wall(wall_now() - wall0)
    print(format_table([m.row(include_wall=True)]))
    print()
    print(ctx.format_top(args.top))
    print()
    print(ctx.format_counters())
    if args.json_path:
        ctx.save_json(args.json_path, meta={
            "scenario": sc.label(),
            "wall_seconds": round(m.wall_seconds, 6),
        })
        print(f"\nprofile json written to {args.json_path}")
    if args.collapsed_path:
        ctx.save_collapsed(args.collapsed_path)
        print(f"collapsed stacks written to {args.collapsed_path} "
              "(feed to flamegraph.pl / speedscope)")
    return 0


def _cmd_bench_core(args) -> int:
    import json as _json

    from repro.bench.core_bench import (
        bench_core_to_json,
        check_core_against_file,
        compare_core_perf,
        core_benchmark,
        measure_overhead,
        with_trajectory,
    )

    def _load(path):
        try:
            with open(path) as fh:
                return _json.load(fh)
        except (OSError, ValueError):
            return None

    try:
        doc = core_benchmark(repeats=args.repeats)
    except AssertionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out:
        if args.trajectory_note is not None:
            doc = with_trajectory(doc, _load(args.out), args.trajectory_note)
        with open(args.out, "w") as fh:
            fh.write(bench_core_to_json(doc))
        print(f"benchmark written to {args.out}")
    for row in doc["scenarios"]:
        sim, wall = row["sim"], row["wall"]
        print(f"{row['label']}: {sim['events_fired']} events in "
              f"{wall['wall_seconds']}s wall "
              f"({wall['events_per_sec']} events/s, "
              f"{wall['sim_msgs_per_sec']} sim-msgs/s), "
              f"fingerprint {sim['fingerprint']}, "
              f"comm {sim['comm']['wire_bytes']} B "
              f"[{sim['comm']['fingerprint']}]")
    rc = 0
    if args.check:
        diffs = check_core_against_file(doc, args.check)
        if diffs is None:
            print(f"error: cannot read committed benchmark {args.check}",
                  file=sys.stderr)
            return 1
        if diffs:
            for d in diffs[:20]:
                print(f"benchmark drift: {d}", file=sys.stderr)
            print(f"{len(diffs)} mismatch(es) vs {args.check}; regenerate "
                  f"with `repro bench-core --out {args.check}` if the "
                  "change is intended", file=sys.stderr)
            return 1
        print(f"deterministic blocks match committed {args.check} "
              "(wall-clock ignored)")
    if args.compare_path:
        old = _load(args.compare_path)
        if old is None:
            print(f"error: cannot read benchmark {args.compare_path}",
                  file=sys.stderr)
            return 1
        lines, errors, deltas = compare_core_perf(doc, old)
        for line in lines:
            print(f"perf delta: {line}")
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        if errors:
            return 1
        if args.regress_limit is not None:
            bad = {
                label: pct for label, pct in deltas.items()
                if pct < -args.regress_limit
            }
            for label, pct in sorted(bad.items()):
                print(f"error: {label}: events/sec regressed {pct:+.1f}% "
                      f"(limit -{args.regress_limit}%)", file=sys.stderr)
            if bad:
                rc = 1
    if args.overhead:
        o = measure_overhead()
        print(f"profiler overhead on {o['scenario']}: "
              f"{o['wall_off']}s off vs {o['wall_on']}s on "
              f"({o['overhead_pct']:+.2f}%)")
        if (args.overhead_limit is not None
                and o["overhead_pct"] > args.overhead_limit):
            print(f"error: overhead {o['overhead_pct']}% exceeds limit "
                  f"{args.overhead_limit}%", file=sys.stderr)
            rc = 1
    return rc


def _cmd_lint(args) -> int:
    from repro.sanitize.lint import (
        format_findings,
        lint_paths,
        repo_package_root,
        report_dict,
        save_report,
    )

    paths = args.paths or [repo_package_root()]
    result = lint_paths(paths)
    print(format_findings(result))
    if args.json_path:
        save_report(result, args.json_path)
        print(f"json report written to {args.json_path}")
    if args.sarif_path:
        from repro.sanitize.report import save_sarif
        save_sarif(report_dict(result), args.sarif_path)
        print(f"sarif report written to {args.sarif_path}")
    return 1 if result.findings else 0


def _cmd_analyze(args) -> int:
    from repro.sanitize import proto
    from repro.sanitize.lint import repo_package_root
    from repro.sanitize.report import save_json, save_sarif

    if args.selftest:
        from repro.sanitize.corpus import (
            BAD_SNIPPETS,
            CLEAN_SNIPPETS,
            run_selftest,
        )
        failures, hits = run_selftest()
        for failure in failures:
            print(f"corpus failure: {failure}", file=sys.stderr)
        caught = sum(hits.values())
        print(f"mutation corpus: {caught}/{len(BAD_SNIPPETS)} seeded "
              f"bugs caught by their intended rule, "
              f"{len(CLEAN_SNIPPETS)} clean snippets checked, "
              f"{len(failures)} failure(s)")
        print("per-rule: " + ", ".join(
            f"{rule}={n}" for rule, n in sorted(hits.items())))
        return 1 if failures else 0

    paths = args.paths or [repo_package_root()]
    result = proto.analyze_paths(paths)
    print(proto.format_findings(result))
    if args.json_path:
        save_json(proto.report_dict(result), args.json_path)
        print(f"json report written to {args.json_path}")
    if args.sarif_path:
        save_sarif(proto.report_dict(result), args.sarif_path)
        print(f"sarif report written to {args.sarif_path}")
    if args.write_baseline:
        proto.save_baseline(result.findings, args.write_baseline)
        print(f"baseline written to {args.write_baseline}; edit the "
              "justification fields before committing")
        return 0
    if args.check_baseline:
        try:
            accepted = proto.load_baseline(args.check_baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline "
                  f"{args.check_baseline}: {exc}", file=sys.stderr)
            return 2
        new, stale = proto.diff_baseline(result.findings, accepted)
        for entry in stale:
            print(f"warning: stale baseline entry {entry['rule']} "
                  f"{entry['path']} [{entry.get('symbol', '')}] — the "
                  "finding no longer fires; remove it",
                  file=sys.stderr)
        if new:
            for f in new:
                print(f"new finding: {f}", file=sys.stderr)
            print(f"{len(new)} finding(s) not in baseline "
                  f"{args.check_baseline}; fix them or accept them "
                  "with a justification", file=sys.stderr)
            return 1
        print(f"all {len(result.findings)} finding(s) accepted by "
              f"{args.check_baseline}")
        return 0
    return 1 if result.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "explain": _cmd_explain,
        "chaos": _cmd_chaos,
        "sweep": _cmd_sweep,
        "micro": _cmd_micro,
        "inputs": _cmd_inputs,
        "calibrate": _cmd_calibrate,
        "serve": _cmd_serve,
        "commstats": _cmd_commstats,
        "bench-serve": _cmd_bench_serve,
        "profile": _cmd_profile,
        "bench-core": _cmd_bench_core,
        "lint": _cmd_lint,
        "analyze": _cmd_analyze,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
