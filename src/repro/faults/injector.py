"""The fault injector: deterministic adversity for the simulated fabric.

One :class:`FaultInjector` is installed per run (``injector.install(fabric)``
sets ``fabric.faults`` and ``env.faults``).  The NIC and the simulation
kernel consult it through four narrow hooks, each a no-op-fast check when
the corresponding fault kinds are absent from the plan:

* :meth:`tx_blocked`   — NIC-stall windows (``Nic.try_inject``);
* :meth:`link_adjust`  — latency/bandwidth degradation windows;
* :meth:`transit_fate` — per-packet drop/duplicate/reorder draws;
* :meth:`dilate`       — host-straggler stretching of charged CPU time
  (``Environment.charged_timeout``).

Every probabilistic draw comes from a per-spec stream of a
:class:`repro.sim.rng.RngFactory` rooted at the plan's seed, so the same
(plan, scenario) pair replays a byte-identical fault trace.  The trace —
one :class:`FaultEvent` per injected packet fault — is the determinism
witness and feeds Chrome-trace instant events when a tracer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional

from repro.faults.plan import FaultPlan
from repro.sim.monitor import StatRegistry
from repro.sim.rng import RngFactory

__all__ = ["FaultEvent", "TransitFate", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected packet fault (the unit of the replayable trace)."""

    time: float
    kind: str
    src: int
    dst: int
    ptype: str
    size: int
    #: reorder/duplicate: the extra delay drawn for the (second) delivery.
    delay: float = 0.0


class TransitFate(NamedTuple):
    """What happens to one packet in transit."""

    dropped: bool
    duplicated: bool
    delay: float      # extra arrival delay (reorder)
    dup_delay: float  # extra delay of the duplicate copy


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against live simulation events."""

    def __init__(self, env, plan: FaultPlan, tracer=None):
        self.env = env
        self.plan = plan
        self.tracer = tracer
        self.stats = StatRegistry("faults")
        self.trace: List[FaultEvent] = []
        rng = RngFactory(plan.seed)
        # One independent stream per spec: adding a spec never perturbs
        # the draws of the others.
        self._packet_specs = []
        for i, spec in enumerate(plan.specs):
            if spec.kind in ("drop", "duplicate", "reorder"):
                stream = rng.register(
                    f"faults.{spec.kind}.{i}", owner=f"fault spec #{i}"
                )
                self._packet_specs.append((spec, stream))
        self._stall_specs = [s for s in plan.specs if s.kind == "nic_stall"]
        self._degrade_specs = [s for s in plan.specs if s.kind == "degrade"]
        self._straggler_specs = sorted(
            (s for s in plan.specs if s.kind == "straggler"),
            key=lambda s: s.start,
        )
        if tracer is not None:
            self._trace_windows()

    # ------------------------------------------------------------------
    def install(self, fabric) -> "FaultInjector":
        """Attach to a fabric (and its environment).  Must run before the
        communication layers are built so LCI can arm its recovery
        protocol."""
        fabric.faults = self
        self.env.faults = self
        return self

    # ------------------------------------------------------------------
    # NIC hooks
    # ------------------------------------------------------------------
    def tx_blocked(self, host: int, pkt) -> bool:
        """True when ``host``'s NIC is inside a stall window: the inject
        attempt fails exactly like a full TX queue (retryable)."""
        now = self.env.now
        for spec in self._stall_specs:
            if spec.matches_host(host) and spec.in_window(now):
                self.stats.counter("nic_stall_rejects").add()
                return True
        return False

    def link_adjust(self, pkt, ser: float, latency: float):
        """Apply link-degradation windows to one packet's wire costs."""
        now = self.env.now
        for spec in self._degrade_specs:
            if spec.matches_host(pkt.src) and spec.in_window(now):
                ser = ser / spec.bandwidth_factor
                latency = latency * spec.factor
                self.stats.counter("degraded_pkts").add()
        return ser, latency

    def transit_fate(self, pkt) -> Optional[TransitFate]:
        """Draw this packet's fate; ``None`` when no packet spec applies
        (the common case — the caller then keeps the unfaulted path)."""
        if not self._packet_specs:
            return None
        now = self.env.now
        dropped = False
        duplicated = False
        delay = 0.0
        dup_delay = 0.0
        touched = False
        for spec, stream in self._packet_specs:
            if not spec.matches_packet(pkt, now):
                continue
            touched = True
            if spec.kind == "drop":
                if not dropped and stream.random() < spec.rate:
                    dropped = True
                    self._record("drop", pkt, now)
            elif spec.kind == "duplicate":
                if not duplicated and stream.random() < spec.rate:
                    duplicated = True
                    dup_delay = spec.delay
                    self._record("duplicate", pkt, now, delay=dup_delay)
            else:  # reorder
                if stream.random() < spec.rate:
                    extra = float(stream.random()) * spec.delay
                    delay += extra
                    self._record("reorder", pkt, now, delay=extra)
        if not touched or not (dropped or duplicated or delay):
            return None
        return TransitFate(dropped, duplicated, delay, dup_delay)

    # ------------------------------------------------------------------
    # Simulation-kernel hook (host stragglers)
    # ------------------------------------------------------------------
    def dilate(self, host: int, seconds: float, now: float) -> float:
        """Wall time for ``seconds`` of CPU work starting at ``now`` on
        ``host``, accounting for straggler windows (the CPU runs at
        ``1/factor`` speed inside a window).  Windows are walked in start
        order; overlapping windows for one host are a plan-author error
        and the first one wins for the overlapped span."""
        if not self._straggler_specs or seconds <= 0:
            return seconds
        t = now
        work = seconds
        wall = 0.0
        for spec in self._straggler_specs:
            if not spec.matches_host(host) or spec.end <= t:
                continue
            if work <= 0:
                break
            if t < spec.start:
                # Full speed until the window opens.
                done = min(work, spec.start - t)
                wall += done
                t += done
                work -= done
                if work <= 0:
                    break
            if t < spec.end:
                # Inside the window: each unit of work costs factor wall.
                achievable = (spec.end - t) / spec.factor
                done = min(work, achievable)
                wall += done * spec.factor
                t += done * spec.factor
                work -= done
        wall += max(0.0, work)
        if wall > seconds:
            self.stats.counter("straggler_dilations").add()
        return wall

    # ------------------------------------------------------------------
    # Trace plumbing
    # ------------------------------------------------------------------
    def _record(self, kind: str, pkt, now: float, delay: float = 0.0) -> None:
        self.stats.counter(f"{kind}s").add()
        ev = FaultEvent(
            now, kind, pkt.src, pkt.dst, pkt.ptype.name, pkt.size, delay
        )
        self.trace.append(ev)
        if self.tracer is not None:
            self.tracer.instant(
                pkt.src, f"{kind} {pkt.ptype.name}->{pkt.dst}", now,
                category="fault", size=pkt.size, delay=delay,
            )

    def _trace_windows(self) -> None:
        """Mark windowed faults on the timeline (instants at both edges)."""
        import math

        for spec in self.plan.specs:
            if spec.kind not in ("degrade", "nic_stall", "straggler"):
                continue
            host = spec.host if spec.host is not None else -1
            args = {"factor": spec.factor}
            self.tracer.instant(
                host, f"{spec.kind} begin", spec.start,
                category="fault", **args,
            )
            if not math.isinf(spec.end):
                self.tracer.instant(
                    host, f"{spec.kind} end", spec.end,
                    category="fault", **args,
                )

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """Flat snapshot of the injector's counters."""
        return {
            name: int(v)
            for name, v in self.stats.counter_values().items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.plan.name or self.plan.describe()!r})"
