"""Deterministic fault injection and resilience measurement.

Public surface:

* :class:`FaultSpec` / :class:`FaultPlan` — declarative fault models
  (:mod:`repro.faults.plan`), plus the :data:`NAMED_PLANS` registry and
  :func:`get_plan` resolver;
* :class:`FaultInjector` — evaluates a plan against the live fabric
  (:mod:`repro.faults.injector`); installed via
  ``EngineConfig.fault_plan``;
* :class:`LostCompletionError` — the simulated hang of a layer whose
  transport assumptions a fault violated;
* :mod:`repro.faults.harness` — the chaos harness behind ``repro chaos``
  (imported lazily by its consumers: it pulls in the benchmark stack,
  which itself imports the engine, which imports this package).
"""

from repro.faults.injector import FaultEvent, FaultInjector, TransitFate
from repro.faults.plan import (
    NAMED_PLANS,
    PACKET_FAULT_KINDS,
    WINDOW_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    LostCompletionError,
    get_plan,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "TransitFate",
    "LostCompletionError",
    "NAMED_PLANS",
    "PACKET_FAULT_KINDS",
    "WINDOW_FAULT_KINDS",
    "get_plan",
]
