"""The chaos harness: run a scenario under a fault plan, judge the result.

For each (scenario, plan) pair the harness runs the scenario twice on
fresh simulated clusters — once fault-free, once with the plan installed
— and reports one of four outcomes:

* ``recovered`` — the run finished and produced exactly the fault-free
  answer (LCI under packet faults: the ack/retransmit protocol absorbs
  them, at a measurable overhead);
* ``degraded``  — the run finished but the answer differs (should not
  happen for any current layer; it would indicate silent corruption);
* ``hung``      — a lost completion deadlocked the layer
  (:class:`LostCompletionError`; MPI under drops);
* ``crashed``   — the layer raised a simulated fatal error
  (:class:`MPIProtocolError` on duplicated rendezvous data,
  :class:`MPIResourceExhausted`, or a dead-link
  :class:`SimulationError`).

This module imports the benchmark stack, which imports the engine, which
imports :mod:`repro.faults` — so nothing here may be imported from the
package ``__init__``; the CLI and tests import it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.scenarios import Scenario, build_engine
from repro.faults.plan import LostCompletionError, get_plan
from repro.mpi.exceptions import MPIError
from repro.sanitize.runtime import format_violations
from repro.sim.engine import SimulationError

__all__ = [
    "ChaosReport",
    "run_chaos",
    "format_chaos_report",
    "ServeChaosReport",
    "run_serve_chaos",
    "format_serve_chaos_report",
]

#: Recovery-protocol counters surfaced in the report.
RECOVERY_COUNTERS = (
    "rel_sends",
    "retransmissions",
    "acks",
    "dup_pkts_dropped",
    "dup_acks",
    "retransmit_tx_full",
    "ack_tx_full",
)


@dataclass
class ChaosReport:
    """Outcome of one scenario under one fault plan."""

    scenario: str
    layer: str
    plan: str
    outcome: str                     # recovered | degraded | hung | crashed
    error: str = ""
    baseline_seconds: float = 0.0
    faulted_seconds: float = 0.0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    recovery: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    #: Warn-mode sanitizer violations from both runs (baseline first).
    sanitizer_violations: List[Dict] = field(default_factory=list)
    #: Fault-attributed traffic deltas (baseline vs. faulted wire
    #: volume, plus what the injector actually dropped), populated when
    #: :func:`run_chaos` ran with ``commstats=True``.
    comm: Dict = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        return self.outcome == "recovered"

    @property
    def overhead(self) -> float:
        """Recovery overhead: extra simulated time over the fault-free
        run, as a fraction (0.08 = 8% slower).  0 for hung/crashed."""
        if self.outcome in ("hung", "crashed") or self.baseline_seconds <= 0:
            return 0.0
        return self.faulted_seconds / self.baseline_seconds - 1.0

    def row(self) -> dict:
        return {
            "scenario": self.scenario,
            "plan": self.plan,
            "outcome": self.outcome,
            "time_base": f"{self.baseline_seconds * 1e3:.3f}ms",
            "time_fault": (
                f"{self.faulted_seconds * 1e3:.3f}ms"
                if self.outcome in ("recovered", "degraded") else "-"
            ),
            "overhead": (
                f"{self.overhead * 100:+.1f}%"
                if self.outcome in ("recovered", "degraded") else "-"
            ),
            "faults": sum(self.fault_counts.values()),
            "retransmits": self.recovery.get("retransmissions", 0),
        }


def run_chaos(
    sc: Scenario,
    plan,
    fault_seed: Optional[int] = None,
    tracer=None,
    obs=None,
    commstats: bool = False,
) -> ChaosReport:
    """Run ``sc`` fault-free and under ``plan``; compare and report.

    ``plan`` may be a :class:`FaultPlan` or the name of one.  The
    baseline uses a fresh cluster with identical seeds, so any output
    difference is attributable to the faults.  ``obs`` (an
    :class:`repro.obs.ObsContext`) attaches lifecycle tracing to the
    *faulted* run only — the baseline stays instrumentation-free.
    ``commstats=True`` attaches a traffic matrix to *both* runs and
    fills :attr:`ChaosReport.comm` with fault-attributed byte deltas
    (retransmissions show up as extra wire volume over the baseline;
    the injector's kills as the dropped matrix).
    """
    plan = get_plan(plan, fault_seed)

    base_comm = faulted_comm = None
    if commstats:
        from repro.obs.commstats import CommStatsContext

        base_comm = CommStatsContext()
        faulted_comm = CommStatsContext()

    base_engine = build_engine(sc, commstats=base_comm)
    base_metrics = base_engine.run()
    base_answer = base_engine.assemble_global()
    sanitizer_violations: List[Dict] = list(base_metrics.sanitizer_violations)

    report = ChaosReport(
        scenario=sc.label(),
        layer=sc.layer,
        plan=plan.name or plan.describe(),
        outcome="recovered",
        baseline_seconds=base_metrics.total_seconds,
    )
    report.sanitizer_violations = sanitizer_violations
    if plan.empty:
        report.faulted_seconds = base_metrics.total_seconds
        report.rounds = base_metrics.rounds
        if base_comm is not None:
            base_doc = base_comm.comm_doc()
            report.comm = _comm_delta(base_doc, base_doc)
        return report

    engine = build_engine(sc, fault_plan=plan, tracer=tracer, obs=obs,
                          commstats=faulted_comm)
    try:
        metrics = engine.run()
    except LostCompletionError as exc:
        report.outcome = "hung"
        report.error = str(exc)
    except (MPIError, SimulationError) as exc:
        report.outcome = "crashed"
        report.error = f"{type(exc).__name__}: {exc}"
    else:
        report.faulted_seconds = metrics.total_seconds
        report.rounds = metrics.rounds
        answer = engine.assemble_global()
        same = (
            np.allclose(answer, base_answer, rtol=1e-9, atol=0)
            if np.issubdtype(answer.dtype, np.floating)
            else np.array_equal(answer, base_answer)
        )
        if not same:
            report.outcome = "degraded"
            report.error = "answer differs from fault-free run"
        report.recovery = {
            k: metrics.layer_counters.get(k, 0)
            for k in RECOVERY_COUNTERS
            if metrics.layer_counters.get(k, 0)
        }
    if engine.injector is not None:
        report.fault_counts = engine.injector.counts()
    if engine.sanitizer_ctx is not None:
        # The context (not the metrics) has the violations even when the
        # faulted run hung or crashed before producing metrics.
        sanitizer_violations.extend(engine.sanitizer_ctx.as_dicts())
    if faulted_comm is not None:
        # Counts are recorded at injection time, so the faulted matrix
        # is meaningful even when the run later hung or crashed.
        report.comm = _comm_delta(base_comm.comm_doc(),
                                  faulted_comm.comm_doc())
    return report


def _comm_delta(base_doc: dict, fault_doc: dict) -> Dict:
    """Fault-attributed traffic deltas between two comm-docs."""
    b, f = base_doc["totals"], fault_doc["totals"]
    return {
        "baseline_msgs": b["wire_msgs"],
        "baseline_bytes": b["wire_bytes"],
        "faulted_msgs": f["wire_msgs"],
        "faulted_bytes": f["wire_bytes"],
        "delta_msgs": f["wire_msgs"] - b["wire_msgs"],
        "delta_bytes": f["wire_bytes"] - b["wire_bytes"],
        "dropped_msgs": f["dropped_msgs"],
        "dropped_bytes": f["dropped_bytes"],
        "baseline_fingerprint": base_doc["fingerprint"],
        "faulted_fingerprint": fault_doc["fingerprint"],
    }


# ----------------------------------------------------------------------
# Serve-mode chaos: graceful degradation of the query service
# ----------------------------------------------------------------------
@dataclass
class ServeChaosReport:
    """One traffic tape served fault-free vs. under a fault plan.

    The service's resilience contract is *graceful degradation*: a
    fault that hangs or crashes a batch fails only that batch's queries
    — the service keeps draining the tape, and every query it does
    answer matches the fault-free answer.
    """

    plan: str
    #: Query status counts {status: count} for each run.
    baseline_counts: Dict[str, int] = field(default_factory=dict)
    faulted_counts: Dict[str, int] = field(default_factory=dict)
    #: Queries answered OK in *both* runs whose answers differ (silent
    #: corruption; must be 0).
    answer_mismatches: int = 0
    #: Queries the faulted run failed or shed that the baseline served.
    shed: int = 0
    baseline_clock: float = 0.0
    faulted_clock: float = 0.0

    @property
    def graceful(self) -> bool:
        """Served the whole tape with zero silent corruption."""
        return self.answer_mismatches == 0

    @property
    def overhead(self) -> float:
        if self.baseline_clock <= 0:
            return 0.0
        return self.faulted_clock / self.baseline_clock - 1.0


def run_serve_chaos(config, tape_spec, plan,
                    fault_seed: Optional[int] = None) -> ServeChaosReport:
    """Serve one tape on two fresh services: fault-free, then faulted.

    ``config`` is a :class:`repro.serve.ServeConfig` (its own
    ``fault_plan`` field is ignored), ``tape_spec`` a
    :class:`repro.serve.TapeSpec`.  Deterministic end to end: both
    services see the identical query stream.
    """
    from dataclasses import replace

    from repro.serve import ServeEngine, generate_tape

    plan = get_plan(plan, fault_seed)
    queries = generate_tape(tape_spec)

    base = ServeEngine(replace(config, fault_plan=None))
    base_report = base.drain(list(queries))
    faulted = ServeEngine(replace(config, fault_plan=None))
    # The resolver already ran; install the plan object directly so
    # unnamed plans work too.
    faulted._plan = None if plan.empty else plan
    fault_report = faulted.drain(list(queries))

    def counts(report) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in report.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    base_by_qid = {r.query.qid: r for r in base_report.results}
    mismatches = 0
    shed = 0
    for r in fault_report.results:
        b = base_by_qid[r.query.qid]
        if r.status != "ok":
            if b.status == "ok":
                shed += 1
            continue
        if b.status != "ok" or b.answer is None or r.answer is None:
            continue
        if np.issubdtype(r.answer.dtype, np.floating):
            same = np.allclose(r.answer, b.answer, rtol=1e-9, atol=0)
        else:
            same = np.array_equal(r.answer, b.answer)
        if not same:
            mismatches += 1
    return ServeChaosReport(
        plan=plan.name or plan.describe(),
        baseline_counts=counts(base_report),
        faulted_counts=counts(fault_report),
        answer_mismatches=mismatches,
        shed=shed,
        baseline_clock=base_report.clock,
        faulted_clock=fault_report.clock,
    )


def format_serve_chaos_report(report: ServeChaosReport) -> str:
    def fmt(c: Dict[str, int]) -> str:
        return ", ".join(f"{k}={c[k]}" for k in sorted(c))

    return "\n".join([
        f"plan      : {report.plan}",
        f"baseline  : {fmt(report.baseline_counts)} "
        f"in {report.baseline_clock * 1e3:.3f} ms",
        f"faulted   : {fmt(report.faulted_counts)} "
        f"in {report.faulted_clock * 1e3:.3f} ms "
        f"({report.overhead * 100:+.1f}%)",
        f"shed      : {report.shed} queries lost to faults",
        f"mismatches: {report.answer_mismatches} "
        f"(graceful={'yes' if report.graceful else 'NO'})",
    ])


def format_chaos_report(report: ChaosReport) -> str:
    """Human-readable multi-line summary for the CLI."""
    lines = [
        f"scenario : {report.scenario}",
        f"plan     : {report.plan}",
        f"outcome  : {report.outcome}"
        + (f" ({report.error})" if report.error else ""),
        f"baseline : {report.baseline_seconds * 1e3:.3f} ms",
    ]
    if report.outcome in ("recovered", "degraded"):
        lines.append(
            f"faulted  : {report.faulted_seconds * 1e3:.3f} ms "
            f"({report.overhead * 100:+.1f}% recovery overhead, "
            f"{report.rounds} rounds)"
        )
    if report.fault_counts:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(report.fault_counts.items())
        )
        lines.append(f"injected : {pairs}")
    if report.recovery:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(report.recovery.items())
        )
        lines.append(f"recovery : {pairs}")
    if report.comm:
        c = report.comm
        lines.append(
            f"comm     : {c['baseline_bytes']} B fault-free -> "
            f"{c['faulted_bytes']} B faulted "
            f"({c['delta_bytes']:+d} B, {c['delta_msgs']:+d} pkts); "
            f"injector dropped {c['dropped_msgs']} pkts / "
            f"{c['dropped_bytes']} B"
        )
    if report.sanitizer_violations:
        lines.append(format_violations(report.sanitizer_violations))
    return "\n".join(lines)
