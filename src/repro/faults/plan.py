"""Fault plans: declarative, seedable descriptions of network adversity.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries plus a seed.
Installing a plan on a simulated cluster (``EngineConfig.fault_plan``)
activates the injection hooks in :mod:`repro.netapi.nic` and
:mod:`repro.sim.engine`; without a plan those hooks are no-ops and the
happy path is untouched.

Fault kinds
-----------

Per-packet (probabilistic; drawn from a named :class:`repro.sim.rng`
stream so identical seeds replay identical fault traces):

* ``drop``       — the packet vanishes in transit.  The sender's NIC saw
  it depart; nothing arrives.  LCI's ack/retransmit protocol recovers;
  the MPI layers hang on the lost completion (Section III-B's failure
  mode, surfaced as :class:`LostCompletionError`).
* ``duplicate``  — a second copy of the packet is delivered ``delay``
  seconds after the first.  LCI dedupes by sequence number; MPI grows
  its unexpected queue or double-completes a request
  (``MPIProtocolError``).
* ``reorder``    — the packet is delayed by a uniform draw in
  ``[0, delay]``, breaking the fabric's per-pair FIFO.

Windowed (deterministic intervals, no draws):

* ``degrade``    — within the window, packets leaving host ``host`` (or
  any host when ``None``) see latency multiplied by ``factor`` and
  bandwidth multiplied by ``bandwidth_factor``.
* ``nic_stall``  — within the window, ``try_inject`` on host ``host``
  fails as if the TX queue were full (the retryable condition the paper
  says LCI surfaces and MPI hides).
* ``straggler``  — within the window, CPU work charged by host ``host``
  runs ``factor``× slower (compute, gather, and scatter phases).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

__all__ = [
    "PACKET_FAULT_KINDS",
    "WINDOW_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "LostCompletionError",
    "NAMED_PLANS",
    "get_plan",
]

PACKET_FAULT_KINDS = ("drop", "duplicate", "reorder")
WINDOW_FAULT_KINDS = ("degrade", "nic_stall", "straggler")


class LostCompletionError(RuntimeError):
    """A run hung because a completion was lost to an injected fault.

    Raised by the engine when a host process never finishes under fault
    injection: the layer's transport assumed reliable delivery (the MPI
    layers do) and a dropped packet left it waiting forever.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One schedulable fault.  See the module docstring for the kinds."""

    kind: str
    #: Per-packet probability for drop/duplicate/reorder.
    rate: float = 0.0
    #: Window start (simulated seconds).  Per-packet faults also honour
    #: the window: draws happen only inside it.
    start: float = 0.0
    #: Window length; ``inf`` means "for the rest of the run".
    duration: float = math.inf
    #: Restrict per-packet faults to this sending host (``None`` = any).
    src: Optional[int] = None
    #: Restrict per-packet faults to this destination host.
    dst: Optional[int] = None
    #: Target host for degrade/nic_stall/straggler (``None`` = all hosts).
    host: Optional[int] = None
    #: degrade: latency multiplier; straggler: CPU slowdown factor.
    factor: float = 1.0
    #: degrade: multiplier on link bandwidth (0.5 = half the bandwidth).
    bandwidth_factor: float = 1.0
    #: duplicate: gap between the copies; reorder: max extra delay.
    delay: float = 0.0
    #: Restrict per-packet faults to these packet-type names
    #: (e.g. ``("EGR", "RDMA")``); ``None`` = every type.
    ptypes: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.kind not in PACKET_FAULT_KINDS + WINDOW_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from "
                f"{PACKET_FAULT_KINDS + WINDOW_FAULT_KINDS}"
            )
        if self.kind in PACKET_FAULT_KINDS and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"{self.kind} rate must be in [0, 1]: {self.rate}")
        if self.kind == "reorder" and self.delay <= 0:
            raise ValueError("reorder needs a positive max delay")
        if self.kind in ("degrade", "straggler") and self.factor < 1.0:
            raise ValueError(f"{self.kind} factor must be >= 1: {self.factor}")
        if self.kind == "degrade" and not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                f"degrade bandwidth_factor must be in (0, 1]: "
                f"{self.bandwidth_factor}"
            )
        if self.kind == "nic_stall" and math.isinf(self.duration):
            raise ValueError(
                "nic_stall windows must be finite (an unbounded stall "
                "livelocks every sender)"
            )
        if self.duration < 0 or self.start < 0:
            raise ValueError("fault windows must have start, duration >= 0")

    # ------------------------------------------------------------------
    @property
    def end(self) -> float:
        return self.start + self.duration

    def in_window(self, now: float) -> bool:
        return self.start <= now < self.end

    def matches_packet(self, pkt, now: float) -> bool:
        """Does this per-packet spec apply to ``pkt`` right now?"""
        if not self.in_window(now):
            return False
        if self.src is not None and pkt.src != self.src:
            return False
        if self.dst is not None and pkt.dst != self.dst:
            return False
        if self.ptypes is not None and pkt.ptype.name not in self.ptypes:
            return False
        return True

    def matches_host(self, host: int) -> bool:
        return self.host is None or self.host == host


@dataclass(frozen=True)
class FaultPlan:
    """A named, seedable set of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self):
        # Accept lists for convenience; store a hashable tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def empty(self) -> bool:
        return not self.specs

    @property
    def needs_reliability(self) -> bool:
        """True when packets can be lost/duplicated/reordered, i.e. when
        the LCI runtime must run its ack/retransmit protocol."""
        return any(s.kind in PACKET_FAULT_KINDS for s in self.specs)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def describe(self) -> str:
        parts = []
        for s in self.specs:
            if s.kind in PACKET_FAULT_KINDS:
                parts.append(f"{s.kind}@{s.rate:.1%}")
            else:
                tgt = "all" if s.host is None else f"h{s.host}"
                parts.append(f"{s.kind}[{tgt}]x{s.factor:g}")
        return " + ".join(parts) if parts else "(no faults)"


# ----------------------------------------------------------------------
# Named plans, for the chaos CLI and the bench/scenarios knob
# ----------------------------------------------------------------------
US = 1e-6

NAMED_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "drop-1pct": FaultPlan(
        name="drop-1pct", specs=(FaultSpec("drop", rate=0.01),)
    ),
    "drop-5pct": FaultPlan(
        name="drop-5pct", specs=(FaultSpec("drop", rate=0.05),)
    ),
    "dup-2pct": FaultPlan(
        name="dup-2pct",
        specs=(FaultSpec("duplicate", rate=0.02, delay=5 * US),),
    ),
    "reorder-heavy": FaultPlan(
        name="reorder-heavy",
        specs=(FaultSpec("reorder", rate=0.3, delay=20 * US),),
    ),
    "flaky-link": FaultPlan(
        name="flaky-link",
        specs=(
            FaultSpec("drop", rate=0.02),
            FaultSpec("duplicate", rate=0.01, delay=5 * US),
            FaultSpec("reorder", rate=0.1, delay=10 * US),
        ),
    ),
    "degraded-link": FaultPlan(
        name="degraded-link",
        specs=(FaultSpec("degrade", factor=4.0, bandwidth_factor=0.25),),
    ),
    "nic-stall": FaultPlan(
        name="nic-stall",
        specs=(
            FaultSpec("nic_stall", host=0, start=50 * US, duration=200 * US),
        ),
    ),
    "straggler": FaultPlan(
        name="straggler",
        specs=(FaultSpec("straggler", host=0, factor=8.0),),
    ),
    "chaos": FaultPlan(
        name="chaos",
        specs=(
            FaultSpec("drop", rate=0.01),
            FaultSpec("duplicate", rate=0.01, delay=5 * US),
            FaultSpec("reorder", rate=0.05, delay=10 * US),
            FaultSpec("degrade", factor=2.0, bandwidth_factor=0.5,
                      start=100 * US, duration=400 * US),
            FaultSpec("straggler", host=0, factor=4.0,
                      start=200 * US, duration=300 * US),
        ),
    ),
}


def get_plan(name_or_plan, seed: Optional[int] = None) -> FaultPlan:
    """Resolve a named plan (or pass a :class:`FaultPlan` through)."""
    if isinstance(name_or_plan, FaultPlan):
        plan = name_or_plan
    else:
        try:
            plan = NAMED_PLANS[name_or_plan]
        except KeyError:
            raise ValueError(
                f"unknown fault plan {name_or_plan!r}; pick from "
                f"{sorted(NAMED_PLANS)}"
            ) from None
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan
