"""MPI error hierarchy.

The MPI standard does not require implementations to survive resource
exhaustion; the paper observed MVAPICH2 and IntelMPI seg-faulting or
hanging under Abelian's all-to-all pattern (Section III-B).  We model
that as :class:`MPIResourceExhausted`, raised when a preset is configured
with ``crash_on_exhaustion=True`` and the eager-buffer pool runs dry.
"""

from __future__ import annotations

__all__ = [
    "MPIError",
    "MPIResourceExhausted",
    "MPIUsageError",
    "MPIProtocolError",
]


class MPIError(RuntimeError):
    """Base class for simulated MPI failures."""


class MPIResourceExhausted(MPIError):
    """Eager buffers / network resources exhausted; the library aborts.

    Real-world analogue: the unrecoverable errors from network devices or
    the MPI software stack that the paper's buffered layer was built to
    avoid.
    """


class MPIUsageError(MPIError):
    """Caller violated MPI semantics (wrong thread mode, bad rank, ...)."""


class MPIProtocolError(MPIError):
    """The transport violated the reliability MPI assumes.

    MPI offers no recovery protocol of its own — a duplicated rendezvous
    payload double-completes a request, which a real implementation
    surfaces (at best) as a fatal internal error.  Raised only under
    fault injection; fault-free runs can never reach it.
    """
