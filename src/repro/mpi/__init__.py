"""Simulated MPI implementation.

This package is the reproduction's stand-in for MVAPICH2 / IntelMPI /
OpenMPI: a message-passing library with MPI's *semantics* — FIFO
per-(source, tag) matching, wildcard receives, eager/rendezvous protocols,
probe, request/test/wait completion, thread modes, and one-sided windows
with generalized active-target synchronization — implemented over the same
simulated NIC API (:mod:`repro.netapi`) that LCI uses.

The costs that make MPI slower than LCI for irregular graph communication
are *mechanistic*, not hard-coded: match-queue traversal charges per
element inspected, probing adds calls to the progress engine, ordering
forces FIFO traversal, ``MPI_THREAD_MULTIPLE`` serializes every call
through a lock, and eager-buffer exhaustion either stalls or aborts
depending on the implementation preset (Section III-B of the paper).

Vendor differences are captured by :class:`~repro.mpi.config.MpiConfig`
presets in :mod:`repro.mpi.presets` (Table IV of the paper).
"""

from repro.mpi.exceptions import MPIError, MPIResourceExhausted, MPIUsageError
from repro.mpi.config import MpiConfig, ThreadMode
from repro.mpi.presets import MPI_PRESETS, intel_mpi, mvapich2, openmpi
from repro.mpi.types import MpiRequest, MpiStatus, ANY_SOURCE, ANY_TAG
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.world import MpiWorld
from repro.mpi.rma import MpiWindow

__all__ = [
    "MPIError",
    "MPIResourceExhausted",
    "MPIUsageError",
    "MpiConfig",
    "ThreadMode",
    "MPI_PRESETS",
    "intel_mpi",
    "mvapich2",
    "openmpi",
    "MpiRequest",
    "MpiStatus",
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiEndpoint",
    "MpiWorld",
    "MpiWindow",
]
