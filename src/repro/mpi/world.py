"""MpiWorld: the set of endpoints on a fabric, plus collective helpers."""

from __future__ import annotations

import math
from typing import List

from repro.mpi.config import MpiConfig, ThreadMode
from repro.mpi.endpoint import MpiEndpoint, _BARRIER_TAG
from repro.netapi.nic import Fabric
from repro.netapi.packet import Packet, PacketType
from repro.sim.engine import Environment
from repro.sim.monitor import StatRegistry

__all__ = ["MpiWorld"]


class MpiWorld:
    """All ranks' MPI endpoints over one simulated fabric.

    One endpoint per host; rank == host id.  The world also provides a
    dissemination barrier used by collectives and by the BSP engines'
    round structure.
    """

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        config: MpiConfig,
        thread_mode: ThreadMode = ThreadMode.FUNNELED,
    ):
        self.env = env
        self.fabric = fabric
        self.config = config
        self.size = fabric.num_hosts
        self.endpoints: List[MpiEndpoint] = []
        for rank in range(self.size):
            ep = MpiEndpoint(
                env,
                rank,
                fabric.nic(rank),
                fabric.machine.cpu,
                config,
                thread_mode=thread_mode,
                stats=StatRegistry(f"mpi.{config.name}.rank{rank}"),
            )
            ep._world = self
            self.endpoints.append(ep)
        self._barrier_round = [0] * self.size

    def endpoint(self, rank: int) -> MpiEndpoint:
        return self.endpoints[rank]

    def barrier(self, rank: int):
        """Dissemination barrier; call from every rank's process.

        log2(p) rounds; in round k, rank sends to (rank + 2^k) mod p and
        waits for the matching message from (rank - 2^k) mod p.  Uses a
        reserved internal tag so it never collides with user traffic.
        """
        p = self.size
        if p == 1:
            return
            yield  # pragma: no cover - makes this a generator
        ep = self.endpoint(rank)
        base = self._barrier_round[rank]
        self._barrier_round[rank] += 1
        rounds = int(math.ceil(math.log2(p)))
        for k in range(rounds):
            dist = 1 << k
            dst = (rank + dist) % p
            src = (rank - dist) % p
            pkt = Packet(
                PacketType.EGR, rank, dst, _BARRIER_TAG, 8,
                payload=(base, k),
            )
            yield from ep._inject(pkt)
            yield from ep._barrier_wait_msg(src, (base, k))
