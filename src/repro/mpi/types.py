"""MPI request and status objects, and the wildcard constants."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ANY_SOURCE", "ANY_TAG", "MpiStatus", "MpiRequest"]

#: Wildcard source for receives/probes (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for receives/probes (MPI_ANY_TAG).
ANY_TAG = -1

_req_ids = itertools.count()


@dataclass
class MpiStatus:
    """What a probe or completed receive reports about a message."""

    source: int
    tag: int
    count: int  # payload bytes

    def __repr__(self) -> str:
        return f"MpiStatus(src={self.source}, tag={self.tag}, count={self.count})"


class MpiRequest:
    """Handle for a pending nonblocking operation.

    ``done`` flips when the operation completes; ``payload`` carries the
    received object for receive requests.  Unlike LCI requests, observing
    completion requires calling :meth:`MpiEndpoint.test` (which enters the
    library and pays for a progress pass) — this asymmetry is one of the
    paper's core points.
    """

    __slots__ = (
        "uid",
        "kind",
        "peer",
        "tag",
        "size",
        "done",
        "cancelled",
        "payload",
        "status",
        "_completion_cbs",
    )

    def __init__(self, kind: str, peer: int, tag: int, size: int):
        self.uid = next(_req_ids)
        self.kind = kind  # "send" | "recv"
        self.peer = peer
        self.tag = tag
        self.size = size
        self.done = False
        self.cancelled = False
        self.payload: Any = None
        self.status: Optional[MpiStatus] = None
        self._completion_cbs = []

    def on_complete(self, cb) -> None:
        """Internal: register a callback to run at completion."""
        if self.done:
            cb(self)
        else:
            self._completion_cbs.append(cb)

    def _complete(
        self, payload: Any = None, status: Optional[MpiStatus] = None
    ) -> None:
        if self.done:
            raise RuntimeError(f"request {self.uid} completed twice")
        self.done = True
        self.payload = payload
        self.status = status
        cbs, self._completion_cbs = self._completion_cbs, []
        for cb in cbs:
            cb(self)

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return (
            f"MpiRequest(#{self.uid} {self.kind} peer={self.peer} "
            f"tag={self.tag} size={self.size} {state})"
        )
