"""MPI implementation configuration.

A :class:`MpiConfig` captures the tunables that distinguish one MPI
implementation from another for the communication patterns in this paper:
protocol switch points, matching costs, threading costs, progress
behaviour, buffer provisioning, and RMA efficiency.  Presets approximating
IntelMPI, MVAPICH2 and OpenMPI live in :mod:`repro.mpi.presets`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["ThreadMode", "MpiConfig"]

US = 1e-6
NS = 1e-9


class ThreadMode(enum.Enum):
    """MPI thread support levels relevant to the paper.

    * ``FUNNELED`` — only the designated communication thread calls MPI;
      no locking inside the library (used by the MPI-Probe layer).
    * ``MULTIPLE`` — any thread may call MPI; every call serializes
      through the library's global lock (used by the MPI-RMA layer and
      by Gemini's original runtime).
    """

    FUNNELED = "funneled"
    MULTIPLE = "multiple"


@dataclass(frozen=True)
class MpiConfig:
    """Cost/behaviour parameters of a simulated MPI implementation."""

    name: str
    #: Messages at or below this payload size use the eager protocol.
    eager_limit: int
    #: Simulated cost charged per element traversed in the posted-receive
    #: queue when matching an arriving message.
    match_cost_per_element: float
    #: Simulated cost per element traversed in the unexpected-message
    #: queue when posting a receive or probing.
    unexpected_cost_per_element: float
    #: Fixed software overhead of entering any MPI call (descriptor
    #: checks, communicator lookup, error handling), *in addition to* the
    #: machine's generic call overhead.
    call_overhead: float
    #: Cost of one MPI_Iprobe call body (excludes progress-engine work).
    probe_overhead: float
    #: Cost of one MPI_Test call body.
    test_overhead: float
    #: Cost of one pass of the internal progress engine (draining the NIC).
    progress_overhead: float
    #: Lock acquire+release cost added to every call in THREAD_MULTIPLE
    #: (on top of contention queueing, which the simulation produces).
    thread_multiple_lock_cost: float
    #: Per-destination eager-buffer credits.  Each un-matched eager message
    #: parked at the receiver consumes one; exhaustion stalls or aborts.
    eager_credits_per_peer: int
    #: If True, running out of eager credits aborts (segfault/hang in the
    #: field); if False, the sender stalls until credits return.
    crash_on_exhaustion: bool
    #: Extra copy at the sender for eager messages (bounce buffer), as a
    #: multiple of the memcpy time (1.0 = one full extra copy).
    eager_copy_factor: float
    #: Cost of initiating MPI_Put (descriptor + window bounds check).
    rma_put_overhead: float
    #: Cost of each window-synchronization call (post/start/complete/wait).
    rma_sync_overhead: float
    #: Cost of creating a window, per participating rank.
    win_create_cost_per_rank: float
    #: Software pipelining efficiency of large transfers, 0 < eff <= 1;
    #: effective bandwidth is NIC bandwidth times this.
    bandwidth_efficiency: float

    def with_(self, **kw) -> "MpiConfig":
        """Copy with overrides (ablation / sensitivity studies)."""
        return replace(self, **kw)

    def scaled(self, factor: float) -> "MpiConfig":
        """Scale all software costs by ``factor``.

        The preset costs are calibrated for KNL's slow in-order cores
        (Stampede2); a faster CPU executes the same library code
        proportionally quicker, e.g. ``scaled(0.4)`` for Sandy Bridge.
        Protocol constants (eager limit, credits) are unchanged.
        """
        return replace(
            self,
            name=self.name,
            match_cost_per_element=self.match_cost_per_element * factor,
            unexpected_cost_per_element=self.unexpected_cost_per_element * factor,
            call_overhead=self.call_overhead * factor,
            probe_overhead=self.probe_overhead * factor,
            test_overhead=self.test_overhead * factor,
            progress_overhead=self.progress_overhead * factor,
            thread_multiple_lock_cost=self.thread_multiple_lock_cost * factor,
            rma_put_overhead=self.rma_put_overhead * factor,
            rma_sync_overhead=self.rma_sync_overhead * factor,
            win_create_cost_per_rank=self.win_create_cost_per_rank * factor,
        )
