"""Parameter presets approximating the MPI implementations of Table IV.

The paper ran Abelian with IntelMPI (the cluster default), MVAPICH2 2.3b,
and OpenMPI (commit f9b157), all over psm2 on Stampede2, and found "no
clear winner between different MPI implementations, though IntelMPI-RMA
performs best in the majority of cases", with LCI ahead of all of them.

We cannot run those binaries; instead each preset sets the cost knobs of
:class:`~repro.mpi.config.MpiConfig` to values whose *relative ordering*
reflects published microbenchmark differences between the three stacks on
KNL-class hardware: IntelMPI has the leanest psm2 path and the best RMA;
MVAPICH2 has cheap matching but a heavier progress engine; OpenMPI has the
largest per-call overhead on this fabric but a mid-pack RMA.  The absolute
values are of the same order as the machine-model costs so none of them
dominates artificially.
"""

from __future__ import annotations

from typing import Dict

from repro.mpi.config import MpiConfig

__all__ = ["intel_mpi", "mvapich2", "openmpi", "MPI_PRESETS", "default_mpi"]

US = 1e-6
NS = 1e-9


def intel_mpi() -> MpiConfig:
    """IntelMPI: the Stampede2 default; leanest call path, best RMA.

    Costs are calibrated for KNL's 1.4 GHz in-order cores, where MPI
    software paths run several times slower than on a server-class Xeon:
    a library call costs hundreds of ns, a probe with its progress pass
    lands around a microsecond, and match-queue traversal is
    pointer-chasing at ~70 ns/element.
    """
    return MpiConfig(
        name="intelmpi",
        eager_limit=16 * 1024,
        match_cost_per_element=70 * NS,
        unexpected_cost_per_element=80 * NS,
        call_overhead=350 * NS,
        probe_overhead=420 * NS,
        test_overhead=300 * NS,
        progress_overhead=500 * NS,
        thread_multiple_lock_cost=300 * NS,
        eager_credits_per_peer=64,
        crash_on_exhaustion=True,
        eager_copy_factor=1.0,
        rma_put_overhead=280 * NS,
        rma_sync_overhead=0.9 * US,
        win_create_cost_per_rank=2.2 * US,
        bandwidth_efficiency=0.92,
    )


def mvapich2() -> MpiConfig:
    """MVAPICH2 2.3b: cheap matching, heavier progress engine."""
    return MpiConfig(
        name="mvapich2",
        eager_limit=17 * 1024,
        match_cost_per_element=58 * NS,
        unexpected_cost_per_element=66 * NS,
        call_overhead=400 * NS,
        probe_overhead=470 * NS,
        test_overhead=330 * NS,
        progress_overhead=650 * NS,
        thread_multiple_lock_cost=360 * NS,
        eager_credits_per_peer=48,
        crash_on_exhaustion=True,
        eager_copy_factor=1.0,
        rma_put_overhead=360 * NS,
        rma_sync_overhead=1.1 * US,
        win_create_cost_per_rank=2.6 * US,
        bandwidth_efficiency=0.90,
    )


def openmpi() -> MpiConfig:
    """OpenMPI (f9b157): largest per-call overhead on psm2, mid-pack RMA."""
    return MpiConfig(
        name="openmpi",
        eager_limit=12 * 1024,
        match_cost_per_element=85 * NS,
        unexpected_cost_per_element=95 * NS,
        call_overhead=500 * NS,
        probe_overhead=560 * NS,
        test_overhead=390 * NS,
        progress_overhead=600 * NS,
        thread_multiple_lock_cost=420 * NS,
        eager_credits_per_peer=64,
        crash_on_exhaustion=False,  # stalls rather than aborts
        eager_copy_factor=1.0,
        rma_put_overhead=330 * NS,
        rma_sync_overhead=1.05 * US,
        win_create_cost_per_rank=2.4 * US,
        bandwidth_efficiency=0.88,
    )


MPI_PRESETS: Dict[str, MpiConfig] = {
    c.name: c for c in (intel_mpi(), mvapich2(), openmpi())
}


def default_mpi() -> MpiConfig:
    """The cluster-default implementation the main experiments use."""
    return intel_mpi()
