"""MPI one-sided (RMA) windows with generalized active-target sync.

This models the MPI-RMA communication layer of Section III-C:

* Receive buffers are **preallocated at worst-case size** — for ``p``
  hosts, each host exposes one buffer per possible origin, sized to the
  maximum message it could ever receive from that origin (all nodes
  active).  That preallocation is what makes MPI-RMA's memory footprint
  up to an order of magnitude larger than LCI's (Fig. 5).
* Synchronization is **PSCW** (post/start/complete/wait), the
  "generalized active target" model the paper chose over ``MPI_Win_fence``
  because fencing waits for *all* hosts.  POST and COMPLETE notifications
  travel as small control packets handled by the MPI progress engine;
  the data itself moves with hardware RDMA puts that never involve the
  target CPU.

Usage (from a rank's simulated process)::

    win = MpiWindow(world, size_fn=lambda o, t: max_bytes[o][t])
    yield from win.create(rank)          # collective
    ...
    yield from win.post(rank, origins)   # expose my buffers
    yield from win.start(rank, targets)  # open access epoch
    yield from win.put(rank, t, nbytes, payload)
    yield from win.complete(rank)
    blobs = yield from win.wait(rank)    # [(origin, payload, nbytes)]
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.mpi.exceptions import MPIUsageError
from repro.mpi.world import MpiWorld
from repro.netapi.nic import RegisteredBuffer
from repro.netapi.packet import Packet, PacketType
from repro.sanitize.mpi_checks import WindowSanitizer
from repro.sim.engine import Event

__all__ = ["MpiWindow"]

_win_ids = itertools.count(1)


class _RankState:
    """Per-rank epoch bookkeeping for one window."""

    __slots__ = (
        "exposed_to",
        "started_targets",
        "posts_seen",
        "completes_seen",
        "pending_puts",
        "wake",
        "recv_order",
    )

    def __init__(self):
        self.exposed_to: Set[int] = set()       # origins of current exposure
        self.started_targets: Set[int] = set()  # targets of current access
        self.posts_seen: Set[int] = set()       # targets whose POST arrived
        self.completes_seen: Set[int] = set()   # origins whose COMPLETE arrived
        self.pending_puts = 0                   # local puts awaiting ACK
        self.wake: Optional[Event] = None       # parked waiter, if any
        self.recv_order: List[int] = []         # completes in arrival order


class MpiWindow:
    """A collective set of worst-case-sized RMA receive buffers."""

    def __init__(
        self,
        world: MpiWorld,
        size_fn: Callable[[int, int], int],
        label: str = "win",
    ):
        """``size_fn(origin, target)`` gives the worst-case bytes origin
        may put to target.  A zero size means that pair never communicates
        and no buffer is allocated for it.
        """
        self.world = world
        self.env = world.env
        self.label = label
        self.win_id = next(_win_ids)
        p = world.size
        self._state = [_RankState() for _ in range(p)]
        #: (origin, target) -> RegisteredBuffer at the target.
        self._bufs: Dict[Tuple[int, int], RegisteredBuffer] = {}
        self._sizes: Dict[Tuple[int, int], int] = {}
        #: When True, a dedicated progress thread drains the library and
        #: window waits only sleep on their wake events instead of also
        #: pumping progress themselves (halves per-arrival costs — the
        #: paper's layer runs such a thread, Section III-C).
        self.external_progress = False
        for target in range(p):
            for origin in range(p):
                if origin == target:
                    continue
                nbytes = int(size_fn(origin, target))
                if nbytes <= 0:
                    continue
                self._sizes[(origin, target)] = nbytes
        for ep in world.endpoints:
            ep._rma_handlers[self.win_id] = self._make_handler(ep.rank)
        self._created = [False] * p
        # Epoch-discipline checker, discovered like the fault injector.
        _ctx = getattr(world.fabric, "sanitizer", None)
        self.sanitizer: Optional[WindowSanitizer] = (
            WindowSanitizer(_ctx, self.win_id, label) if _ctx is not None else None
        )
        # Observability: puts carry trace ids; epoch waits record stalls.
        self.obs = getattr(world.fabric, "obs", None)

    # ------------------------------------------------------------------
    # Creation (collective)
    # ------------------------------------------------------------------
    def create(self, rank: int):
        """Collective window creation; call from every rank.

        Charges the per-rank creation cost (scales with world size, as
        window creation is collective) and registers this rank's receive
        buffers with its NIC.  Ends with a barrier, as MPI_Win_create
        returns only when all ranks have created the window.
        """
        world = self.world
        ep = world.endpoint(rank)
        cost = ep.config.win_create_cost_per_rank * world.size
        yield self.env.timeout(cost)
        for (origin, target), nbytes in self._sizes.items():
            if target != rank:
                continue
            buf = ep.nic.register(
                nbytes, label=f"{self.label}.o{origin}->t{target}"
            )
            self._bufs[(origin, target)] = buf
        self._created[rank] = True
        yield from world.barrier(rank)

    def bytes_allocated(self, rank: int) -> int:
        """Window memory exposed at ``rank`` (the Fig. 5 footprint term)."""
        return sum(
            nbytes
            for (o, t), nbytes in self._sizes.items()
            if t == rank
        )

    def max_put_bytes(self, origin: int, target: int) -> int:
        return self._sizes.get((origin, target), 0)

    # ------------------------------------------------------------------
    # Control-message plumbing
    # ------------------------------------------------------------------
    def _make_handler(self, rank: int):
        def _on_control(pkt: Packet) -> None:
            st = self._state[rank]
            op = pkt.meta["rma_op"]
            if op == "post":
                st.posts_seen.add(pkt.src)
            elif op == "complete":
                st.completes_seen.add(pkt.src)
                st.recv_order.append(pkt.src)
            else:  # pragma: no cover - exhaustive
                raise MPIUsageError(f"unknown RMA control {op!r}")
            if st.wake is not None and not st.wake.triggered:
                st.wake.succeed(None)
            st.wake = None

        return _on_control

    def _send_control(self, rank: int, dst: int, op: str):
        """POST/COMPLETE notification.

        These are tiny active-message-style notifications on the
        library's lightweight path: half the data-send descriptor cost
        (no user buffer, no protocol selection), then a normal inject.
        """
        ep = self.world.endpoint(rank)
        pkt = Packet(PacketType.EGR, rank, dst, -3, 16)
        pkt.meta["rma_win"] = self.win_id
        pkt.meta["rma_op"] = op
        yield self.env.timeout(ep.nic.model.send_overhead * 0.5)
        while not ep.nic.try_inject(pkt):
            yield self.env.timeout(4 * ep.nic.model.injection_gap)

    def _await(self, rank: int, ready: Callable[[], bool]):
        """Wait until ``ready()``.

        With ``external_progress`` the dedicated progress thread drains
        the library and this only sleeps on the window's wake event;
        otherwise the caller pumps progress itself between arrivals.
        """
        ep = self.world.endpoint(rank)
        st = self._state[rank]
        while not ready():
            if self.external_progress:
                ev = Event(self.env)
                st.wake = ev
                if ready():  # re-check after arming (handler may have run)
                    st.wake = None
                    return
                yield ev
                continue
            yield from ep.progress()
            if ready():
                return
            ev = Event(self.env)
            st.wake = ev
            yield self.env.any_of([ev, ep.nic.wait_arrival()])

    # ------------------------------------------------------------------
    # PSCW epochs
    # ------------------------------------------------------------------
    def post(self, rank: int, origins: Iterable[int]):
        """Expose this rank's buffers to ``origins`` (MPI_Win_post)."""
        st = self._state[rank]
        if st.exposed_to:
            raise MPIUsageError(f"rank {rank}: nested exposure epoch")
        origins = set(origins)
        ep = self.world.endpoint(rank)
        yield self.env.timeout(ep.config.rma_sync_overhead)
        st.exposed_to = origins
        st.completes_seen = set()
        st.recv_order = []
        for o in sorted(origins):
            yield from self._send_control(rank, o, "post")

    def start(self, rank: int, targets: Iterable[int]):
        """Open an access epoch to ``targets`` (MPI_Win_start).

        Blocks until the matching POST from every target has arrived —
        the generalized active-target handshake.
        """
        st = self._state[rank]
        if st.started_targets:
            raise MPIUsageError(f"rank {rank}: nested access epoch")
        targets = set(targets)
        ep = self.world.endpoint(rank)
        yield self.env.timeout(ep.config.rma_sync_overhead)
        t0 = self.env.now
        yield from self._await(rank, lambda: targets <= st.posts_seen)
        if self.obs is not None:
            self.obs.stall(rank, "epoch_start_wait", t0, self.env.now)
        st.posts_seen -= targets
        st.started_targets = targets
        st.pending_puts = 0
        if self.sanitizer is not None:
            self.sanitizer.on_epoch_start(rank)

    def put(self, rank: int, target: int, nbytes: int, payload,
            offset: int = 0, trace: Optional[str] = None):
        """RDMA-put ``payload`` into our slot at ``target`` (MPI_Put)."""
        st = self._state[rank]
        if target not in st.started_targets:
            if self.sanitizer is not None:
                # Records the structured violation (and raises
                # SanitizerError in raise mode) before the hard error.
                self.sanitizer.on_put_outside_epoch(rank, target)
            raise MPIUsageError(
                f"rank {rank}: put to {target} outside access epoch"
            )
        buf = self._bufs.get((rank, target))
        if buf is None:
            raise MPIUsageError(f"no window buffer for pair ({rank},{target})")
        cap = self._sizes[(rank, target)]
        if nbytes > cap:
            raise MPIUsageError(
                f"put of {nbytes}B exceeds worst-case window slot {cap}B "
                f"for pair ({rank},{target})"
            )
        ep = self.world.endpoint(rank)
        if self.sanitizer is not None:
            self.sanitizer.on_put(rank, target, offset, nbytes)
        if self.obs is not None and trace is not None:
            self.obs.emit(trace, "lib", rank,
                          op="put", dst=target, bytes=nbytes)
        yield self.env.timeout(ep.config.rma_put_overhead)
        pkt = Packet(PacketType.RDMA, rank, target, -3, nbytes, payload=payload)
        pkt.meta["rkey"] = buf.rkey
        pkt.meta["offset"] = offset
        if trace is not None:
            pkt.meta["trace"] = trace
        st.pending_puts += 1

        def _acked() -> None:
            st.pending_puts -= 1
            if st.wake is not None and not st.wake.triggered:
                st.wake.succeed(None)
                st.wake = None

        # Hardware put: the target CPU is not notified.
        yield from ep._inject(pkt, on_local_complete=_acked, notify_target=False)

    def complete(self, rank: int, flush: bool = True):
        """Close the access epoch (MPI_Win_complete).

        Waits for local ACKs of all outstanding puts (so COMPLETE cannot
        overtake data), then notifies every started target.
        """
        st = self._state[rank]
        ep = self.world.endpoint(rank)
        yield self.env.timeout(ep.config.rma_sync_overhead)
        if flush:
            t0 = self.env.now
            yield from self._await(rank, lambda: st.pending_puts == 0)
            if self.obs is not None:
                self.obs.stall(rank, "epoch_flush_wait", t0, self.env.now)
        targets, st.started_targets = st.started_targets, set()
        if self.sanitizer is not None:
            self.sanitizer.on_epoch_complete(rank)
        for t in sorted(targets):
            yield from self._send_control(rank, t, "complete")

    def wait(self, rank: int):
        """Close the exposure epoch (MPI_Win_wait).

        Returns ``[(origin, payload, nbytes), ...]`` for every origin that
        actually deposited data, in COMPLETE-arrival order.
        """
        st = self._state[rank]
        ep = self.world.endpoint(rank)
        yield self.env.timeout(ep.config.rma_sync_overhead)
        t0 = self.env.now
        yield from self._await(
            rank, lambda: st.exposed_to <= st.completes_seen
        )
        if self.obs is not None:
            self.obs.stall(rank, "epoch_close_wait", t0, self.env.now)
        received = []
        for origin in st.recv_order:
            buf = self._bufs.get((origin, rank))
            if buf is None or not buf.contents:
                continue
            for offset in sorted(buf.contents):
                payload = buf.contents[offset]
                received.append((origin, payload, buf.bytes_written))
            buf.clear()
        st.completes_seen -= st.exposed_to
        st.exposed_to = set()
        st.recv_order = []
        return received

    def test_wait(self, rank: int, origin: int):
        """Fine-grained wait: block until ``origin``'s COMPLETE arrives.

        This is the paper's fine-grained synchronization — the host
        scatters one origin's buffer as soon as that origin completes,
        instead of waiting for everyone.  Returns (payload, nbytes) or
        (None, 0) if the origin deposited nothing.
        """
        st = self._state[rank]
        if origin not in st.exposed_to:
            raise MPIUsageError(
                f"rank {rank}: origin {origin} not in exposure epoch"
            )
        t0 = self.env.now
        yield from self._await(rank, lambda: origin in st.completes_seen)
        if self.obs is not None:
            self.obs.stall(rank, "epoch_collect_wait", t0, self.env.now)
        buf = self._bufs.get((origin, rank))
        if buf is None or not buf.contents:
            return None, 0
        payloads = [buf.contents[o] for o in sorted(buf.contents)]
        nbytes = buf.bytes_written
        buf.clear()
        payload = payloads[0] if len(payloads) == 1 else payloads
        return payload, nbytes

    def finish_exposure(self, rank: int) -> None:
        """Bookkeeping close of the exposure epoch after test_wait use."""
        st = self._state[rank]
        st.completes_seen -= st.exposed_to
        st.exposed_to = set()
        st.recv_order = []
