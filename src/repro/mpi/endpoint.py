"""Per-host MPI endpoint: two-sided p2p, probe, and the progress engine.

Every public operation is a *generator* to be driven by a simulated
process (``req = yield from ep.isend(...)``); the generator charges the
calling thread the modeled software costs as it executes.  This mirrors
reality: MPI work happens on whichever thread enters the library.

Protocol summary (matching mainstream implementations over psm2/verbs):

* payload <= ``eager_limit``: **eager** — the data travels in one packet;
  the sender copies through a bounce buffer and the request completes as
  soon as the NIC accepts the descriptor.  Each eager message parks in a
  receiver-side buffer until matched; those buffers are per-peer credits,
  and exhaustion stalls or aborts depending on the implementation preset
  (the failure mode Section III-B describes).
* payload >  ``eager_limit``: **rendezvous** — RTS control packet; the
  receiver answers with RTR once a matching receive is posted; the sender's
  progress engine then issues an RDMA put of the payload; the receive
  completes when the RDMA packet arrives.

Matching traverses the posted-receive / unexpected queues front-to-back,
charging per element inspected (:mod:`repro.mpi.matching`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.mpi.config import MpiConfig, ThreadMode
from repro.mpi.exceptions import (
    MPIProtocolError,
    MPIResourceExhausted,
    MPIUsageError,
)
from repro.mpi.matching import (
    PostedQueue,
    PostedReceive,
    UnexpectedMessage,
    UnexpectedQueue,
)
from repro.mpi.types import ANY_SOURCE, ANY_TAG, MpiRequest, MpiStatus
from repro.netapi.nic import Nic
from repro.netapi.packet import Packet, PacketType
from repro.sanitize.mpi_checks import MpiSanitizer
from repro.sim.engine import Environment, Event
from repro.sim.machine import CpuModel
from repro.sim.monitor import StatRegistry
from repro.sim.resources import Lock

__all__ = ["MpiEndpoint"]

#: Internal tag used by the world barrier.
_BARRIER_TAG = -2


class MpiEndpoint:
    """One rank's view of the simulated MPI library."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        nic: Nic,
        cpu: CpuModel,
        config: MpiConfig,
        thread_mode: ThreadMode = ThreadMode.FUNNELED,
        stats: Optional[StatRegistry] = None,
    ):
        self.env = env
        self.rank = rank
        self.nic = nic
        self.cpu = cpu
        self.config = config
        self.thread_mode = thread_mode
        self.stats = stats or StatRegistry(f"mpi.rank{rank}")

        self.posted = PostedQueue()
        self.unexpected = UnexpectedQueue()

        # Eager flow control: credits per destination.
        self._credits: Dict[int, int] = {}
        self._credit_waiters: Dict[int, List[Event]] = {}

        # THREAD_MULTIPLE: all calls serialize through this lock.
        self._lock = Lock(env, acquire_cost=config.thread_multiple_lock_cost)

        # FUNNELED enforcement: the identity of the one thread allowed in.
        self.funneled_owner: Optional[object] = None

        # RMA control-message handlers, registered by MpiWindow.
        self._rma_handlers: Dict[int, Callable[[Packet], None]] = {}

        # Barrier plumbing (used by MpiWorld.barrier).
        self._barrier_msgs: Deque[Tuple[int, Any]] = deque()
        self._barrier_waiters: List[Event] = []

        # Per-source sink buffers for rendezvous RDMA (lazily registered).
        self._rndv_sinks: Dict[int, int] = {}

        # Usage checker, discovered like the fault injector.
        _ctx = getattr(nic.fabric, "sanitizer", None)
        self.sanitizer: Optional[MpiSanitizer] = (
            MpiSanitizer(_ctx, rank) if _ctx is not None else None
        )

        # Observability context, discovered the same way.  The matching
        # queues learn about it so they can stamp arrival times, and the
        # queue-depth probes the paper's Fig. 6 narrative implies are
        # registered here.
        self.obs = getattr(nic.fabric, "obs", None)
        if self.obs is not None:
            self.unexpected.obs = self.obs
            self.unexpected.host = rank
            self.obs.register_probe(
                "mpi.unexpected_depth", rank, self.unexpected.__len__
            )
            self.obs.register_probe(
                "mpi.posted_depth", rank, self.posted.__len__
            )

        # Host-side profiler, discovered the same way; the matching
        # queues get a direct reference so their traversal walks are
        # timed.  Probe/enqueue counts are deferred: the queues keep
        # deterministic running totals anyway, snapshotted at flush.
        self.profiler = getattr(nic.fabric, "profiler", None)
        if self.profiler is not None:
            self.posted.profiler = self.profiler
            self.unexpected.profiler = self.profiler
            self.profiler.add_source(self._profile_counts)

        # Hoisted per-call costs and counters (the progress engine and
        # the isend/irecv/iprobe entry points are the hottest MPI code).
        self._entry_cost = self.cpu.call_overhead + self.config.call_overhead
        self._recv_overhead = self.nic.model.recv_overhead
        self._probe_overhead = self.config.probe_overhead
        self._match_cost = self.config.match_cost_per_element
        self._unexpected_cost = self.config.unexpected_cost_per_element
        self._send_overhead = self.nic.model.send_overhead
        self._tx_backoff = 4 * self.nic.model.injection_gap
        self._c_isends = self.stats.counter("isends")
        self._c_irecvs = self.stats.counter("irecvs")
        self._c_iprobes = self.stats.counter("iprobes")
        self._c_tests = self.stats.counter("tests")
        self._c_eager_sends = self.stats.counter("eager_sends")
        self._c_rndv_sends = self.stats.counter("rndv_sends")
        self._c_unexpected = self.stats.counter("unexpected_msgs")
        self._c_tx_retries = self.stats.counter("tx_retries")

    def _profile_counts(self):
        """Deferred profiler source: matching-engine work totals."""
        return (
            ("mpi.match_probes",
             self.posted.probes + self.unexpected.probes),
            ("mpi.unexpected_enqueued", self.unexpected.enqueued),
        )

    # ------------------------------------------------------------------
    # Cost & locking helpers
    # ------------------------------------------------------------------
    def _charge(self, seconds: float):
        if seconds > 0:
            yield seconds

    def _enter(self, thread: Optional[object]):
        """Pay the cost of entering the library under the thread mode."""
        yield self._entry_cost
        if self.thread_mode is ThreadMode.MULTIPLE:
            yield from self._lock.acquire()
        elif thread is not None:
            if self.funneled_owner is None:
                self.funneled_owner = thread
            elif self.funneled_owner is not thread:
                raise MPIUsageError(
                    f"rank {self.rank}: MPI_THREAD_FUNNELED violated — "
                    f"thread {thread!r} called MPI but {self.funneled_owner!r} owns it"
                )

    def _exit(self):
        if self.thread_mode is ThreadMode.MULTIPLE:
            self._lock.release()

    # ------------------------------------------------------------------
    # Eager credits
    # ------------------------------------------------------------------
    def _credits_to(self, dst: int) -> int:
        return self._credits.setdefault(dst, self.config.eager_credits_per_peer)

    def _consume_credit(self, dst: int):
        """Generator: take one eager credit to ``dst``, stalling or aborting."""
        while self._credits_to(dst) <= 0:
            if self.config.crash_on_exhaustion:
                self.stats.counter("eager_exhaustion_aborts").add()
                raise MPIResourceExhausted(
                    f"rank {self.rank}: eager buffers to rank {dst} exhausted "
                    f"({self.config.name} aborts on resource exhaustion)"
                )
            self.stats.counter("eager_stalls").add()
            ev = Event(self.env)
            self._credit_waiters.setdefault(dst, []).append(ev)
            yield ev
        self._credits[dst] -= 1

    def _credit_home(self, dst: int) -> None:
        """Schedule the return of one eager credit for destination ``dst``.

        Credit returns are piggybacked on reverse traffic in real stacks;
        we model them as arriving one wire latency after consumption with
        no extra packet events.
        """

        def _arrive() -> None:
            self._credits[dst] = self._credits_to(dst) + 1
            waiters = self._credit_waiters.get(dst)
            if waiters:
                waiters.pop(0).succeed(None)

        self.env.call_later(self.nic.model.latency, _arrive)

    # ------------------------------------------------------------------
    # Injection with internal retry (MPI hides TX-queue-full)
    # ------------------------------------------------------------------
    def _inject(self, pkt: Packet, on_local_complete=None, notify_target=True):
        yield self._send_overhead
        while not self.nic.try_inject(
            pkt, on_local_complete=on_local_complete, notify_target=notify_target
        ):
            self._c_tx_retries.add()
            yield self._tx_backoff

    # ------------------------------------------------------------------
    # Two-sided API
    # ------------------------------------------------------------------
    def isend(
        self,
        dst: int,
        tag: int,
        size: int,
        payload: Any = None,
        thread: Optional[object] = None,
        trace: Optional[str] = None,
    ):
        """Nonblocking send; returns an :class:`MpiRequest`.

        ``trace`` is an optional observability trace id; when set it
        rides the wire packets so the receive side can link its stage
        events to this send.
        """
        if tag < 0:
            raise MPIUsageError(f"negative user tag {tag}")
        yield from self._enter(thread)
        try:
            req = MpiRequest("send", dst, tag, size)
            self._c_isends.add()
            if self.sanitizer is not None:
                self.sanitizer.on_send(req)
            if self.obs is not None and trace is not None:
                self.obs.emit(trace, "lib", self.rank,
                              op="isend", dst=dst, bytes=size)
            if size <= self.config.eager_limit:
                yield from self._eager_send(req, dst, tag, size, payload, trace)
            else:
                yield from self._rndv_send(req, dst, tag, size, payload, trace)
            return req
        finally:
            self._exit()

    def _eager_send(self, req, dst, tag, size, payload, trace=None):
        # Bounce-buffer copy so the user buffer is immediately reusable.
        copy = self.cpu.memcpy_time(size) * self.config.eager_copy_factor
        yield from self._charge(copy)
        yield from self._consume_credit(dst)
        pkt = Packet(PacketType.EGR, self.rank, dst, tag, size, payload=payload)
        pkt.meta["mpi"] = True
        if trace is not None:
            pkt.meta["trace"] = trace
        yield from self._inject(pkt)
        self._c_eager_sends.add()
        req._complete()

    def _rndv_send(self, req, dst, tag, size, payload, trace=None):
        pkt = Packet(PacketType.RTS, self.rank, dst, tag, size)
        pkt.meta["mpi"] = True
        pkt.meta["send_req"] = req
        pkt.meta["data"] = payload
        if trace is not None:
            pkt.meta["trace"] = trace
        yield from self._inject(pkt)
        self._c_rndv_sends.add()

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        thread: Optional[object] = None,
    ):
        """Nonblocking receive (wildcards allowed); returns a request."""
        yield from self._enter(thread)
        try:
            req = MpiRequest("recv", source, tag, 0)
            self._c_irecvs.add()
            msg, inspected = self.unexpected.match_receive(source, tag)
            cost = inspected * self._unexpected_cost
            if cost > 0:
                yield cost
            if msg is None:
                if self.sanitizer is not None:
                    self.sanitizer.on_post_recv(
                        self.posted.items, source, tag, ANY_SOURCE, ANY_TAG
                    )
                self.posted.post(PostedReceive.alloc(req, source, tag))
                return req
            if self.obs is not None and msg.trace is not None:
                self.obs.emit(
                    msg.trace, "handler", self.rank,
                    waited=self.obs.now - msg.arrived_at,
                    inspected=inspected, protocol=msg.protocol,
                )
            if msg.protocol == "eager":
                # Copy out of the MPI-internal buffer; credit goes home.
                yield from self._charge(self.cpu.memcpy_time(msg.size))
                req._complete(
                    msg.payload, MpiStatus(msg.source, msg.tag, msg.size)
                )
                if self.obs is not None and msg.trace is not None:
                    self.obs.emit(msg.trace, "complete", self.rank,
                                  bytes=msg.size)
                self._peer_credit_home(msg.source)
                msg.recycle()
            else:  # rendezvous RTS parked unexpected
                rts_pkt = msg.token
                msg.recycle()
                yield from self._answer_rts(rts_pkt, req)
            return req
        finally:
            self._exit()

    def _answer_rts(self, rts_pkt: Packet, req: MpiRequest):
        """Post the RTR reply that lets the sender RDMA the payload."""
        yield from self._charge(self.cpu.alloc_cost)  # allocate recv buffer
        rtr = Packet(
            PacketType.RTR, self.rank, rts_pkt.src, rts_pkt.tag,
            rts_pkt.size,
        )
        rtr.meta["mpi"] = True
        rtr.meta["send_req"] = rts_pkt.meta["send_req"]
        rtr.meta["data"] = rts_pkt.meta["data"]
        rtr.meta["recv_req"] = req
        if rts_pkt.meta.get("trace") is not None:
            rtr.meta["trace"] = rts_pkt.meta["trace"]
        yield from self._inject(rtr)

    def _peer_credit_home(self, src: int) -> None:
        """We consumed an eager message from ``src``; return their credit."""
        peer = self._world_lookup(src)
        if peer is not None:
            peer._credit_home(self.rank)

    # World back-reference, set by MpiWorld so credits can flow home.
    _world = None

    def _world_lookup(self, rank: int) -> Optional["MpiEndpoint"]:
        if self._world is None:
            return None
        return self._world.endpoint(rank)

    def iprobe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        thread: Optional[object] = None,
    ):
        """Nonblocking probe; returns an :class:`MpiStatus` or ``None``.

        Per MPI semantics a probe must advance the progress engine (else a
        loop of probes would never observe arrivals), which is exactly the
        overhead the paper's "probe" curve in Fig. 1 pays.
        """
        yield from self._enter(thread)
        try:
            self._c_iprobes.add()
            if self._probe_overhead > 0:
                yield self._probe_overhead
            yield from self._progress_locked()
            msg, inspected = self.unexpected.match_receive(
                source, tag, remove=False
            )
            cost = inspected * self._unexpected_cost
            if cost > 0:
                yield cost
            if msg is None:
                return None
            return MpiStatus(msg.source, msg.tag, msg.size)
        finally:
            self._exit()

    def test(self, req: MpiRequest, thread: Optional[object] = None):
        """Nonblocking completion check; returns bool.

        Costs a library call plus a progress pass — the paper contrasts
        this with LCI's free status-flag read.
        """
        yield from self._enter(thread)
        try:
            self._c_tests.add()
            yield from self._charge(self.config.test_overhead)
            if not req.done:
                yield from self._progress_locked()
            return req.done
        finally:
            self._exit()

    def wait(self, req: MpiRequest, thread: Optional[object] = None):
        """Block (the simulated thread) until ``req`` completes."""
        while True:
            done = yield from self.test(req, thread=thread)
            if done:
                return req
            # Sleep until either the request completes (e.g. via another
            # thread's progress) or a packet arrives to be progressed.
            done_ev = Event(self.env)
            req.on_complete(
                lambda _r: None if done_ev.triggered else done_ev.succeed(None)
            )
            yield self.env.any_of([done_ev, self.nic.wait_arrival()])

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        thread: Optional[object] = None,
    ):
        """Blocking receive; returns (payload, status)."""
        req = yield from self.irecv(source, tag, thread=thread)
        yield from self.wait(req, thread=thread)
        return req.payload, req.status

    def send(self, dst: int, tag: int, size: int, payload: Any = None,
             thread: Optional[object] = None):
        """Blocking send."""
        req = yield from self.isend(dst, tag, size, payload, thread=thread)
        yield from self.wait(req, thread=thread)
        return req

    # ------------------------------------------------------------------
    # Progress engine
    # ------------------------------------------------------------------
    def progress(self, thread: Optional[object] = None):
        """One externally-invoked progress pass (drains the NIC)."""
        yield from self._enter(thread)
        try:
            yield from self._progress_locked()
        finally:
            self._exit()

    def _progress_locked(self):
        po = self.config.progress_overhead
        if po > 0:
            yield po
        poll = self.nic.poll
        recv_overhead = self._recv_overhead
        while True:
            pkt = poll()
            if pkt is None:
                return
            if recv_overhead > 0:
                yield recv_overhead
            yield from self._handle_packet(pkt)

    def _handle_packet(self, pkt: Packet):
        meta = pkt.meta
        if self.obs is not None and meta.get("trace") is not None:
            self.obs.emit(meta["trace"], "progress", self.rank,
                          ptype=pkt.ptype.name)
        if meta.get("rma_win") is not None:
            handler = self._rma_handlers.get(meta["rma_win"])
            if handler is None:
                raise MPIUsageError(
                    f"rank {self.rank}: RMA control for unknown window "
                    f"{meta['rma_win']}"
                )
            handler(pkt)
            return
        if pkt.tag == _BARRIER_TAG:
            self._barrier_msgs.append((pkt.src, pkt.payload))
            waiters, self._barrier_waiters = self._barrier_waiters, []
            for ev in waiters:
                ev.succeed(None)
            return
        if pkt.ptype is PacketType.EGR:
            yield from self._arrival_eager(pkt)
        elif pkt.ptype is PacketType.RTS:
            yield from self._arrival_rts(pkt)
        elif pkt.ptype is PacketType.RTR:
            yield from self._arrival_rtr(pkt)
        elif pkt.ptype is PacketType.RDMA:
            yield from self._arrival_rdma(pkt)
        else:  # pragma: no cover - exhaustive
            raise MPIUsageError(f"unhandled packet {pkt!r}")

    def _arrival_eager(self, pkt: Packet):
        entry, inspected = self.posted.match_arrival(pkt.src, pkt.tag)
        cost = inspected * self._match_cost
        if cost > 0:
            yield cost
        tr = pkt.meta.get("trace") if self.obs is not None else None
        if entry is not None:
            req = entry.req
            entry.recycle()
            if tr is not None:
                self.obs.emit(tr, "handler", self.rank,
                              inspected=inspected, posted=True)
            yield from self._charge(self.cpu.memcpy_time(pkt.size))
            req._complete(
                pkt.payload, MpiStatus(pkt.src, pkt.tag, pkt.size)
            )
            if tr is not None:
                self.obs.emit(tr, "complete", self.rank, bytes=pkt.size)
            self._peer_credit_home(pkt.src)
        else:
            self._c_unexpected.add()
            self.unexpected.add(
                UnexpectedMessage.alloc(
                    pkt.src, pkt.tag, pkt.size, pkt.payload, "eager",
                    trace=pkt.meta.get("trace"),
                )
            )
            if self.sanitizer is not None:
                self.sanitizer.on_unexpected(len(self.unexpected))

    def _arrival_rts(self, pkt: Packet):
        entry, inspected = self.posted.match_arrival(pkt.src, pkt.tag)
        cost = inspected * self._match_cost
        if cost > 0:
            yield cost
        if entry is not None:
            req = entry.req
            entry.recycle()
            if self.obs is not None and pkt.meta.get("trace") is not None:
                self.obs.emit(pkt.meta["trace"], "handler", self.rank,
                              inspected=inspected, posted=True)
            yield from self._answer_rts(pkt, req)
        else:
            self._c_unexpected.add()
            self.unexpected.add(
                UnexpectedMessage.alloc(
                    pkt.src, pkt.tag, pkt.size, None, "rndv", token=pkt,
                    trace=pkt.meta.get("trace"),
                )
            )
            if self.sanitizer is not None:
                self.sanitizer.on_unexpected(len(self.unexpected))

    def _arrival_rtr(self, pkt: Packet):
        """We are the rendezvous sender; RTR authorizes the RDMA put."""
        send_req: MpiRequest = pkt.meta["send_req"]
        data_pkt = Packet(
            PacketType.RDMA, self.rank, pkt.src, pkt.tag, pkt.size,
            payload=pkt.meta["data"],
        )
        data_pkt.meta["mpi"] = True
        data_pkt.meta["recv_req"] = pkt.meta["recv_req"]
        data_pkt.meta["rkey"] = self._rndv_sink_rkey(pkt.src)
        if pkt.meta.get("trace") is not None:
            data_pkt.meta["trace"] = pkt.meta["trace"]
        # Account for imperfect pipelining of the large transfer.
        eff = self.config.bandwidth_efficiency
        if eff < 1.0:
            penalty = self.nic.model.serialization_time(pkt.size) * (1 / eff - 1)
            yield from self._charge(penalty)
        yield from self._inject(
            data_pkt,
            on_local_complete=lambda: send_req._complete(),
        )

    def _rndv_sink_rkey(self, dst: int) -> int:
        """rkey of the peer's sink region for our rendezvous payloads."""
        peer = self._world_lookup(dst)
        rkey = peer._rndv_sinks.get(self.rank)
        if rkey is None:
            buf = peer.nic.register(1 << 40, label=f"rndv-sink-from-{self.rank}")
            rkey = buf.rkey
            peer._rndv_sinks[self.rank] = rkey
        return rkey

    def _arrival_rdma(self, pkt: Packet):
        recv_req: MpiRequest = pkt.meta["recv_req"]
        if recv_req.done:
            # MPI assumes a reliable transport: a duplicated rendezvous
            # payload double-completes the request.  No recovery protocol
            # exists at this layer — surface the internal error (only
            # reachable under fault injection).
            raise MPIProtocolError(
                f"rank {self.rank}: rendezvous payload for completed "
                f"request {recv_req.uid} (duplicate delivery — MPI "
                f"assumes reliable transport)"
            )
        yield from self._charge(0)  # data landed by RDMA; no copy here
        recv_req._complete(
            pkt.payload, MpiStatus(pkt.src, pkt.tag, pkt.size)
        )
        if self.obs is not None and pkt.meta.get("trace") is not None:
            self.obs.emit(pkt.meta["trace"], "complete", self.rank,
                          bytes=pkt.size)

    # ------------------------------------------------------------------
    # Finalize audit (MPI_Finalize semantics, sanitizer-only)
    # ------------------------------------------------------------------
    def finalize_check(self) -> None:
        """MUST-style audit at the point the owning layer finalizes.

        No-op unless sanitizers are armed.  Reports sends never matched
        by a receive, unexpected messages never received, and posted
        receives never matched — all of which MPI_Finalize makes
        erroneous or silently leaks.
        """
        if self.sanitizer is not None:
            self.sanitizer.check_finalize(self)

    # ------------------------------------------------------------------
    # Barrier support (used by MpiWorld)
    # ------------------------------------------------------------------
    def _barrier_wait_msg(self, src: int, round_no: int):
        """Wait for the dissemination-barrier message of ``round_no``."""
        while True:
            for i, (s, r) in enumerate(self._barrier_msgs):
                if s == src and r == round_no:
                    del self._barrier_msgs[i]
                    return
            ev = Event(self.env)
            self._barrier_waiters.append(ev)
            arrival = self.nic.wait_arrival()
            yield self.env.any_of([ev, arrival])
            yield from self._progress_locked()
