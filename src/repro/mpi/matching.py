"""MPI message-matching engine: posted-receive and unexpected queues.

MPI's matching semantics force sequential traversal of these two lists
(the paper's citation [17] — "partly intrinsic to the design of MPI which
forces the traversal of sequential lists").  Both queues here return the
number of elements *inspected* along with the match, so the endpoint can
charge traversal time proportionally.  Wildcards (``ANY_SOURCE`` /
``ANY_TAG``) and the FIFO-per-(source, tag) ordering guarantee are
implemented exactly; these are the semantics LCI drops.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.mpi.types import ANY_SOURCE, ANY_TAG, MpiRequest

__all__ = ["PostedReceive", "UnexpectedMessage", "PostedQueue", "UnexpectedQueue"]


class PostedReceive:
    """A receive posted before its message arrived."""

    __slots__ = ("req", "source", "tag")

    def __init__(self, req: MpiRequest, source: int, tag: int):
        self.req = req
        self.source = source
        self.tag = tag

    def matches(self, src: int, tag: int) -> bool:
        return (self.source in (ANY_SOURCE, src)) and (self.tag in (ANY_TAG, tag))


class UnexpectedMessage:
    """A message that arrived before any matching receive was posted."""

    __slots__ = (
        "source", "tag", "size", "payload", "protocol", "token",
        "trace", "arrived_at",
    )

    def __init__(
        self,
        source: int,
        tag: int,
        size: int,
        payload: Any,
        protocol: str,
        token: Any = None,
        trace: Optional[str] = None,
    ):
        self.source = source
        self.tag = tag
        self.size = size
        self.payload = payload
        #: "eager" (data present) or "rndv" (RTS only; data follows on RTR).
        self.protocol = protocol
        #: Protocol-specific handle (e.g. the RTS packet to answer).
        self.token = token
        #: Observability trace id of the message (None when obs is off).
        self.trace = trace
        #: Simulated time the message entered the unexpected queue
        #: (0.0 until observability stamps it); the matching wait the
        #: paper blames is measured from here.
        self.arrived_at = 0.0

    def matched_by(self, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, self.source)) and (
            tag in (ANY_TAG, self.tag)
        )


class PostedQueue:
    """FIFO list of posted receives, traversed on every arrival."""

    def __init__(self):
        self._items: List[PostedReceive] = []
        self.max_length = 0
        #: Running total of elements inspected across all walks —
        #: deterministic queue state (like ``max_length``), snapshotted
        #: by the endpoint's deferred profiler source.
        self.probes = 0
        #: Optional ProfileContext, attached by the endpoint when
        #: host-side profiling is installed (pure observation).
        self.profiler = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[PostedReceive, ...]:
        """Read-only snapshot in post (FIFO) order, for inspection tools."""
        return tuple(self._items)

    def post(self, entry: PostedReceive) -> None:
        self._items.append(entry)
        if len(self._items) > self.max_length:
            self.max_length = len(self._items)

    def match_arrival(
        self, src: int, tag: int
    ) -> Tuple[Optional[PostedReceive], int]:
        """First posted receive matching an arrival; (entry, inspected)."""
        prof = self.profiler
        if prof is None:
            return self._walk(src, tag)
        t0 = prof.clock()
        try:
            return self._walk(src, tag)
        finally:
            prof.leaf("mpi.matching.posted_walk", t0)

    def _walk(self, src: int, tag: int) -> Tuple[Optional[PostedReceive], int]:
        for i, entry in enumerate(self._items):
            if entry.matches(src, tag):
                del self._items[i]
                self.probes += i + 1
                return entry, i + 1
        inspected = len(self._items)
        self.probes += inspected
        return None, inspected

    def cancel(self, req: MpiRequest) -> bool:
        for i, entry in enumerate(self._items):
            if entry.req is req:
                del self._items[i]
                req.cancelled = True
                return True
        return False


class UnexpectedQueue:
    """FIFO list of arrived-but-unmatched messages."""

    def __init__(self):
        self._items: List[UnexpectedMessage] = []
        self.max_length = 0
        #: Lifetime enqueue count and walk-probe total — deterministic
        #: queue state, snapshotted by the endpoint's profiler source.
        self.enqueued = 0
        self.probes = 0
        #: Optional ObsContext + owning rank, attached by the endpoint
        #: when observability is installed (pure observation).
        self.obs = None
        self.host = -1
        #: Optional ProfileContext (same attachment path as ``obs``).
        self.profiler = None

    def __len__(self) -> int:
        return len(self._items)

    def add(self, msg: UnexpectedMessage) -> None:
        self._items.append(msg)
        self.enqueued += 1
        if len(self._items) > self.max_length:
            self.max_length = len(self._items)
        if self.obs is not None:
            msg.arrived_at = self.obs.now
            if msg.trace is not None:
                self.obs.emit(
                    msg.trace, "match_wait", self.host,
                    protocol=msg.protocol, depth=len(self._items),
                )

    def match_receive(
        self, source: int, tag: int, remove: bool = True
    ) -> Tuple[Optional[UnexpectedMessage], int]:
        """First unexpected message matching (source, tag); FIFO order.

        ``remove=False`` implements probe semantics: report without
        consuming.  Returns (message-or-None, elements inspected).
        """
        prof = self.profiler
        if prof is None:
            return self._walk(source, tag, remove)
        t0 = prof.clock()
        try:
            return self._walk(source, tag, remove)
        finally:
            prof.leaf("mpi.matching.unexpected_walk", t0)

    def _walk(
        self, source: int, tag: int, remove: bool
    ) -> Tuple[Optional[UnexpectedMessage], int]:
        for i, msg in enumerate(self._items):
            if msg.matched_by(source, tag):
                if remove:
                    del self._items[i]
                self.probes += i + 1
                return msg, i + 1
        inspected = len(self._items)
        self.probes += inspected
        return None, inspected
