"""MPI message-matching engine: posted-receive and unexpected queues.

MPI's matching semantics force sequential traversal of these two lists
(the paper's citation [17] — "partly intrinsic to the design of MPI which
forces the traversal of sequential lists").  Both queues here return the
number of elements *inspected* along with the match, so the endpoint can
charge traversal time proportionally.  Wildcards (``ANY_SOURCE`` /
``ANY_TAG``) and the FIFO-per-(source, tag) ordering guarantee are
implemented exactly; these are the semantics LCI drops.

Queue entries are ``__slots__`` records with class-level free-lists
(:meth:`PostedReceive.alloc` / :meth:`UnexpectedMessage.alloc`): every
message on a matching layer churns one of each, and recycling a consumed
entry is two list ops instead of an allocate/initialize/collect cycle.
The profiler and observability hooks are bound into the queues' method
slots at attach time (``match_arrival``/``match_receive``/``add`` are
instance attributes), so an unobserved run never branches on them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.mpi.types import ANY_SOURCE, ANY_TAG, MpiRequest
from repro.obs.profile import LEAF_SAMPLE_MASK, LEAF_SAMPLE_STRIDE

__all__ = ["PostedReceive", "UnexpectedMessage", "PostedQueue", "UnexpectedQueue"]


class PostedReceive:
    """A receive posted before its message arrived."""

    __slots__ = ("req", "source", "tag")

    #: Dead entries awaiting reuse.
    _free: List["PostedReceive"] = []

    def __init__(self, req: MpiRequest, source: int, tag: int):
        self.req = req
        self.source = source
        self.tag = tag

    @classmethod
    def alloc(cls, req: MpiRequest, source: int, tag: int) -> "PostedReceive":
        free = cls._free
        if free:
            entry = free.pop()
            entry.req = req
            entry.source = source
            entry.tag = tag
            return entry
        return cls(req, source, tag)

    def recycle(self) -> None:
        """Hand a matched-and-consumed entry back to the free-list.

        Caller contract: the entry has left its queue and its ``req`` has
        been extracted — no live reference remains.
        """
        self.req = None
        PostedReceive._free.append(self)

    def matches(self, src: int, tag: int) -> bool:
        return (self.source in (ANY_SOURCE, src)) and (self.tag in (ANY_TAG, tag))


class UnexpectedMessage:
    """A message that arrived before any matching receive was posted."""

    __slots__ = (
        "source", "tag", "size", "payload", "protocol", "token",
        "trace", "arrived_at",
    )

    #: Dead entries awaiting reuse.
    _free: List["UnexpectedMessage"] = []

    def __init__(
        self,
        source: int,
        tag: int,
        size: int,
        payload: Any,
        protocol: str,
        token: Any = None,
        trace: Optional[str] = None,
    ):
        self.source = source
        self.tag = tag
        self.size = size
        self.payload = payload
        #: "eager" (data present) or "rndv" (RTS only; data follows on RTR).
        self.protocol = protocol
        #: Protocol-specific handle (e.g. the RTS packet to answer).
        self.token = token
        #: Observability trace id of the message (None when obs is off).
        self.trace = trace
        #: Simulated time the message entered the unexpected queue
        #: (0.0 until observability stamps it); the matching wait the
        #: paper blames is measured from here.
        self.arrived_at = 0.0

    @classmethod
    def alloc(
        cls,
        source: int,
        tag: int,
        size: int,
        payload: Any,
        protocol: str,
        token: Any = None,
        trace: Optional[str] = None,
    ) -> "UnexpectedMessage":
        free = cls._free
        if free:
            msg = free.pop()
            msg.source = source
            msg.tag = tag
            msg.size = size
            msg.payload = payload
            msg.protocol = protocol
            msg.token = token
            msg.trace = trace
            msg.arrived_at = 0.0
            return msg
        return cls(source, tag, size, payload, protocol, token=token, trace=trace)

    def recycle(self) -> None:
        """Hand a matched-and-consumed entry back to the free-list.

        Payload/token references are dropped eagerly so recycling never
        extends the lifetime of message data or parked RTS packets.
        """
        self.payload = None
        self.token = None
        self.trace = None
        UnexpectedMessage._free.append(self)

    def matched_by(self, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, self.source)) and (
            tag in (ANY_TAG, self.tag)
        )


class PostedQueue:
    """FIFO list of posted receives, traversed on every arrival."""

    def __init__(self):
        self._items: List[PostedReceive] = []
        self.max_length = 0
        #: Running total of elements inspected across all walks —
        #: deterministic queue state (like ``max_length``), snapshotted
        #: by the endpoint's deferred profiler source.
        self.probes = 0
        self._profiler = None
        #: Hot entry point, rebound when a profiler attaches: the
        #: unprofiled walk IS match_arrival, no per-call branch.
        self.match_arrival = self._walk

    @property
    def profiler(self):
        """Optional ProfileContext, attached by the endpoint when
        host-side profiling is installed (pure observation).  Assigning
        it rebinds ``match_arrival``."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        if value is None:
            self.match_arrival = self._walk
            return
        # Closure-bound wrapper: clock/walk resolved once at attach time,
        # timing accumulated into a plain [cum, calls] cell folded in by
        # a deferred leaf source at snapshot time.  A walk of an *empty*
        # list (no state change, no inspection — ``_walk`` would return
        # ``(None, 0)`` untouched) skips the hook entirely, and only
        # every LEAF_SAMPLE_STRIDE'th walk reads the clock (cum is
        # scaled back up by the source; calls stay exact).  Region data
        # is wall-side only, so none of this can move a fingerprint.
        walk, items = self._walk, self._items
        clock = value.clock
        tot = [0.0, 0]

        def match_arrival(src, tag):
            if not items:
                return None, 0
            n = tot[1] + 1
            tot[1] = n
            if n & LEAF_SAMPLE_MASK:
                return walk(src, tag)
            t0 = clock()
            try:
                return walk(src, tag)
            finally:
                tot[0] += clock() - t0

        self.match_arrival = match_arrival
        value.add_leaf_source(lambda: (
            ("sim.engine.run", "mpi.matching.posted_walk",
             tot[0] * LEAF_SAMPLE_STRIDE, tot[1]),
        ))

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[PostedReceive, ...]:
        """Read-only snapshot in post (FIFO) order, for inspection tools."""
        return tuple(self._items)

    def post(self, entry: PostedReceive) -> None:
        self._items.append(entry)
        if len(self._items) > self.max_length:
            self.max_length = len(self._items)

    def _walk(self, src: int, tag: int) -> Tuple[Optional[PostedReceive], int]:
        """First posted receive matching an arrival; (entry, inspected)."""
        for i, entry in enumerate(self._items):
            if entry.matches(src, tag):
                del self._items[i]
                self.probes += i + 1
                return entry, i + 1
        inspected = len(self._items)
        self.probes += inspected
        return None, inspected

    def cancel(self, req: MpiRequest) -> bool:
        for i, entry in enumerate(self._items):
            if entry.req is req:
                del self._items[i]
                req.cancelled = True
                return True
        return False


class UnexpectedQueue:
    """FIFO list of arrived-but-unmatched messages."""

    def __init__(self):
        self._items: List[UnexpectedMessage] = []
        self.max_length = 0
        #: Lifetime enqueue count and walk-probe total — deterministic
        #: queue state, snapshotted by the endpoint's profiler source.
        self.enqueued = 0
        self.probes = 0
        self.host = -1
        self._obs = None
        self._profiler = None
        #: Hot entry points, rebound when obs / a profiler attach.
        self.add = self._add_plain
        self.match_receive = self._walk

    @property
    def obs(self):
        """Optional ObsContext (+ ``host`` rank), attached by the
        endpoint when observability is installed.  Assigning it rebinds
        ``add``."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        self.add = self._add_plain if value is None else self._add_observed

    @property
    def profiler(self):
        """Optional ProfileContext (same attachment path as ``obs``).
        Assigning it rebinds ``match_receive``."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        if value is None:
            self.match_receive = self._walk
            return
        # Same attach-time closure + empty-queue skip + sampled timing
        # + deferred leaf source as PostedQueue.
        walk, items = self._walk, self._items
        clock = value.clock
        tot = [0.0, 0]

        def match_receive(source, tag, remove=True):
            if not items:
                return None, 0
            n = tot[1] + 1
            tot[1] = n
            if n & LEAF_SAMPLE_MASK:
                return walk(source, tag, remove)
            t0 = clock()
            try:
                return walk(source, tag, remove)
            finally:
                tot[0] += clock() - t0

        self.match_receive = match_receive
        value.add_leaf_source(lambda: (
            ("sim.engine.run", "mpi.matching.unexpected_walk",
             tot[0] * LEAF_SAMPLE_STRIDE, tot[1]),
        ))

    def __len__(self) -> int:
        return len(self._items)

    def _add_plain(self, msg: UnexpectedMessage) -> None:
        self._items.append(msg)
        self.enqueued += 1
        if len(self._items) > self.max_length:
            self.max_length = len(self._items)

    def _add_observed(self, msg: UnexpectedMessage) -> None:
        self._add_plain(msg)
        obs = self._obs
        msg.arrived_at = obs.now
        if msg.trace is not None:
            obs.emit(
                msg.trace, "match_wait", self.host,
                protocol=msg.protocol, depth=len(self._items),
            )

    def _walk(
        self, source: int, tag: int, remove: bool = True
    ) -> Tuple[Optional[UnexpectedMessage], int]:
        """First unexpected message matching (source, tag); FIFO order.

        ``remove=False`` implements probe semantics: report without
        consuming.  Returns (message-or-None, elements inspected).
        """
        for i, msg in enumerate(self._items):
            if msg.matched_by(source, tag):
                if remove:
                    del self._items[i]
                self.probes += i + 1
                return msg, i + 1
        inspected = len(self._items)
        self.probes += inspected
        return None, inspected
