"""Locality-aware concurrent packet pool.

The pool is the flow-control heart of LCI: it holds a *fixed* number of
packets per host, so memory for communication buffers is bounded for the
whole run (Fig. 5) and a sender that outruns the network simply fails to
allocate and retries (no MPI-style crash).  The locality-aware design
(the paper's reference [16]) gives each thread a small private cache of
free packets: a cache hit costs a fraction of an atomic op and reuses a
warm buffer, a miss falls back to the shared lock-free pool at full
atomic cost.

Allocation is non-blocking and can return ``None``; that is the API
contract (Algorithm 1 returns NULL when ``packetAlloc`` fails).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.netapi.packet import Packet, PacketType
from repro.sim.engine import Environment, Event
from repro.sim.machine import CpuModel
from repro.sim.monitor import StatRegistry

__all__ = ["PacketPool"]


class PacketPool:
    """Fixed-size pool of reusable packet buffers for one host."""

    def __init__(
        self,
        env: Environment,
        cpu: CpuModel,
        size: int,
        packet_data_bytes: int,
        local_cache_packets: int = 4,
        local_hit_cost_factor: float = 0.25,
        rx_reserve: int = 2,
        stats: Optional[StatRegistry] = None,
    ):
        """``rx_reserve`` packets are usable only by the receive path
        (the communication server's preposted buffers): send-side
        allocations fail once the shared pool drops to the reserve.
        This guarantees the server can always accept arrivals, breaking
        the cyclic rendezvous deadlock a fully-starved symmetric pool
        would otherwise allow (every budget parked in an outgoing RTS,
        no host able to accept the incoming ones).
        """
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if rx_reserve >= size:
            rx_reserve = max(0, size - 1)
        self.env = env
        self.cpu = cpu
        self.size = size
        self.rx_reserve = rx_reserve
        self.packet_data_bytes = packet_data_bytes
        self.local_cache_packets = local_cache_packets
        self.local_hit_cost_factor = local_hit_cost_factor
        self.stats = stats or StatRegistry("lci.pool")
        #: Free descriptors in the shared pool (counts, not objects: the
        #: Packet object itself is remade per message; the *budget* is
        #: what the pool manages).
        self._free = size
        #: thread-key -> private free count.
        self._local: Dict[object, int] = {}
        self._availability_waiters: List[Event] = []
        #: Optional lifecycle checker (repro.sanitize.lci_checks.
        #: LciSanitizer), attached by the owning queue when sanitizers
        #: are armed.  Pure observation: never charges simulated time.
        self.sanitizer = None
        # Memory accounting: the pool preallocates all its buffers once.
        self.stats.peak("pool_bytes").add(size * packet_data_bytes)

    # ------------------------------------------------------------------
    @property
    def free_packets(self) -> int:
        return self._free + sum(self._local.values())

    @property
    def in_use(self) -> int:
        return self.size - self.free_packets

    def bytes_allocated(self) -> int:
        """Total preallocated communication-buffer bytes (constant)."""
        return self.size * self.packet_data_bytes

    def register_obs(self, obs, host: int) -> None:
        """Expose pool occupancy to the observability sampler."""
        obs.register_probe("lci.pool_in_use", host, lambda: self.in_use)
        obs.register_probe("lci.pool_free", host, lambda: self.free_packets)

    # ------------------------------------------------------------------
    def alloc(self, thread: object = None, for_recv: bool = False):
        """Generator: try to take a packet budget; returns bool success.

        Charges a fraction of an atomic on a local-cache hit, a full
        atomic on a shared-pool hit, and a full atomic on failure (the
        failed fetch still crossed the cache line).  Send-side allocs
        (``for_recv=False``) cannot dip into the receive reserve.
        """
        local = self._local.get(thread, 0)
        if thread is not None and local > 0:
            self._local[thread] = local - 1
            self.stats.counter("alloc_local_hits").add()
            if self.sanitizer is not None:
                self.sanitizer.on_alloc()
            yield self.env.timeout(
                self.cpu.atomic_op * self.local_hit_cost_factor
            )
            return True
        yield self.env.timeout(self.cpu.atomic_op)
        floor = 0 if for_recv else self.rx_reserve
        if self._free > floor:
            self._free -= 1
            self.stats.counter("alloc_global_hits").add()
            if self.sanitizer is not None:
                self.sanitizer.on_alloc()
            return True
        # Steal path: the shared pool is at its floor but other threads'
        # private caches may hold free packets; raid the fullest cache
        # (an extra atomic — the locality-aware pool's slow path).
        # Send-side steals still honour the receive reserve against the
        # *total* free count.
        if for_recv or self.free_packets > self.rx_reserve:
            victim = None
            for key, count in self._local.items():
                if count > 0 and (victim is None or count > self._local[victim]):
                    victim = key
            if victim is not None:
                self._local[victim] -= 1
                self.stats.counter("alloc_steals").add()
                if self.sanitizer is not None:
                    self.sanitizer.on_alloc()
                yield self.env.timeout(self.cpu.atomic_op)
                return True
        self.stats.counter("alloc_failures").add()
        return False

    def free(self, thread: object = None):
        """Generator: return a packet budget to the pool."""
        if self.sanitizer is not None:
            self.sanitizer.on_free(self)
        if thread is not None:
            local = self._local.get(thread, 0)
            if local < self.local_cache_packets:
                self._local[thread] = local + 1
                self.stats.counter("free_local").add()
                yield self.env.timeout(
                    self.cpu.atomic_op * self.local_hit_cost_factor
                )
                self._wake()
                return
        yield self.env.timeout(self.cpu.atomic_op)
        self._free += 1
        self.stats.counter("free_global").add()
        self._wake()

    def free_nowait(self, thread: object = None) -> None:
        """Zero-cost variant for completion callbacks (cost was prepaid by
        the operation that armed the callback)."""
        if self.sanitizer is not None:
            self.sanitizer.on_free(self)
        self.stats.counter("free_nowait").add()
        if thread is not None:
            local = self._local.get(thread, 0)
            if local < self.local_cache_packets:
                self._local[thread] = local + 1
                self._wake()
                return
        self._free += 1
        self._wake()

    def _wake(self) -> None:
        if self._availability_waiters:
            waiters, self._availability_waiters = self._availability_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def wait_available(self, for_recv: bool = False) -> Event:
        """Event firing when a free packet may be available (helper for
        blocking wrappers; the core API stays non-blocking).  Send-side
        waiters only fire once the pool is above the receive reserve."""
        ev = Event(self.env)
        if for_recv:
            ready = self.free_packets > 0
        else:
            ready = self.free_packets > self.rx_reserve
        if ready:
            ev.succeed(None)
        else:
            self._availability_waiters.append(ev)
        return ev

    def make_packet(
        self, ptype: PacketType, src: int, dst: int, tag: int, size: int,
        payload=None,
    ) -> Packet:
        """Build a packet descriptor drawing on an already-allocated budget."""
        pkt = Packet(ptype, src, dst, tag, size, payload=payload)
        pkt.pool = self
        if self.sanitizer is not None:
            self.sanitizer.on_packet_made(pkt)
        return pkt

    # ------------------------------------------------------------------
    # Sanitizer-visible packet lifecycle (no-ops when sanitizers are off)
    # ------------------------------------------------------------------
    def retire(self, pkt: Packet) -> None:
        """Mark ``pkt``'s buffer as recycled (its budget is being freed).

        Callers pair this with ``free``/``free_nowait`` at the point the
        packet's contents stop being referenced; touching the packet
        afterwards is a use-after-free the sanitizer reports.
        """
        if self.sanitizer is not None:
            self.sanitizer.on_packet_retired(pkt)

    def touch(self, pkt: Packet) -> None:
        """Declare that ``pkt``'s buffer is being read or handled."""
        if self.sanitizer is not None:
            self.sanitizer.on_packet_use(pkt)
