"""Locality-aware concurrent packet pool.

The pool is the flow-control heart of LCI: it holds a *fixed* number of
packets per host, so memory for communication buffers is bounded for the
whole run (Fig. 5) and a sender that outruns the network simply fails to
allocate and retries (no MPI-style crash).  The locality-aware design
(the paper's reference [16]) gives each thread a small private cache of
free packets: a cache hit costs a fraction of an atomic op and reuses a
warm buffer, a miss falls back to the shared lock-free pool at full
atomic cost.

Allocation is non-blocking and can return ``None``; that is the API
contract (Algorithm 1 returns NULL when ``packetAlloc`` fails).

Representation: the pool is struct-of-arrays.  The *budget* (how many
packets a host may have in flight) is plain integer arithmetic
(``_free`` plus per-thread cache counts), and the packet descriptors
themselves live in a slot-indexed parallel list (``_slot_pkts``) with an
integer free-stack (``_free_idx``) — acquiring a descriptor pops a slot
index and re-stamps the resident object in place, releasing one pushes
the index back.  No allocation, no collection, on the steady-state path.
Descriptor reuse is only armed (:meth:`enable_packet_reuse`) when no
fault injector, tracer, or sanitizer could still be holding the old
incarnation; otherwise :meth:`make_packet` falls back to fresh objects
and behaviour is exactly the historical one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.netapi import packet as _packet_mod
from repro.netapi.packet import Packet, PacketType
from repro.sim.engine import Environment, Event
from repro.sim.machine import CpuModel
from repro.sim.monitor import StatRegistry

__all__ = ["PacketPool"]


def _noop_lifecycle(pkt) -> None:
    """Shared no-op bound into ``touch``/``retire`` when nothing listens."""


class PacketPool:
    """Fixed-size pool of reusable packet buffers for one host."""

    def __init__(
        self,
        env: Environment,
        cpu: CpuModel,
        size: int,
        packet_data_bytes: int,
        local_cache_packets: int = 4,
        local_hit_cost_factor: float = 0.25,
        rx_reserve: int = 2,
        stats: Optional[StatRegistry] = None,
    ):
        """``rx_reserve`` packets are usable only by the receive path
        (the communication server's preposted buffers): send-side
        allocations fail once the shared pool drops to the reserve.
        This guarantees the server can always accept arrivals, breaking
        the cyclic rendezvous deadlock a fully-starved symmetric pool
        would otherwise allow (every budget parked in an outgoing RTS,
        no host able to accept the incoming ones).
        """
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if rx_reserve >= size:
            rx_reserve = max(0, size - 1)
        self.env = env
        self.cpu = cpu
        self.size = size
        self.rx_reserve = rx_reserve
        self.packet_data_bytes = packet_data_bytes
        self.local_cache_packets = local_cache_packets
        self.local_hit_cost_factor = local_hit_cost_factor
        self.stats = stats or StatRegistry("lci.pool")
        #: Free descriptors in the shared pool (counts, not objects: the
        #: *budget* is what flow control manages; the descriptor slots
        #: below are managed independently).
        self._free = size
        #: thread-key -> private free count.
        self._local: Dict[object, int] = {}
        self._availability_waiters: List[Event] = []
        # -- slot-indexed descriptor storage (struct-of-arrays) --
        #: slot id -> resident Packet object (lazily built on first use).
        self._slot_pkts: List[Optional[Packet]] = [None] * size
        #: free slot ids; acquire = pop, release = append.
        self._free_idx: List[int] = list(range(size - 1, -1, -1))
        #: Descriptor reuse armed (see module docstring).
        self._reuse = False
        #: Optional lifecycle checker (repro.sanitize.lci_checks.
        #: LciSanitizer), attached by the owning queue when sanitizers
        #: are armed.  Pure observation: never charges simulated time.
        #: Assigning it rebinds the ``touch``/``retire`` hook slots.
        self._sanitizer = None
        self.touch = _noop_lifecycle
        self.retire = _noop_lifecycle
        #: Pure slot reclamation for descriptors that die without a
        #: ``retire`` (the RTS after its RTR is built): a no-op unless
        #: reuse is armed, and never visible to sanitizers/analyzers.
        self.reclaim = _noop_lifecycle
        # Hoisted counters: one registry lookup per pool, not per op.
        self._c_local_hits = self.stats.counter("alloc_local_hits")
        self._c_global_hits = self.stats.counter("alloc_global_hits")
        self._c_steals = self.stats.counter("alloc_steals")
        self._c_failures = self.stats.counter("alloc_failures")
        self._c_free_local = self.stats.counter("free_local")
        self._c_free_global = self.stats.counter("free_global")
        self._c_free_nowait = self.stats.counter("free_nowait")
        # Frequently-used cost constants.
        self._atomic = cpu.atomic_op
        self._atomic_local = cpu.atomic_op * local_hit_cost_factor
        # Memory accounting: the pool preallocates all its buffers once.
        self.stats.peak("pool_bytes").add(size * packet_data_bytes)

    # ------------------------------------------------------------------
    @property
    def sanitizer(self):
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, value) -> None:
        self._sanitizer = value
        self._rebind_lifecycle()

    def enable_packet_reuse(self) -> None:
        """Arm slot-resident descriptor reuse.

        Only call when no fault injector (duplicate deliveries keep dead
        descriptors live), no obs tracer, and no sanitizer (tracks
        per-descriptor lifecycles) is attached — the owning queue checks
        those conditions at wiring time.
        """
        self._reuse = True
        self._rebind_lifecycle()

    def _rebind_lifecycle(self) -> None:
        if self._sanitizer is not None:
            self._reuse = False
            self.touch = self._touch_sanitized
            self.retire = self._retire_sanitized
            self.reclaim = _noop_lifecycle
        elif self._reuse:
            self.touch = _noop_lifecycle
            self.retire = self._retire_reuse
            self.reclaim = self._retire_reuse
        else:
            self.touch = _noop_lifecycle
            self.retire = _noop_lifecycle
            self.reclaim = _noop_lifecycle

    # ------------------------------------------------------------------
    @property
    def free_packets(self) -> int:
        return self._free + sum(self._local.values())

    @property
    def in_use(self) -> int:
        return self.size - self.free_packets

    def bytes_allocated(self) -> int:
        """Total preallocated communication-buffer bytes (constant)."""
        return self.size * self.packet_data_bytes

    def register_obs(self, obs, host: int) -> None:
        """Expose pool occupancy to the observability sampler."""
        obs.register_probe("lci.pool_in_use", host, lambda: self.in_use)
        obs.register_probe("lci.pool_free", host, lambda: self.free_packets)

    # ------------------------------------------------------------------
    def alloc(self, thread: object = None, for_recv: bool = False):
        """Generator: try to take a packet budget; returns bool success.

        Charges a fraction of an atomic on a local-cache hit, a full
        atomic on a shared-pool hit, and a full atomic on failure (the
        failed fetch still crossed the cache line).  Send-side allocs
        (``for_recv=False``) cannot dip into the receive reserve.
        """
        local = self._local.get(thread, 0)
        if thread is not None and local > 0:
            self._local[thread] = local - 1
            self._c_local_hits.add()
            if self._sanitizer is not None:
                self._sanitizer.on_alloc()
            yield self._atomic_local
            return True
        yield self._atomic
        floor = 0 if for_recv else self.rx_reserve
        if self._free > floor:
            self._free -= 1
            self._c_global_hits.add()
            if self._sanitizer is not None:
                self._sanitizer.on_alloc()
            return True
        # Steal path: the shared pool is at its floor but other threads'
        # private caches may hold free packets; raid the fullest cache
        # (an extra atomic — the locality-aware pool's slow path).
        # Send-side steals still honour the receive reserve against the
        # *total* free count.
        if for_recv or self.free_packets > self.rx_reserve:
            victim = None
            for key, count in self._local.items():
                if count > 0 and (victim is None or count > self._local[victim]):
                    victim = key
            if victim is not None:
                self._local[victim] -= 1
                self._c_steals.add()
                if self._sanitizer is not None:
                    self._sanitizer.on_alloc()
                yield self._atomic
                return True
        self._c_failures.add()
        return False

    def free(self, thread: object = None):
        """Generator: return a packet budget to the pool."""
        if self._sanitizer is not None:
            self._sanitizer.on_free(self)
        if thread is not None:
            local = self._local.get(thread, 0)
            if local < self.local_cache_packets:
                self._local[thread] = local + 1
                self._c_free_local.add()
                yield self._atomic_local
                self._wake()
                return
        yield self._atomic
        self._free += 1
        self._c_free_global.add()
        self._wake()

    def free_nowait(self, thread: object = None) -> None:
        """Zero-cost variant for completion callbacks (cost was prepaid by
        the operation that armed the callback)."""
        if self._sanitizer is not None:
            self._sanitizer.on_free(self)
        self._c_free_nowait.add()
        if thread is not None:
            local = self._local.get(thread, 0)
            if local < self.local_cache_packets:
                self._local[thread] = local + 1
                self._wake()
                return
        self._free += 1
        self._wake()

    def _wake(self) -> None:
        if self._availability_waiters:
            waiters, self._availability_waiters = self._availability_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def wait_available(self, for_recv: bool = False) -> Event:
        """Event firing when a free packet may be available (helper for
        blocking wrappers; the core API stays non-blocking).  Send-side
        waiters only fire once the pool is above the receive reserve."""
        ev = Event(self.env)
        if for_recv:
            ready = self.free_packets > 0
        else:
            ready = self.free_packets > self.rx_reserve
        if ready:
            ev.succeed(None)
        else:
            self._availability_waiters.append(ev)
        return ev

    def make_packet(
        self, ptype: PacketType, src: int, dst: int, tag: int, size: int,
        payload=None,
    ) -> Packet:
        """Build a packet descriptor drawing on an already-allocated budget.

        With reuse armed, the descriptor comes out of a pool slot and is
        re-stamped in place (fresh ``uid``, cleared ``meta``); otherwise a
        fresh object is built.  Either way the caller sees a packet in the
        exact state a newly-constructed one would have.
        """
        if self._reuse and self._free_idx:
            slot = self._free_idx.pop()
            pkt = self._slot_pkts[slot]
            if pkt is None:
                pkt = Packet(ptype, src, dst, tag, size, payload=payload)
                pkt.slot = slot
                self._slot_pkts[slot] = pkt
            else:
                pkt.ptype = ptype
                pkt.src = src
                pkt.dst = dst
                pkt.tag = tag
                pkt.size = size
                pkt.payload = payload
                pkt.slot = slot
                if pkt.meta:
                    pkt.meta.clear()
                pkt.uid = next(_packet_mod._packet_ids)
                pkt.request = None
            pkt.pool = self
            return pkt
        pkt = Packet(ptype, src, dst, tag, size, payload=payload)
        pkt.pool = self
        if self._sanitizer is not None:
            self._sanitizer.on_packet_made(pkt)
        return pkt

    # ------------------------------------------------------------------
    # Packet lifecycle hook slots.
    #
    # ``touch(pkt)`` declares that a packet's buffer is being read or
    # handled; ``retire(pkt)`` marks it recycled (its budget is being
    # freed) — touching it afterwards is a use-after-free.  Both are
    # *rebindable slots*: plain no-ops by default, sanitizer checks when
    # one is attached, slot reclamation when descriptor reuse is armed.
    # The historical ``if sanitizer is not None`` branch is gone from
    # every per-packet call site.
    # ------------------------------------------------------------------
    def _retire_reuse(self, pkt: Packet) -> None:
        owner = pkt.pool
        if owner is not None and pkt.slot >= 0:
            # Cross-host retire is the norm (the receiver retires the
            # sender's descriptor): the slot goes back to its *owner*.
            owner._free_idx.append(pkt.slot)
            # slot < 0 while the descriptor sits on the free list makes
            # a double retire a no-op instead of handing the same slot
            # out twice; make_packet re-stamps it on reacquisition.
            pkt.slot = -1
            pkt.payload = None
            pkt.request = None

    def _retire_sanitized(self, pkt: Packet) -> None:
        self._sanitizer.on_packet_retired(pkt)

    def _touch_sanitized(self, pkt: Packet) -> None:
        self._sanitizer.on_packet_use(pkt)
