"""The LCI *Queue* interface: SEND-ENQ and RECV-DEQ (Algorithms 1 & 2).

Communication happens in two steps (Section III-D):

* **Initiation** — ``send_enq`` / ``recv_deq`` obtain resources or check
  for an incoming packet.  Initiation *can fail* (pool empty, nothing
  pending); failure is non-fatal, the caller retries later.  Both are
  short and safe to call from any compute thread concurrently — the only
  shared state is the lock-free pool and queue.
* **Completion** — progress is implicit (the communication server drives
  it); when an operation finishes its request's boolean flag flips.
  Checking the flag costs nothing.

There is no tag matching and no ordering enforcement: ``recv_deq``
returns whatever packet arrived first (the *first-packet policy*).  A
user needing order keeps their own list of requests — Abelian's layer
does exactly that per incoming host.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.lci.backends import BACKENDS
from repro.lci.config import LciConfig
from repro.lci.mpmc_queue import MpmcQueue
from repro.lci.packet_pool import PacketPool
from repro.lci.request import LciRequest
from repro.netapi.nic import Nic
from repro.netapi.packet import Packet, PacketType
from repro.obs.profile import LEAF_SAMPLE_STRIDE
from repro.sanitize.lci_checks import LciSanitizer
from repro.sim.engine import Environment
from repro.sim.machine import CpuModel
from repro.sim.monitor import StatRegistry

__all__ = ["LciQueue"]


class LciQueue:
    """One host's LCI endpoint state: pool ``P``, queue ``Q``, NIC."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        nic: Nic,
        cpu: CpuModel,
        num_hosts: int,
        config: Optional[LciConfig] = None,
        stats: Optional[StatRegistry] = None,
    ):
        self.env = env
        self.rank = rank
        self.nic = nic
        self.cpu = cpu
        self.config = config or LciConfig()
        if self.config.backend not in BACKENDS:
            raise ValueError(
                f"unknown LCI backend {self.config.backend!r}; "
                f"pick from {sorted(BACKENDS)}"
            )
        self.backend = BACKENDS[self.config.backend]
        self.stats = stats or StatRegistry(f"lci.rank{rank}")
        self.pool = PacketPool(
            env,
            cpu,
            size=self.config.pool_size(num_hosts),
            packet_data_bytes=self.config.packet_data_bytes,
            local_cache_packets=self.config.local_cache_packets,
            local_hit_cost_factor=self.config.local_hit_cost_factor,
            stats=StatRegistry(f"lci.rank{rank}.pool"),
        )
        self.queue = MpmcQueue(
            env, cpu, stats=StatRegistry(f"lci.rank{rank}.q")
        )
        # Recovery protocol: armed only when an installed fault plan can
        # lose/duplicate/reorder packets; otherwise sends go straight to
        # the NIC and no protocol state exists.
        self.reliability = None
        faults = getattr(nic.fabric, "faults", None)
        if faults is not None and faults.plan.needs_reliability:
            from repro.lci.reliability import ReliableLink

            self.reliability = ReliableLink(env, nic, self.config, self.stats)
        # Lifecycle sanitizer, discovered like the fault injector.  The
        # pool cannot see the fabric, so the queue hands it the checker.
        self.sanitizer: Optional[LciSanitizer] = None
        _ctx = getattr(nic.fabric, "sanitizer", None)
        if _ctx is not None:
            self.sanitizer = LciSanitizer(_ctx, rank)
            self.pool.sanitizer = self.sanitizer
        # Observability: pool-occupancy and queue-depth probes.
        self.obs = getattr(nic.fabric, "obs", None)
        if self.obs is not None:
            self.pool.register_obs(self.obs, rank)
            self.obs.register_probe(
                "lci.queue_depth", rank, self.queue.__len__
            )
        # Host-side profiler: the server loop reads it for progress
        # regions; pool/server work counts are *deferred* — the pool's
        # always-on stat registry is snapshotted at flush time instead
        # of paying per-op increments (the alloc/free paths are the
        # hottest host code in the LCI layer).
        self.profiler = getattr(nic.fabric, "profiler", None)
        #: [cum_seconds, calls] for the per-harvest progress region,
        #: folded in by a deferred leaf source (harvests only happen
        #: inside the event loop, so the parent path is static).  The
        #: server loop samples the clock every LEAF_SAMPLE_STRIDE'th
        #: harvest; the source scales cum back up, calls stay exact.
        self._r_progress = [0.0, 0]
        if self.profiler is not None:
            self.profiler.add_source(self._profile_counts)
            self.profiler.add_leaf_source(lambda: (
                ("sim.engine.run", "lci.server.progress",
                 self._r_progress[0] * LEAF_SAMPLE_STRIDE,
                 self._r_progress[1]),
            ))
        # Descriptor-slot reuse: only safe when nothing can hold a dead
        # packet across its next incarnation — no retransmit buffers
        # (faults), no trace events, no lifecycle sanitizer.
        if (faults is None and self.sanitizer is None and self.obs is None
                and self.reliability is None):
            self.pool.enable_packet_reuse()
        # Hoisted per-op costs and counters for the hot generators below.
        self._send_overhead = (
            self.nic.model.send_overhead + self.backend.send_extra
        )
        self._c_egr_sends = self.stats.counter("egr_sends")
        self._c_rts_sends = self.stats.counter("rts_sends")
        self._c_egr_recvs = self.stats.counter("egr_recvs")
        self._c_rtr_sends = self.stats.counter("rtr_sends")

    def _profile_counts(self):
        """Deferred profiler source: pool traffic + server harvests."""
        ps = self.pool.stats
        return (
            ("lci.pool_acquires",
             ps.counter_value("alloc_local_hits")
             + ps.counter_value("alloc_global_hits")
             + ps.counter_value("alloc_steals")),
            ("lci.pool_alloc_failures", ps.counter_value("alloc_failures")),
            ("lci.pool_frees",
             ps.counter_value("free_local")
             + ps.counter_value("free_global")
             + ps.counter_value("free_nowait")),
            ("lci.server_pkts", self.stats.counter_value("server_pkts")),
        )

    # ------------------------------------------------------------------
    # Algorithm 1: SEND-ENQ
    # ------------------------------------------------------------------
    def send_enq(
        self,
        dst: int,
        tag: int,
        size: int,
        payload: Any = None,
        thread: object = None,
        trace: Optional[str] = None,
    ):
        """Generator: initiate a send; returns an LciRequest or ``None``.

        ``None`` means no packet was available — retry later (the pool is
        the flow control; this is the non-fatal failure MPI lacks).
        ``trace`` is an optional observability trace id carried on the
        wire packets.
        """
        ok = yield from self.pool.alloc(thread)
        if not ok:
            return None
        if self.obs is not None and trace is not None:
            self.obs.emit(trace, "lib", self.rank,
                          op="send_enq", dst=dst, bytes=size)
        req = LciRequest("send", dst, tag, size)
        if size <= self.config.packet_data_bytes:
            # Short protocol: copy into the packet, fire, done.
            yield self.cpu.memcpy_time(size)
            pkt = self.pool.make_packet(
                PacketType.EGR, self.rank, dst, tag, size, payload=payload
            )
            pkt.request = req
            if trace is not None:
                pkt.meta["trace"] = trace
            yield from self.charge_send_overhead()
            ok = self._lc_send(
                pkt, on_local_complete=lambda: self.pool.free_nowait(thread)
            )
            if not ok:
                self.pool.free_nowait(thread)
                return None
            self._c_egr_sends.add()
            req._complete()
        else:
            # Rendezvous: zero-copy RTS advertising the source buffer.
            pkt = self.pool.make_packet(
                PacketType.RTS, self.rank, dst, tag, size
            )
            pkt.request = req
            pkt.meta["data"] = payload
            if trace is not None:
                pkt.meta["trace"] = trace
            yield from self.charge_send_overhead()
            ok = self._lc_send(pkt)
            if not ok:
                self.pool.free_nowait(thread)
                return None
            self._c_rts_sends.add()
            # req stays PENDING; completes when the RDMA put is ACKed.
        return req

    def _lc_send(self, pkt: Packet, on_local_complete=None) -> bool:
        """The lc_send primitive: non-blocking, short, any thread.

        The send-overhead cost is charged by the caller's generator via
        :meth:`charge_send_overhead`; splitting it out keeps _lc_send
        callable from non-generator callbacks (the server's RTR handler).
        """
        if self.reliability is not None:
            return self.reliability.send(pkt, on_local_complete)
        return self.nic.try_inject(pkt, on_local_complete=on_local_complete)

    def charge_send_overhead(self):
        yield self._send_overhead

    # ------------------------------------------------------------------
    # Algorithm 2: RECV-DEQ
    # ------------------------------------------------------------------
    def recv_deq(self, thread: object = None, source: Optional[int] = None):
        """Generator: dequeue one incoming message; LciRequest or ``None``.

        Returns a request whose ``peer``/``tag``/``size`` describe the
        message.  For eager packets the request is already DONE with the
        payload attached; for rendezvous it is PENDING and completes when
        the bulk data lands.  ``source`` is only legal in the
        ``enforce_ordering`` ablation.
        """
        if source is not None and not self.config.enforce_ordering:
            raise ValueError(
                "source-selective dequeue requires enforce_ordering ablation"
            )
        if source is not None:
            pkt = yield from self.queue.dequeue_from(source)
        else:
            pkt = yield from self.queue.dequeue()
        if pkt is None:
            return None
        self.pool.touch(pkt)
        tr = pkt.meta.get("trace") if self.obs is not None else None
        if tr is not None:
            self.obs.emit(tr, "handler", self.rank, ptype=pkt.ptype.name)
        req = LciRequest("recv", pkt.src, pkt.tag, pkt.size)
        if pkt.ptype is PacketType.EGR:
            # Allocate a user buffer and copy out; free the pool packet.
            yield self.cpu.alloc_cost
            yield self.cpu.memcpy_time(pkt.size)
            req._complete(pkt.payload)
            if tr is not None:
                self.obs.emit(tr, "complete", self.rank, bytes=pkt.size)
            self.pool.retire(pkt)
            yield from self.pool.free(thread)
            self._c_egr_recvs.add()
        elif pkt.ptype is PacketType.RTS:
            # Rendezvous: allocate the landing buffer, answer with RTR.
            # The received packet is *reused* as the RTR (no new alloc);
            # its pool budget travels with the protocol and is freed when
            # the RDMA completion arrives back here (Algorithm 3).
            yield self.cpu.alloc_cost
            rtr = Packet(
                PacketType.RTR, self.rank, pkt.src, pkt.tag, pkt.size
            )
            rtr.meta["send_req"] = pkt.request
            rtr.meta["data"] = pkt.meta["data"]
            rtr.meta["recv_req"] = req
            if tr is not None:
                rtr.meta["trace"] = tr
            yield from self.charge_send_overhead()
            while not self._lc_send(rtr):
                yield self.config.retry_backoff
            self._c_rtr_sends.add()
            # The RTS descriptor is dead now that the RTR carries its
            # references (budget still travels with the protocol).
            self.pool.reclaim(pkt)
        else:  # pragma: no cover - server never enqueues other types
            raise RuntimeError(f"unexpected packet in Q: {pkt!r}")
        return req

    # ------------------------------------------------------------------
    # Convenience blocking wrappers (used by tests and microbenchmarks;
    # Abelian's layer drives the non-blocking API directly)
    # ------------------------------------------------------------------
    def send_blocking(self, dst, tag, size, payload=None, thread=None):
        """Retry send_enq until initiation succeeds, then wait for DONE."""
        while True:
            req = yield from self.send_enq(dst, tag, size, payload, thread)
            if req is not None:
                break
            yield self.pool.wait_available()
        while not req.done:
            ev = self.env.event()
            req.on_complete(lambda _r: None if ev.triggered else ev.succeed(None))
            yield ev
        return req

    def recv_blocking(self, thread=None):
        """Retry recv_deq until a message is dequeued and complete."""
        while True:
            req = yield from self.recv_deq(thread)
            if req is not None:
                break
            yield self.queue.wait_nonempty()
        while not req.done:
            ev = self.env.event()
            req.on_complete(lambda _r: None if ev.triggered else ev.succeed(None))
            yield ev
        return req
