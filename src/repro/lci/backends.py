"""Network-backend models for LCI's portability layer.

The paper: "We have implemented LCI on top of ibverbs, psm2, and
Libfabric, which is sufficient for LCI to run on almost all modern
platforms" — with lc_send / lc_put mapping differently on each:

* **psm2** (Omni-Path's native API): ``lc_put`` is implemented *by
  translating target identification to a special tag* — psm2's 96-bit
  tag matching does the address translation, at a small per-put tag
  processing cost, while plain sends ride the native path.
* **ibverbs-rc** (Infiniband reliable connection): both primitives map
  directly to ``ibv_post_send`` (IBV_WR_SEND / IBV_WR_RDMA_WRITE);
  RDMA writes are native and cheap, but every remote buffer needs
  registration (modeled as a one-time cost charged at first use).
* **libfabric**: the generic provider interface adds a thin dispatch
  layer on every operation (the price of portability).

Backends perturb only LCI's *software* costs per operation; the wire
(the NIC model) is unchanged, which mirrors how the backends share the
same fabric on a given machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Backend", "BACKENDS", "psm2", "ibverbs", "libfabric"]

NS = 1e-9


@dataclass(frozen=True)
class Backend:
    """Per-operation software cost deltas of one network API."""

    name: str
    #: Extra cost per lc_send (API dispatch above the NIC doorbell).
    send_extra: float
    #: Extra cost per lc_put (address translation / tag construction).
    put_extra: float
    #: Extra cost per progress-poll harvest.
    progress_extra: float
    #: One-time per-peer cost charged at the first put towards a peer
    #: (memory registration / rkey exchange for verbs-style APIs).
    first_put_setup: float


def psm2() -> Backend:
    """Omni-Path native: cheap sends; puts pay tag translation."""
    return Backend(
        name="psm2",
        send_extra=20 * NS,
        put_extra=90 * NS,   # target id -> 96-bit matchbits
        progress_extra=25 * NS,
        first_put_setup=0.0,  # tag-based: no registration handshake
    )


def ibverbs() -> Backend:
    """Infiniband RC: native RDMA writes; registration at first use."""
    return Backend(
        name="ibverbs",
        send_extra=35 * NS,
        put_extra=30 * NS,   # direct IBV_WR_RDMA_WRITE
        progress_extra=30 * NS,
        first_put_setup=900 * NS,  # ibv_reg_mr + rkey exchange, once/peer
    )


def libfabric() -> Backend:
    """Generic provider layer: a dispatch hop on everything."""
    return Backend(
        name="libfabric",
        send_extra=55 * NS,
        put_extra=70 * NS,
        progress_extra=50 * NS,
        first_put_setup=400 * NS,
    )


BACKENDS: Dict[str, Backend] = {
    b.name: b for b in (psm2(), ibverbs(), libfabric())
}
