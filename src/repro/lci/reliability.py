"""Sequence-numbered ack/retransmit recovery for the LCI runtime.

The paper's robustness claim (Sections III-B/III-D) is that LCI surfaces
network-resource problems as *retryable conditions* instead of hiding or
crashing on them.  This module extends that stance to lossy transport:
when a fault plan can drop, duplicate, or reorder packets
(``FaultPlan.needs_reliability``), every LCI runtime arms a
:class:`ReliableLink` and the layer recovers transparently —

* every outgoing packet carries a per-destination sequence number in
  ``pkt.meta["rseq"]``;
* the receiver acknowledges **every** data packet (including duplicates
  — the earlier ACK may have been the casualty) with a control-sized
  ``ACK`` packet, and drops packets whose sequence number it has already
  seen, so duplicates never reach the protocol handlers;
* the sender holds each packet until its ACK returns, retransmitting on
  an adaptive timeout (base RTO plus twice the packet's wire time) with
  exponential backoff; local-completion callbacks — the ones that
  recycle buffers through the packet pool — are deferred until the ACK,
  because a retransmission needs the buffer intact.

Without a fault plan none of this exists: ``LciQueue._lc_send`` calls
``Nic.try_inject`` directly and no sequence numbers, ACKs, or timers are
ever created — the happy path is untouched.

The MPI layers deliberately get **no** such protocol: real MPI assumes a
reliable transport, so under the same fault plans they hang on lost
completions or corrupt their matching state — the divergence the chaos
harness measures.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.netapi.packet import Packet, PacketType
from repro.sim.engine import SimulationError

__all__ = ["ReliableLink"]


class _Unacked:
    """One packet awaiting acknowledgement."""

    __slots__ = ("pkt", "on_local_complete", "rto", "retries")

    def __init__(self, pkt, on_local_complete, rto):
        self.pkt = pkt
        self.on_local_complete = on_local_complete
        self.rto = rto
        self.retries = 0


class ReliableLink:
    """Per-host sender/receiver state of the recovery protocol."""

    def __init__(self, env, nic, config, stats):
        self.env = env
        self.nic = nic
        self.config = config
        self.stats = stats
        self.closed = False
        #: Next sequence number per destination host.
        self._next_seq: Dict[int, int] = {}
        #: (dst, seq) -> in-flight packet state.
        self._unacked: Dict[Tuple[int, int], _Unacked] = {}
        #: Sequence numbers already delivered, per source host.
        self._seen: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send(
        self,
        pkt: Packet,
        on_local_complete: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Sequence and inject ``pkt``; False when the NIC refused it.

        A refused injection consumes no sequence number, so the caller's
        retry re-enters here cleanly.
        """
        dst = pkt.dst
        seq = self._next_seq.get(dst, 0)
        pkt.meta["rseq"] = seq
        if not self.nic.try_inject(pkt):
            del pkt.meta["rseq"]
            return False
        self._next_seq[dst] = seq + 1
        entry = _Unacked(pkt, on_local_complete, self._initial_rto(pkt))
        self._unacked[(dst, seq)] = entry
        self.stats.counter("rel_sends").add()
        self._arm_timer(dst, seq, entry, entry.rto)
        return True

    def _initial_rto(self, pkt: Packet) -> float:
        """Base RTO plus a round trip of this packet's wire time, so the
        timeout scales with rendezvous payload sizes."""
        wire = self.nic.model.serialization_time(pkt.wire_bytes)
        return self.config.rto + 2.0 * (wire + self.nic.model.latency)

    def _arm_timer(self, dst: int, seq: int, entry: _Unacked, delay: float):
        def _expired() -> None:
            if self.closed or (dst, seq) not in self._unacked:
                return
            if entry.retries >= self.config.rto_max_retries:
                raise SimulationError(
                    f"host {self.nic.host}: packet seq={seq} to {dst} "
                    f"unacknowledged after {entry.retries} retransmissions "
                    f"— link presumed dead"
                )
            entry.retries += 1
            entry.rto *= self.config.rto_backoff
            if self.nic.try_inject(entry.pkt):
                self.stats.counter("retransmissions").add()
                self._arm_timer(dst, seq, entry, entry.rto)
            else:
                # TX full right now: try again shortly without burning
                # another backoff step.
                entry.retries -= 1
                entry.rto /= self.config.rto_backoff
                self.stats.counter("retransmit_tx_full").add()
                self._arm_timer(
                    dst, seq, entry, 4 * self.nic.model.injection_gap
                )

        self.env.schedule_callback(delay, _expired)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_receive(self, pkt: Packet) -> Optional[Packet]:
        """Filter one harvested packet.

        Returns the packet when the server should process it, ``None``
        when the protocol consumed it (an ACK, or a duplicate delivery).
        """
        if pkt.ptype is PacketType.ACK:
            self._handle_ack(pkt)
            return None
        seq = pkt.meta.get("rseq")
        if seq is None:
            return pkt
        # Always acknowledge — a duplicate usually means our previous ACK
        # was lost.  Best effort: if the TX queue refuses, the sender's
        # retransmission will solicit another one.
        ack = Packet(PacketType.ACK, self.nic.host, pkt.src, tag=0, size=0)
        ack.meta["ack"] = seq
        if not self.nic.try_inject(ack):
            self.stats.counter("ack_tx_full").add()
        seen = self._seen.setdefault(pkt.src, set())
        if seq in seen:
            self.stats.counter("dup_pkts_dropped").add()
            return None
        seen.add(seq)
        return pkt

    def _handle_ack(self, ack: Packet) -> None:
        entry = self._unacked.pop((ack.src, ack.meta["ack"]), None)
        if entry is None:
            self.stats.counter("dup_acks").add()
            return
        self.stats.counter("acks").add()
        if entry.on_local_complete is not None:
            entry.on_local_complete()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down with the server: cancel every pending retransmission.

        Packets still unacknowledged at shutdown are abandoned — the run
        is over, so their buffers no longer matter.
        """
        self.closed = True
        self._unacked.clear()

    @property
    def in_flight(self) -> int:
        return len(self._unacked)
