"""LCI requests: completion is a flag read, not a library call.

The paper (Section III-D): "In comparison to MPI functions such as
MPI_TEST or MPI_WAIT, our mechanism is more lightweight: there is no need
for a function call; the user maintains a list of requests and checks the
status flag fields."  Accordingly :attr:`LciRequest.done` is a plain
attribute — reading it charges *zero* simulated time, while
:meth:`repro.mpi.endpoint.MpiEndpoint.test` charges a call plus a progress
pass.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, List

__all__ = ["RequestStatus", "LciRequest"]

_req_ids = itertools.count()


class RequestStatus(enum.Enum):
    PENDING = "pending"
    DONE = "done"


class LciRequest:
    """Record of one ongoing communication, tied to a packet for flow
    control (Algorithm 1's ``makeRequest``)."""

    __slots__ = (
        "uid",
        "kind",
        "peer",
        "tag",
        "size",
        "status",
        "payload",
        "_completion_cbs",
    )

    def __init__(self, kind: str, peer: int, tag: int, size: int):
        self.uid = next(_req_ids)
        self.kind = kind  # "send" | "recv"
        self.peer = peer
        self.tag = tag
        self.size = size
        self.status = RequestStatus.PENDING
        self.payload: Any = None
        self._completion_cbs: List[Callable[["LciRequest"], None]] = []

    @property
    def done(self) -> bool:
        """Free status check — the whole point of the design."""
        return self.status is RequestStatus.DONE

    def on_complete(self, cb: Callable[["LciRequest"], None]) -> None:
        if self.done:
            cb(self)
        else:
            self._completion_cbs.append(cb)

    def _complete(self, payload: Any = None) -> None:
        if self.done:
            raise RuntimeError(f"LCI request {self.uid} completed twice")
        if payload is not None:
            self.payload = payload
        self.status = RequestStatus.DONE
        cbs, self._completion_cbs = self._completion_cbs, []
        for cb in cbs:
            cb(self)

    def __repr__(self) -> str:
        return (
            f"LciRequest(#{self.uid} {self.kind} peer={self.peer} "
            f"tag={self.tag} size={self.size} {self.status.value})"
        )
