"""LCI — the Lightweight Communication Interface (the paper's contribution).

LCI replaces MPI's matching/ordering machinery with four small pieces:

* a **locality-aware concurrent packet pool** bounding injection and memory
  (:mod:`repro.lci.packet_pool`),
* a **fetch-and-add based MPMC queue** delivering incoming packets to
  compute threads in first-packet order (:mod:`repro.lci.mpmc_queue`),
* **requests completed by a plain boolean flag** — no library call to
  observe completion (:mod:`repro.lci.request`),
* a **communication server** that drains the NIC and runs per-packet-type
  callbacks (:mod:`repro.lci.server`, Algorithm 3).

The user-facing *Queue interface* — ``SEND-ENQ`` (Algorithm 1) and
``RECV-DEQ`` (Algorithm 2) — lives in :mod:`repro.lci.queue_iface`.
Initiation can fail (pool empty / nothing pending); failure is not fatal,
the caller simply retries — this is LCI's answer to MPI's
resource-exhaustion crashes.
"""

from repro.lci.config import LciConfig
from repro.lci.request import LciRequest, RequestStatus
from repro.lci.packet_pool import PacketPool
from repro.lci.mpmc_queue import MpmcQueue
from repro.lci.queue_iface import LciQueue
from repro.lci.server import LciRuntime

__all__ = [
    "LciConfig",
    "LciRequest",
    "RequestStatus",
    "PacketPool",
    "MpmcQueue",
    "LciQueue",
    "LciRuntime",
]
