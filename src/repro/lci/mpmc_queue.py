"""Fetch-and-add based multi-producer multi-consumer queue.

Models the FAA-based MPMC queue of the paper's reference [26]: each
enqueue/dequeue is one fetch-and-add to claim a slot plus a slot
publication — charged as one atomic op (plus a small contention penalty
when the queue is being hammered from both sides, which the simulation
surfaces through lock-free retry accounting rather than a mutex).

Order is **first-packet order** — exactly the arrival order the server
enqueued, with no per-sender FIFO or tag segregation.  The optional
``enforce_ordering`` mode (ablation) makes dequeue behave like an MPI
match queue: a consumer asking for a specific source must skip over (and
pay for traversing) other sources' packets.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Environment, Event
from repro.sim.machine import CpuModel
from repro.sim.monitor import StatRegistry

__all__ = ["MpmcQueue"]


class MpmcQueue:
    """Concurrent FIFO with modeled atomic-op costs."""

    def __init__(
        self,
        env: Environment,
        cpu: CpuModel,
        stats: Optional[StatRegistry] = None,
        name: str = "lci.q",
    ):
        self.env = env
        self.cpu = cpu
        self.stats = stats or StatRegistry(name)
        self._items: Deque[Any] = deque()
        self._nonempty_waiters: list = []
        self.max_length = 0
        self._atomic = cpu.atomic_op
        self._c_enqueues = self.stats.counter("enqueues")
        self._c_dequeues = self.stats.counter("dequeues")
        self._c_empty = self.stats.counter("empty_dequeues")

    def __len__(self) -> int:
        return len(self._items)

    def enqueue(self, item: Any):
        """Generator: FAA slot claim + publication."""
        yield self._atomic
        self._items.append(item)
        self._c_enqueues.add()
        if len(self._items) > self.max_length:
            self.max_length = len(self._items)
        if self._nonempty_waiters:
            waiters, self._nonempty_waiters = self._nonempty_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def enqueue_nowait(self, item: Any) -> None:
        """Zero-cost enqueue for contexts that prepaid the atomic."""
        self._items.append(item)
        self._c_enqueues.add()
        if len(self._items) > self.max_length:
            self.max_length = len(self._items)
        if self._nonempty_waiters:
            waiters, self._nonempty_waiters = self._nonempty_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def dequeue(self):
        """Generator: returns the oldest item or ``None`` (non-blocking).

        An empty dequeue still costs the atomic (the head/tail check
        crossed the cache line).
        """
        yield self._atomic
        if self._items:
            self._c_dequeues.add()
            return self._items.popleft()
        self._c_empty.add()
        return None

    def dequeue_from(self, source: int):
        """Ablation helper: dequeue the first item from ``source`` only,
        paying a traversal cost per skipped element (MPI-like matching)."""
        yield self._atomic
        for i, item in enumerate(self._items):
            if getattr(item, "src", None) == source:
                yield i * self._atomic * 0.5
                del self._items[i]
                self._c_dequeues.add()
                return item
        yield len(self._items) * self._atomic * 0.5
        self._c_empty.add()
        return None

    def wait_nonempty(self) -> Event:
        """Event firing when the queue has (or gets) an item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(None)
        else:
            self._nonempty_waiters.append(ev)
        return ev
