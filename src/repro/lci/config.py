"""LCI runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["LciConfig"]


@dataclass(frozen=True)
class LciConfig:
    """Tunables of the LCI runtime.

    Defaults follow the paper's description: the eager/rendezvous switch at
    the packet payload size, and a packet pool whose size is "typically a
    small constant times the number of hosts" — it bounds both the
    injection rate and the communication-buffer memory footprint.
    """

    #: Payload bytes carried inline by one eager packet (the short-protocol
    #: threshold).  Kept equal to the MPI presets' eager limits so the
    #: protocol switch point is not a confounder in comparisons.
    packet_data_bytes: int = 16 * 1024
    #: Packets in the pool per host, as a multiple of the host count.
    pool_packets_per_host: int = 8
    #: Lower bound on the pool size regardless of host count.
    pool_packets_min: int = 64
    #: Size of each thread's private free-packet cache (locality-aware
    #: pool of [16]); hits cost a fraction of an atomic.
    local_cache_packets: int = 4
    #: Fraction of a full atomic-op cost paid on a local-cache hit.
    local_hit_cost_factor: float = 0.25
    #: Backoff (seconds) a caller sleeps before retrying a failed
    #: initiation.  Abelian's comm thread uses its own loop; this default
    #: is for the convenience blocking wrappers.
    retry_backoff: float = 2e-7
    #: If True (ablation), the receive queue enforces sender-FIFO ordering
    #: like MPI instead of first-packet order.
    enforce_ordering: bool = False
    #: Network backend: "psm2", "ibverbs", or "libfabric" (the three the
    #: paper implemented LCI over; see :mod:`repro.lci.backends`).
    backend: str = "psm2"
    #: Base retransmission timeout of the ack/retransmit recovery
    #: protocol (armed only when a fault plan can lose packets).  The
    #: effective per-packet RTO adds twice the packet's wire time so big
    #: rendezvous payloads are not spuriously retransmitted.
    rto: float = 20e-6
    #: Multiplier applied to a packet's RTO after each retransmission
    #: (exponential backoff).
    rto_backoff: float = 2.0
    #: Retransmissions of one packet before the runtime gives up and
    #: declares the link dead (a hard simulation error).
    rto_max_retries: int = 30

    def pool_size(self, num_hosts: int) -> int:
        return max(self.pool_packets_min, self.pool_packets_per_host * num_hosts)

    def with_(self, **kw) -> "LciConfig":
        return replace(self, **kw)
