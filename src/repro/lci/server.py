"""The LCI communication server (Algorithm 3) and the per-host runtime.

One server process runs per host.  It drains the NIC (``lc_progress``)
and executes a short callback per packet type:

* ``EGR`` / ``RTS`` — enqueue onto the MPMC queue for compute threads to
  ``recv_deq`` (first-packet order).  Before enqueueing an arrival the
  server takes a packet budget from the pool — the fixed set of preposted
  receive buffers; when the pool is dry the server stalls, which is the
  backpressure that protects the host from being overrun (instead of the
  MPI failure mode).
* ``RTR`` — the rendezvous reply addressed to one of *our* pending sends:
  the server turns the packet into an RDMA put of the advertised data
  (``p.type := RDMA; lc_put``).
* ``RDMA`` — the bulk data landed: flip the receive request's flag and
  free the packet back to the pool.

The interaction between the server and compute threads is only the
request flag and the lock-free queue — "limited to a single flag", as the
paper puts it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lci.config import LciConfig
from repro.lci.queue_iface import LciQueue
from repro.obs.profile import LEAF_SAMPLE_MASK
from repro.netapi.nic import Fabric, Nic
from repro.netapi.packet import Packet, PacketType
from repro.sim.engine import Environment, Process
from repro.sim.machine import CpuModel

__all__ = ["LciRuntime"]


class LciRuntime(LciQueue):
    """LciQueue plus the communication-server process."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        nic: Nic,
        cpu: CpuModel,
        num_hosts: int,
        config: Optional[LciConfig] = None,
        auto_start: bool = True,
    ):
        super().__init__(env, rank, nic, cpu, num_hosts, config=config)
        self._server_proc: Optional[Process] = None
        self._stopping = False
        #: Sibling runtimes, indexed by rank (set by create_world).
        self.peers: Optional[List["LciRuntime"]] = None
        #: Per-source rkeys of this host's rendezvous landing regions.
        self._sink_rkeys: dict = {}
        #: Peers we have already paid the backend's first-put setup for.
        self._put_ready: set = set()
        if auto_start:
            self.start_server()

    # ------------------------------------------------------------------
    @classmethod
    def create_world(
        cls,
        env: Environment,
        fabric: Fabric,
        config: Optional[LciConfig] = None,
        auto_start: bool = True,
    ) -> List["LciRuntime"]:
        """One runtime per host of the fabric, wired as peers."""
        runtimes = [
            cls(
                env,
                rank,
                fabric.nic(rank),
                fabric.machine.cpu,
                fabric.num_hosts,
                config=config,
                auto_start=auto_start,
            )
            for rank in range(fabric.num_hosts)
        ]
        for rt in runtimes:
            rt.peers = runtimes
        return runtimes

    def start_server(self) -> Process:
        if self._server_proc is None or not self._server_proc.is_alive:
            self._stopping = False
            self._server_proc = self.env.process(
                self._server_loop(), name=f"lci-server-{self.rank}"
            )
        return self._server_proc

    def stop_server(self) -> None:
        """Ask the server loop to exit at its next idle point."""
        self._stopping = True
        if self.reliability is not None:
            self.reliability.close()
        if self._server_proc is not None and self._server_proc.is_alive:
            self._server_proc.interrupt("stop")
        if self.sanitizer is not None:
            # Shutdown audit: every budget home, completion queue drained.
            self.sanitizer.check_shutdown(self.pool, self.queue)

    # ------------------------------------------------------------------
    # Algorithm 3: NETWORK-PROGRESS, run forever by the server
    # ------------------------------------------------------------------
    def _server_loop(self):
        from repro.sim.engine import Interrupt

        prof = self.profiler
        if prof is not None:
            pclock = prof.clock
            r_progress = self._r_progress
        # Per-packet harvest cost, hoisted out of the loop.
        harvest_cost = (
            self.nic.model.recv_overhead + self.backend.progress_extra
        )
        c_server_pkts = self.stats.counter("server_pkts")
        try:
            while not self._stopping:
                if prof is None or not self.nic.rx_queue:
                    pkt = self.nic.poll()
                else:
                    # The host-side cost of one progress-engine turn:
                    # harvesting the NIC completion.  Only this
                    # synchronous slice can be bracketed — the rest of
                    # the loop suspends on simulated events.  Empty
                    # polls stay uncounted so region call counts equal
                    # packets harvested (== the server_pkts stat, which
                    # feeds the lci.server_pkts counter); the clock is
                    # read on every LEAF_SAMPLE_STRIDE'th harvest.
                    n = r_progress[1] + 1
                    r_progress[1] = n
                    if n & LEAF_SAMPLE_MASK:
                        pkt = self.nic.poll()
                    else:
                        t0 = pclock()
                        pkt = self.nic.poll()
                        r_progress[0] += pclock() - t0
                if pkt is None:
                    yield self.nic.wait_arrival()
                    continue
                c_server_pkts.add()
                # Harvesting one completion from the NIC.
                yield harvest_cost
                if self.reliability is not None:
                    pkt = self.reliability.on_receive(pkt)
                    if pkt is None:
                        continue  # an ACK or a duplicate: consumed
                yield from self._handle(pkt)
        except Interrupt:
            return

    def _handle(self, pkt: Packet):
        # A recycled packet showing up here again (e.g. a duplicate
        # delivery after the receive path freed it) is a use-after-free.
        self.pool.touch(pkt)
        tr = pkt.meta.get("trace") if self.obs is not None else None
        if tr is not None:
            self.obs.emit(tr, "progress", self.rank, ptype=pkt.ptype.name)
        if pkt.ptype in (PacketType.EGR, PacketType.RTS):
            # Take a receive-buffer budget; stall (backpressure) if dry.
            # Receive allocs may use the reserve the send path cannot.
            while True:
                ok = yield from self.pool.alloc(for_recv=True)
                if ok:
                    break
                self.stats.counter("server_pool_stalls").add()
                yield self.pool.wait_available(for_recv=True)
            yield from self.queue.enqueue(pkt)
            if tr is not None:
                self.obs.emit(tr, "queue_wait", self.rank,
                              depth=len(self.queue))
        elif pkt.ptype is PacketType.RTR:
            yield from self._serve_rtr(pkt)
        elif pkt.ptype is PacketType.RDMA:
            recv_req = pkt.meta["recv_req"]
            recv_req._complete(pkt.payload)
            if tr is not None:
                self.obs.emit(tr, "complete", self.rank, bytes=pkt.size)
            # packetFree(P, p): the budget taken when the RTS arrived.
            self.pool.retire(pkt)
            yield from self.pool.free()
            self.stats.counter("rdma_recvs").add()
        else:  # pragma: no cover - exhaustive over PacketType
            raise RuntimeError(f"server cannot handle {pkt!r}")

    def _serve_rtr(self, pkt: Packet):
        """p.type := RDMA; lc_put(p) — start the bulk transfer."""
        send_req = pkt.meta["send_req"]
        rdma = Packet(
            PacketType.RDMA,
            self.rank,
            pkt.src,
            pkt.tag,
            send_req.size,
            payload=pkt.meta["data"],
        )
        rdma.meta["recv_req"] = pkt.meta["recv_req"]
        rdma.meta["rkey"] = self._put_sink_rkey(pkt.src)
        if pkt.meta.get("trace") is not None:
            rdma.meta["trace"] = pkt.meta["trace"]

        def _acked() -> None:
            send_req._complete()
            # The RTS's pool budget is released now the data is delivered.
            self.pool.free_nowait()

        put_cost = self.nic.model.send_overhead + self.backend.put_extra
        if pkt.src not in self._put_ready:
            # Memory registration / rkey exchange, once per peer.
            put_cost += self.backend.first_put_setup
            self._put_ready.add(pkt.src)
        yield put_cost
        while not self._lc_send(rdma, on_local_complete=_acked):
            self.stats.counter("rdma_tx_retries").add()
            yield 4 * self.nic.model.injection_gap
        self.stats.counter("rdma_puts").add()

    # ------------------------------------------------------------------
    # RDMA sink registration (address translation for lc_put)
    # ------------------------------------------------------------------
    def _put_sink_rkey(self, dst: int) -> int:
        """rkey of the peer's landing region for our rendezvous payloads.

        In the real implementation the RTR carries the receiver's buffer
        address/key ("a host and key for address translation enclosed in
        the packet"); here the peer runtime registers one logical sink
        region per source on demand and caches the key.
        """
        if self.peers is None:
            raise RuntimeError(
                "LciRuntime.peers not wired; create runtimes via create_world"
            )
        peer = self.peers[dst]
        rkey = peer._sink_rkeys.get(self.rank)
        if rkey is None:
            buf = peer.nic.register(1 << 40, label=f"lci-sink<-{self.rank}")
            rkey = buf.rkey
            peer._sink_rkeys[self.rank] = rkey
        return rkey
