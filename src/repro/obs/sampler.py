"""Periodic queue-depth sampler: one simulated process per run.

The sampler wakes every ``ObsConfig.sample_period`` simulated seconds
and reads every registered probe (:meth:`ObsContext.sample_once`).
Reads only — it never mutates component state, so the run's results are
bit-identical with or without it.

Termination: the sampler stops itself when it wakes to an otherwise
empty event heap.  In this kernel anything that will ever happen is
either scheduled (in the heap) or caused by something scheduled, so an
empty heap at the sampler's own wake-up means the simulation is over
(or deadlocked — and a perpetual sampler must not mask a deadlock by
keeping ``env.run()`` spinning).
"""

from __future__ import annotations

from repro.sim.engine import Interrupt

__all__ = ["start_sampler"]


def _sample_loop(obs):
    env = obs.env
    period = obs.config.sample_period
    while True:
        obs.sample_once()
        if env.peek() == float("inf"):
            # Nothing else scheduled: we are the only remaining activity.
            return
        try:
            yield env.timeout(period)
        except Interrupt:
            return


def start_sampler(obs):
    """Spawn the sampling process; returns the :class:`Process`."""
    return obs.env.process(_sample_loop(obs), name="obs-sampler")
