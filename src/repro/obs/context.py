"""Message-lifecycle observability context (the tentpole of `repro.obs`).

One :class:`ObsContext` rides on the :class:`~repro.netapi.nic.Fabric`
(``fabric.obs``), discovered by protocol components exactly like the
fault injector and the sanitizers — ``getattr(nic.fabric, "obs", None)``
at construction, every hook a no-op when absent.  It collects three
kinds of data, all pure observation:

* **Stage events** — every payload handed to a comm-layer ``send`` gets
  a deterministic trace id (:meth:`new_trace`) and emits causally-linked
  :class:`MsgEvent` rows as it moves through the stack
  (``api -> lib -> inject -> wire -> rx -> progress -> ... -> complete``;
  see :data:`STAGES`).  The event *name* is the state the message
  entered; the interval until the next event is attributed to that
  state by the critical-path analyzer.
* **Probe samples** — components register zero-argument probe callables
  (:meth:`register_probe`); a periodic sampler process reads them into
  :class:`~repro.sim.monitor.TimeSeries` (unexpected-queue depth,
  posted-receive count, packet-pool occupancy, NIC backlog, in-flight
  bytes per host).
* **Stall records** — closed intervals a host demonstrably spent
  blocked on a protocol resource (packet-pool recycling, PSCW epoch
  synchronization), reported by the code that did the waiting.

Determinism contract (the same guarantee the sanitizers give): hooks
never advance simulated time, never touch component ``StatRegistry``
counters, and never change iteration order — a run with obs installed
produces bit-identical :class:`~repro.engine.metrics.RunMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.monitor import TimeSeries

__all__ = ["STAGES", "TERMINAL_STAGES", "MsgEvent", "Stall", "ObsConfig", "ObsContext"]

#: The lifecycle-stage taxonomy.  Not every message visits every stage;
#: the subset and order depend on the layer and protocol (see
#: docs/OBSERVABILITY.md for the per-protocol chains).
STAGES = (
    "api",         # payload entered the comm layer's send path
    "agg",         # buffered into a sender-side aggregate (mpi-probe)
    "bundled",     # blob rode into an aggregate message (links msg trace)
    "lib",         # entered the protocol library (isend / SEND-ENQ / put)
    "inject",      # NIC accepted the descriptor
    "wire",        # departed the sender NIC (serialization done)
    "rx",          # landed in the destination NIC receive queue
    "progress",    # harvested by the progress engine / comm server
    "match_wait",  # parked in the MPI unexpected-message queue
    "queue_wait",  # parked in the LCI MPMC queue
    "handler",     # matched / dequeued; receiver-side processing
    "epoch_wait",  # RMA data landed, awaiting epoch close / collect
    "complete",    # payload available to the receiver (terminal)
    "dropped",     # lost in transit (terminal for that wire attempt)
)

TERMINAL_STAGES = ("complete", "dropped")


class MsgEvent:
    """One lifecycle event: trace ``trace`` entered ``stage`` at ``t``."""

    __slots__ = ("trace", "stage", "host", "t", "args")

    def __init__(self, trace: str, stage: str, host: int, t: float,
                 args: Optional[Dict] = None):
        self.trace = trace
        self.stage = stage
        self.host = host
        self.t = t
        self.args = args

    def as_row(self) -> list:
        """Compact JSON row (see ``ObsContext.as_timeline`` columns)."""
        return [self.trace, self.stage, self.host, self.t, self.args or {}]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MsgEvent({self.trace}, {self.stage}@{self.host}, t={self.t:.9f})"


@dataclass
class Stall:
    """A closed interval one host spent blocked on a protocol resource."""

    host: int
    kind: str      # pool_wait | epoch_start_wait | epoch_flush_wait | ...
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ObsConfig:
    """Knobs for the observability context."""

    #: Sampler period in simulated seconds; <= 0 disables the sampler.
    sample_period: float = 25e-6
    #: Record per-message stage events (the trace stream).
    trace_messages: bool = True


class ObsContext:
    """Collects lifecycle events, probe samples, and stall records."""

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        self.env = None
        self.fabric = None
        self.events: List[MsgEvent] = []
        self.stalls: List[Stall] = []
        #: (probe name, host) -> TimeSeries of sampled values.
        self.samples: Dict[Tuple[str, int], TimeSeries] = {}
        #: Registration-ordered probe list (sampling order is the
        #: deterministic registration order).
        self._probes: List[Tuple[str, int, Callable[[], float]]] = []
        #: Per-source-host trace sequence numbers.
        self._seq: Dict[int, int] = {}
        #: Per-host bytes injected but not yet arrived (or dropped).
        self._inflight: Dict[int, int] = {}
        self._sampler_proc = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def install(self, env, fabric) -> "ObsContext":
        """Attach to a fabric (``fabric.obs = self``) and start sampling.

        Must run before the comm layers are built so endpoints can
        register their queue probes at construction.  The per-NIC
        probes are registered here because NICs predate the context.
        """
        self.env = env
        self.fabric = fabric
        fabric.obs = self
        for host in range(fabric.num_hosts):
            nic = fabric.nic(host)
            self.register_probe("nic.rx_depth", host,
                                lambda n=nic: len(n.rx_queue))
            self.register_probe("nic.tx_outstanding", host,
                                lambda n=nic: n.tx_outstanding)
            self.register_probe("nic.inflight_bytes", host,
                                lambda s=self, h=host: s._inflight.get(h, 0))
        if self.config.sample_period > 0:
            from repro.obs.sampler import start_sampler

            self._sampler_proc = start_sampler(self)
        return self

    # ------------------------------------------------------------------
    # Trace ids and stage events
    # ------------------------------------------------------------------
    def new_trace(self, layer: str, src: int, dst: int) -> str:
        """Mint a deterministic trace id for a ``src -> dst`` payload.

        The id is a pure function of the (deterministic) simulation
        history: a per-source-host sequence number, so ids are stable
        under replay and independent of other hosts' interleaving.
        """
        n = self._seq.get(src, 0)
        self._seq[src] = n + 1
        return f"{layer}:{src}>{dst}:{n}"

    def emit(self, trace: str, stage: str, host: int, **args) -> None:
        """Record that ``trace`` entered ``stage`` on ``host`` now."""
        if not self.config.trace_messages:
            return
        self.events.append(
            MsgEvent(trace, stage, host, self.now, args or None)
        )

    def stall(self, host: int, kind: str, start: float, end: float) -> None:
        """Record a closed blocked interval (only if it has width)."""
        if end > start:
            self.stalls.append(Stall(host, kind, start, end))

    # ------------------------------------------------------------------
    # NIC accounting hooks (called from repro.netapi.nic)
    # ------------------------------------------------------------------
    def on_inject(self, pkt) -> None:
        self._inflight[pkt.src] = (
            self._inflight.get(pkt.src, 0) + pkt.wire_bytes
        )
        tr = pkt.meta.get("trace")
        if tr is not None:
            self.emit(tr, "inject", pkt.src,
                      bytes=pkt.wire_bytes, ptype=pkt.ptype.name)

    def on_depart(self, pkt) -> None:
        tr = pkt.meta.get("trace")
        if tr is not None:
            self.emit(tr, "wire", pkt.src)

    def on_drop(self, pkt) -> None:
        self._inflight[pkt.src] = (
            self._inflight.get(pkt.src, 0) - pkt.wire_bytes
        )
        tr = pkt.meta.get("trace")
        if tr is not None:
            self.emit(tr, "dropped", pkt.src, ptype=pkt.ptype.name)

    def on_arrive(self, pkt, notify_target: bool) -> None:
        self._inflight[pkt.src] = (
            self._inflight.get(pkt.src, 0) - pkt.wire_bytes
        )
        if not notify_target:
            # Pure RDMA write (MPI-RMA put): the target CPU never sees a
            # receive event; the data sits in the window until the epoch
            # closes.  This is the stage the PSCW epoch-wait attribution
            # measures.
            tr = pkt.meta.get("trace")
            if tr is not None:
                self.emit(tr, "epoch_wait", pkt.dst, bytes=pkt.size)

    def on_rx(self, pkt) -> None:
        tr = pkt.meta.get("trace")
        if tr is not None:
            self.emit(tr, "rx", pkt.dst)

    # ------------------------------------------------------------------
    # Probe registration and sampling
    # ------------------------------------------------------------------
    def register_probe(self, name: str, host: int,
                       fn: Callable[[], float]) -> None:
        """Register a zero-argument state reader, sampled periodically.

        Registration order is sampling order (deterministic); a
        duplicate (name, host) registration replaces the reader but
        keeps the original series.
        """
        key = (name, host)
        if key not in self.samples:
            self.samples[key] = TimeSeries(f"{name}[{host}]")
            self._probes.append((name, host, fn))
        else:
            self._probes = [
                (n, h, fn) if (n, h) == key else (n, h, f)
                for n, h, f in self._probes
            ]

    def sample_once(self) -> None:
        """Read every registered probe at the current simulated time."""
        t = self.now
        for name, host, fn in self._probes:
            self.samples[(name, host)].record(t, fn())

    def series(self, name: str, host: int) -> Optional[TimeSeries]:
        return self.samples.get((name, host))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_timeline(self, meta: Optional[Dict] = None) -> dict:
        """The JSON-able timeline document (`repro explain` input)."""
        return {
            "version": 1,
            "kind": "repro-obs-timeline",
            "meta": dict(meta or {}),
            "columns": ["trace", "stage", "host", "t", "args"],
            "events": [ev.as_row() for ev in self.events],
            "samples": [
                {
                    "probe": name,
                    "host": host,
                    "times": list(series.times),
                    "values": list(series.values),
                }
                for (name, host), series in sorted(self.samples.items())
            ],
            "stalls": [
                [s.host, s.kind, s.start, s.end] for s in self.stalls
            ],
        }
