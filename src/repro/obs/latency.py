"""Per-query latency distributions for the serve layer.

The service reports latency the way production query systems do — tail
percentiles, not means.  Percentiles use the **nearest-rank** method
(ceil(q·N)-th smallest): a member of the sample, no interpolation, so
summaries of a deterministic run are bit-stable and two replays of the
same tape produce byte-identical reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["percentile_nearest_rank", "LatencySummary"]


def percentile_nearest_rank(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by the nearest-rank method."""
    if not 0.0 < q <= 100.0:
        raise ValueError("percentile must be in (0, 100]")
    if len(values) == 0:
        raise ValueError("no values to take a percentile of")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 + extremes of one latency sample, in seconds."""

    count: int
    p50: float
    p95: float
    p99: float
    min: float
    max: float
    mean: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        if len(values) == 0:
            return cls(count=0, p50=0.0, p95=0.0, p99=0.0,
                       min=0.0, max=0.0, mean=0.0)
        ordered = sorted(float(v) for v in values)
        return cls(
            count=len(ordered),
            p50=percentile_nearest_rank(ordered, 50),
            p95=percentile_nearest_rank(ordered, 95),
            p99=percentile_nearest_rank(ordered, 99),
            min=ordered[0],
            max=ordered[-1],
            mean=sum(ordered) / len(ordered),
        )

    def as_dict(self) -> dict:
        """Microsecond-rounded dict (stable for JSON round-tripping)."""
        return {
            "count": self.count,
            "p50_us": round(self.p50 * 1e6, 3),
            "p95_us": round(self.p95 * 1e6, 3),
            "p99_us": round(self.p99 * 1e6, 3),
            "min_us": round(self.min * 1e6, 3),
            "max_us": round(self.max * 1e6, 3),
            "mean_us": round(self.mean * 1e6, 3),
        }

    def prometheus_lines(self, name: str, labels: str = "") -> List[str]:
        """Render as a Prometheus summary family (quantile labels)."""
        lab = labels + "," if labels else ""
        return [
            f"# TYPE {name} summary",
            f'{name}{{{lab}quantile="0.5"}} {self.p50!r}',
            f'{name}{{{lab}quantile="0.95"}} {self.p95!r}',
            f'{name}{{{lab}quantile="0.99"}} {self.p99!r}',
            f"# TYPE {name}_count counter",
            f"{name}_count{{{labels}}} {self.count}" if labels
            else f"{name}_count {self.count}",
        ]
