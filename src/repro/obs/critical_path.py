"""Critical-path analysis over the message-lifecycle event stream.

Reconstructs each traced message's causal chain (one
:class:`MessageTimeline` per trace id) and attributes its end-to-end
latency to protocol stages: the interval between consecutive events is
charged to the *earlier* event's stage — an event marks the state the
message entered, so the time until the next event is time spent in that
state.  Per-stage sums telescope to exactly the message's end-to-end
latency, which is the invariant the tests pin.

On top of the per-message timelines:

* :func:`stage_attribution` — seconds per (layer, stage) across a run:
  the paper's Fig. 6 narrative made quantitative (matching-queue wait
  vs. probe-poll latency vs. epoch synchronization vs. pool recycling).
* :func:`round_attribution` — the same, split per (round, pattern),
  recovered from the ``api`` event's args.
* :func:`slowest` — the N worst end-to-end message latencies with their
  stage breakdowns (the run's critical messages).
* :func:`explain_report` — the human-readable report behind
  ``repro explain`` and ``repro run --obs``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "MessageTimeline",
    "events_of",
    "build_timelines",
    "stage_attribution",
    "round_attribution",
    "stall_attribution",
    "slowest",
    "format_stage_table",
    "explain_report",
]


class MessageTimeline:
    """One trace id's ordered lifecycle events and derived intervals."""

    __slots__ = ("trace", "events")

    def __init__(self, trace: str):
        self.trace = trace
        #: [(stage, host, t, args), ...] in emission order.
        self.events: List[Tuple[str, int, float, Dict]] = []

    @property
    def layer(self) -> str:
        """Layer prefix of the trace id (``lci:0>1:7`` -> ``lci``)."""
        return self.trace.split(":", 1)[0]

    @property
    def start(self) -> float:
        return self.events[0][2]

    @property
    def end(self) -> float:
        return self.events[-1][2]

    @property
    def latency(self) -> float:
        """End-to-end: first event (api/lib) to last event (complete)."""
        return self.end - self.start

    @property
    def completed(self) -> bool:
        return any(stage == "complete" for stage, _h, _t, _a in self.events)

    @property
    def first_args(self) -> Dict:
        return self.events[0][3]

    def stage_durations(self) -> List[Tuple[str, float]]:
        """[(stage, seconds-in-stage), ...]; telescopes to ``latency``.

        The final event contributes zero (terminal states have no
        successor); repeated stages appear once per visit.
        """
        out: List[Tuple[str, float]] = []
        evs = self.events
        for i in range(len(evs) - 1):
            stage = evs[i][0]
            out.append((stage, evs[i + 1][2] - evs[i][2]))
        return out

    def stage_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for stage, dur in self.stage_durations():
            totals[stage] = totals.get(stage, 0.0) + dur
        return totals


def events_of(source) -> List[Tuple[str, str, int, float, Dict]]:
    """Normalize an ObsContext or a timeline dict to event tuples."""
    if isinstance(source, dict):
        return [
            (row[0], row[1], row[2], row[3], row[4] or {})
            for row in source.get("events", ())
        ]
    return [
        (ev.trace, ev.stage, ev.host, ev.t, ev.args or {})
        for ev in source.events
    ]


def build_timelines(source) -> List[MessageTimeline]:
    """Group events by trace id, in order of first appearance.

    Events for one trace keep their emission order, which is their
    causal order (the simulation clock never runs backwards and
    same-timestamp events append in execution order).
    """
    by_trace: Dict[str, MessageTimeline] = {}
    order: List[str] = []
    for trace, stage, host, t, args in events_of(source):
        tl = by_trace.get(trace)
        if tl is None:
            tl = by_trace[trace] = MessageTimeline(trace)
            order.append(trace)
        tl.events.append((stage, host, t, args))
    return [by_trace[tr] for tr in order]


def stage_attribution(
    timelines: List[MessageTimeline],
) -> Dict[str, Dict[str, float]]:
    """Seconds spent per stage, keyed by layer then stage."""
    out: Dict[str, Dict[str, float]] = {}
    for tl in timelines:
        layer = out.setdefault(tl.layer, {})
        for stage, dur in tl.stage_durations():
            layer[stage] = layer.get(stage, 0.0) + dur
    return out


def round_attribution(
    timelines: List[MessageTimeline],
) -> Dict[Tuple[str, object, object], Dict[str, float]]:
    """Stage seconds keyed by (layer, round, pattern).

    Round and pattern come from the message's first event args (the
    ``api`` emission records ``blob.phase``); messages without them
    (e.g. aggregate frames spanning blobs) land under (layer, None,
    None).
    """
    out: Dict[Tuple[str, object, object], Dict[str, float]] = {}
    for tl in timelines:
        args = tl.first_args
        key = (tl.layer, args.get("round"), args.get("pattern"))
        bucket = out.setdefault(key, {})
        for stage, dur in tl.stage_durations():
            bucket[stage] = bucket.get(stage, 0.0) + dur
    return out


def stall_attribution(stalls) -> Dict[str, float]:
    """Total stall seconds per kind (from timeline rows or Stall objs)."""
    out: Dict[str, float] = {}
    for s in stalls:
        if isinstance(s, (list, tuple)):
            _host, kind, start, end = s
        else:
            kind, start, end = s.kind, s.start, s.end
        out[kind] = out.get(kind, 0.0) + (end - start)
    return out


def slowest(
    timelines: List[MessageTimeline], n: int = 5
) -> List[MessageTimeline]:
    """The ``n`` worst end-to-end latencies (ties broken by trace id)."""
    return sorted(
        (tl for tl in timelines if len(tl.events) > 1),
        key=lambda tl: (-tl.latency, tl.trace),
    )[:n]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.2f}us"


def format_stage_table(att: Dict[str, Dict[str, float]]) -> str:
    """Per-layer stage-attribution table (stages sorted by total)."""
    from repro.bench.report import format_table

    rows = []
    for layer in sorted(att):
        stages = att[layer]
        total = sum(stages[s] for s in sorted(stages))
        for stage, secs in sorted(
            stages.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            share = secs / total if total > 0 else 0.0
            rows.append({
                "layer": layer,
                "stage": stage,
                "seconds": f"{secs:.9f}",
                "share": f"{share * 100:.1f}%",
            })
    if not rows:
        return "(no traced messages)"
    return format_table(rows)


def _format_round_table(
    per_round: Dict[Tuple[str, object, object], Dict[str, float]],
) -> str:
    from repro.bench.report import format_table

    rows = []
    keys = sorted(
        per_round,
        key=lambda k: (k[0], k[1] if k[1] is not None else -1, str(k[2])),
    )
    for key in keys:
        layer, rnd, pattern = key
        stages = per_round[key]
        if not stages:
            continue
        dominant = min(stages.items(), key=lambda kv: (-kv[1], kv[0]))
        total = sum(stages[s] for s in sorted(stages))
        rows.append({
            "layer": layer,
            "round": rnd if rnd is not None else "-",
            "pattern": pattern if pattern is not None else "-",
            "comm_time": _us(total),
            "dominant_stage": dominant[0],
            "dominant_time": _us(dominant[1]),
        })
    if not rows:
        return "(no per-round data)"
    return format_table(rows)


def explain_report(
    timeline: dict,
    top: int = 5,
    per_round: bool = False,
) -> str:
    """Full human-readable critical-path report for one timeline."""
    meta = timeline.get("meta", {})
    timelines = build_timelines(timeline)
    att = stage_attribution(timelines)
    lines: List[str] = []
    if meta:
        pairs = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
        lines.append(f"run: {pairs}")
    done = sum(1 for tl in timelines if tl.completed)
    lines.append(
        f"traced messages: {len(timelines)} ({done} completed); "
        f"events: {len(timeline.get('events', ()))}"
    )
    # End-to-end latency percentiles (nearest-rank, same summary the
    # serve layer reports) — overall, plus per layer when several
    # layers share the timeline.
    from repro.obs.latency import LatencySummary

    lat_by_layer: Dict[str, List[float]] = {}
    for tl in timelines:
        if tl.completed:
            lat_by_layer.setdefault(tl.layer, []).append(tl.latency)
    if lat_by_layer:
        def _lat_line(label: str, values: List[float]) -> str:
            d = LatencySummary.from_values(values).as_dict()
            return (
                f"{label}: p50={d['p50_us']:g}us p95={d['p95_us']:g}us "
                f"p99={d['p99_us']:g}us max={d['max_us']:g}us "
                f"(n={d['count']})"
            )

        all_values = [
            v for layer in sorted(lat_by_layer)
            for v in lat_by_layer[layer]
        ]
        lines.append(_lat_line("message latency", all_values))
        if len(lat_by_layer) > 1:
            for layer in sorted(lat_by_layer):
                lines.append(
                    "  " + _lat_line(layer, lat_by_layer[layer])
                )
    lines.append("")
    lines.append("stage attribution (per layer):")
    lines.append(format_stage_table(att))
    if per_round:
        lines.append("")
        lines.append("per-round dominant stages:")
        lines.append(_format_round_table(round_attribution(timelines)))
    stall_tot = stall_attribution(timeline.get("stalls", ()))
    if stall_tot:
        lines.append("")
        lines.append("stalls: " + ", ".join(
            f"{kind}={_us(stall_tot[kind])}" for kind in sorted(stall_tot)
        ))
    worst = slowest(timelines, n=top)
    if worst:
        lines.append("")
        lines.append(f"slowest {len(worst)} messages:")
        for tl in worst:
            breakdown = " ".join(
                f"{stage}={_us(dur)}"
                for stage, dur in sorted(
                    tl.stage_totals().items(), key=lambda kv: (-kv[1], kv[0])
                )
                if dur > 0
            )
            lines.append(
                f"  {tl.trace}: {_us(tl.latency)} end-to-end  [{breakdown}]"
            )
    peaks = _probe_peaks(timeline)
    if peaks:
        lines.append("")
        lines.append("probe peaks: " + ", ".join(
            f"{name}={int(val)}" for name, val in peaks
        ))
    return "\n".join(lines)


def _probe_peaks(timeline: dict) -> List[Tuple[str, float]]:
    """Max sampled value per probe name, across hosts."""
    peaks: Dict[str, float] = {}
    for s in timeline.get("samples", ()):
        vals = s.get("values") or ()
        if not vals:
            continue
        name = s["probe"]
        peak = max(vals)
        if name not in peaks or peak > peaks[name]:
            peaks[name] = peak
    return sorted(peaks.items())
