"""Observability: message-lifecycle tracing, queue probes, critical path.

The package the reproduction uses to *explain* its numbers: every
payload gets a deterministic trace id at the comm-layer API, stage
events flow from the NIC, the MPI matching engine, the LCI server, and
the comm layers, a sampler records queue-depth time series, and the
critical-path analyzer attributes end-to-end latency to protocol
stages (``repro run --obs`` / ``repro explain``).  Host-side
*wall-clock* profiling — nestable regions over the simulator's hot
paths plus deterministic work counters — lives in
:mod:`repro.obs.profile` (``repro profile`` / ``repro bench-core``);
the communication-pattern observatory — per-(src, dst, kind/phase)
traffic matrices, size histograms, skew analytics, and the CI-gated
comm fingerprints — lives in :mod:`repro.obs.commstats`
(``repro commstats`` / ``repro explain --comm``).
See docs/OBSERVABILITY.md.
"""

from repro.obs.commstats import (
    CommStatsContext,
    analyze_comm,
    check_comm_baseline,
    comm_doc_to_csv,
    comm_doc_to_json,
    comm_fingerprint,
    comm_prometheus_lines,
    format_comm_report,
    render_heatmap,
    save_comm_doc,
    timeline_comm_doc,
)
from repro.obs.context import (
    STAGES,
    TERMINAL_STAGES,
    MsgEvent,
    ObsConfig,
    ObsContext,
    Stall,
)
from repro.obs.critical_path import (
    MessageTimeline,
    build_timelines,
    explain_report,
    format_stage_table,
    round_attribution,
    slowest,
    stage_attribution,
    stall_attribution,
)
from repro.obs.export import (
    load_timeline,
    save_chrome_trace,
    save_prometheus,
    save_timeline,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.latency import LatencySummary, percentile_nearest_rank
from repro.obs.profile import (
    CounterRegistry,
    ProfileContext,
    RegionProfiler,
    wall_now,
)
from repro.obs.validate import (
    validate_chrome_trace,
    validate_collapsed,
    validate_comm_doc,
    validate_profile_doc,
    validate_prometheus,
    validate_timeline,
)

__all__ = [
    "STAGES",
    "TERMINAL_STAGES",
    "MsgEvent",
    "Stall",
    "ObsConfig",
    "ObsContext",
    "MessageTimeline",
    "build_timelines",
    "stage_attribution",
    "round_attribution",
    "stall_attribution",
    "slowest",
    "explain_report",
    "format_stage_table",
    "save_timeline",
    "load_timeline",
    "to_chrome_trace",
    "save_chrome_trace",
    "to_prometheus",
    "save_prometheus",
    "validate_timeline",
    "validate_chrome_trace",
    "validate_prometheus",
    "validate_collapsed",
    "validate_profile_doc",
    "validate_comm_doc",
    "CommStatsContext",
    "analyze_comm",
    "comm_fingerprint",
    "comm_doc_to_json",
    "comm_doc_to_csv",
    "save_comm_doc",
    "render_heatmap",
    "comm_prometheus_lines",
    "format_comm_report",
    "timeline_comm_doc",
    "check_comm_baseline",
    "LatencySummary",
    "percentile_nearest_rank",
    "ProfileContext",
    "RegionProfiler",
    "CounterRegistry",
    "wall_now",
]
